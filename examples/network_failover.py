#!/usr/bin/env python3
"""Network failover under the paper's full §3 fault model, per style.

Walks one replication style at a time (active, passive, active-passive)
through a gauntlet of network faults:

  t=0.2s  node 2 cannot *send* on network 0       (per-node TX fault)
  t=0.4s  node 4 cannot *receive* on network 0    (per-node RX fault)
  t=0.6s  network 1 partitions {1,2} | {3,4}      (partial network fault)
  t=0.8s  network 1 fails completely              (total network fault)

Throughout, a steady workload runs and the script tracks delivery,
membership stability and fault reports.  The paper's promise: the ring
survives everything above as long as one network still connects everyone
(network 0 connects all nodes throughout — only node 2's TX and node 4's
RX on it are severed, which the redundant network covers... until it dies,
at which point network 0's remaining paths must carry everything).

Run:  python examples/network_failover.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    FaultPlan,
    ReplicationStyle,
    SimCluster,
    TotemConfig,
)
from repro.bench.workload import SaturatingWorkload


def run_style(style: ReplicationStyle) -> None:
    num_networks = 3 if style is ReplicationStyle.ACTIVE_PASSIVE else 2
    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=style, num_networks=num_networks),
    )
    cluster = SimCluster(config)
    plan = (FaultPlan()
            .sever_send(at=0.2, network=0, node=2)
            .sever_recv(at=0.4, network=0, node=4)
            .partition(at=0.6, network=1, groups=[[1, 2], [3, 4]])
            .fail_network(at=0.8, network=1))
    cluster.apply_fault_plan(plan)
    cluster.start()

    workload = SaturatingWorkload(cluster, 512)
    workload.start()

    print(f"--- {style.value} replication ({num_networks} networks) ---")
    previous = 0
    for window_end in (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8):
        cluster.run_until(window_end)
        delivered = cluster.nodes[1].srp.stats.msgs_delivered
        rate = (delivered - previous) / 0.2
        previous = delivered
        changes = cluster.nodes[1].srp.stats.membership_changes - 1
        reports = len(cluster.all_fault_reports())
        print(f"  t={window_end:.1f}s  rate {rate:>9,.0f} msgs/s   "
              f"membership changes {changes}   fault reports {reports}")

    # This gauntlet includes asymmetric node faults that can interrupt a
    # recovery, after which nodes may follow different configuration
    # lineages — extended virtual synchrony (agreement per configuration)
    # is the applicable guarantee, not one global history.
    cluster.assert_evs_consistency()
    print("  extended virtual synchrony intact across all nodes")
    for report in cluster.all_fault_reports():
        print(f"  {report}")
    # §3: "the order in which the fault reports are issued and the content
    # of those reports aids the user in diagnosing of the problem" —
    # automated by repro.core.diagnosis.
    from repro.core import format_diagnoses
    print("  automated diagnosis:")
    for line in format_diagnoses(cluster.diagnose_faults()).splitlines():
        print(f"    {line}")
    print()


def main() -> None:
    for style in (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE,
                  ReplicationStyle.ACTIVE_PASSIVE):
        run_style(style)


if __name__ == "__main__":
    main()
