#!/usr/bin/env python3
"""Totem RRP over real UDP sockets: a totally ordered group chat.

The same sans-io protocol engines that run on the simulator run here over
asyncio datagram sockets — each of the two redundant "networks" is a
separate UDP socket per node (on a real deployment, a separate NIC and
subnet, exactly the paper's testbed).

Three chat members race messages at each other; Totem delivers the same
interleaving to everyone.  No simulator involved — this is real I/O.

Run:  python examples/udp_chat.py
"""

from __future__ import annotations

import asyncio

from repro import ReplicationStyle, TotemConfig
from repro.api.asyncio_node import AsyncioTotemNode
from repro.net.udp import local_address_map

MEMBERS = {1: "alice", 2: "bob", 3: "carol"}


async def main() -> None:
    addresses = local_address_map(sorted(MEMBERS), num_networks=2,
                                  base_port=19300)
    config = TotemConfig(
        replication=ReplicationStyle.ACTIVE,
        num_networks=2,
        # Wall-clock timers: keep retransmission gentle on a loopback demo.
        token_retransmit_interval=0.05,
        token_loss_timeout=0.5,
    )
    nodes = {
        node_id: AsyncioTotemNode(node_id, config, addresses)
        for node_id in MEMBERS
    }
    for node in nodes.values():
        await node.start(initial_members=sorted(MEMBERS))

    async def chat(node_id: int, lines: list) -> None:
        for line in lines:
            nodes[node_id].submit(f"{MEMBERS[node_id]}: {line}".encode())
            await asyncio.sleep(0.01)

    await asyncio.gather(
        chat(1, ["hi all", "anyone seen the build?", "ok found it"]),
        chat(2, ["hey", "which build?", "nice"]),
        chat(3, ["morning", "the nightly one?"]),
    )
    await asyncio.sleep(0.5)

    transcripts = {
        node_id: [m.payload.decode() for m in node.delivered]
        for node_id, node in nodes.items()
    }
    reference = transcripts[1]
    print("=== transcript (identical at every member) ===")
    for line in reference:
        print(f"  {line}")
    assert all(t == reference for t in transcripts.values()), \
        "members saw different orders!"
    print(f"\nall {len(MEMBERS)} members agree on the order of "
          f"{len(reference)} messages (over real UDP sockets)")

    for node in nodes.values():
        node.close()


if __name__ == "__main__":
    asyncio.run(main())
