#!/usr/bin/env python3
"""Quickstart: a four-node Totem RRP ring over two redundant LANs.

Builds a simulated cluster, broadcasts a handful of totally ordered
messages from different nodes, fails one of the two networks mid-run, and
shows that (a) delivery continues untouched and (b) every node raises a
fault report for the administrator — the paper's core promise.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    FaultPlan,
    ReplicationStyle,
    SimCluster,
    TotemConfig,
)


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE, num_networks=2),
    )
    cluster = SimCluster(config)

    # Network 1 dies 50 ms into the run; the ring must not notice.
    cluster.apply_fault_plan(FaultPlan().fail_network(at=0.050, network=1))

    cluster.start()

    # Interleave submissions from several nodes; Totem totally orders them.
    for i in range(10):
        sender = 1 + (i % 4)
        cluster.nodes[sender].submit(f"message {i} from node {sender}".encode())
        cluster.run_for(0.02)  # 20 ms of virtual time between submissions

    cluster.run_for(0.5)  # let the monitors detect the dead network

    print("=== Delivery at node 3 (identical at every node) ===")
    for message in cluster.nodes[3].delivered:
        print(f"  seq {message.seq:>3}  from node {message.sender}: "
              f"{message.payload.decode()}")

    cluster.assert_total_order()
    print("\nTotal order verified across all nodes.")

    print("\n=== Fault reports (the administrator's alarm, paper §3) ===")
    for report in cluster.all_fault_reports():
        print(f"  {report}")

    changes = cluster.nodes[1].srp.stats.membership_changes - 1
    print(f"\nMembership changes caused by the network failure: {changes} "
          "(the failure was transparent)")


if __name__ == "__main__":
    main()
