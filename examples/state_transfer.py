#!/usr/bin/env python3
"""State-machine replication with snapshot state transfer (repro.app).

The paper motivates Totem as the substrate for fault-tolerance
infrastructures that replicate application state (§1).  This example runs
a replicated order book through the full lifecycle such an infrastructure
needs:

1. a three-node group processes orders,
2. a fourth node joins the running group and receives the state by
   snapshot transfer — then processes orders as a full replica,
3. a replica crashes, is restarted, and re-syncs the same way,
4. a network partition isolates one replica; after healing, the
   primary-lineage rule discards its divergent updates.

Run:  python examples/state_transfer.py
"""

from __future__ import annotations

import json

from repro import ClusterConfig, ReplicationStyle, SimCluster, TotemConfig
from repro.app import ReplicatedStateMachine


class OrderBook:
    """A deterministic toy order book (implements StateMachine)."""

    def __init__(self) -> None:
        self.orders = {}
        self.volume = 0

    def apply(self, command: bytes) -> None:
        op = json.loads(command.decode())
        if op["op"] == "place":
            self.orders[op["id"]] = op["qty"]
            self.volume += op["qty"]
        elif op["op"] == "cancel":
            self.volume -= self.orders.pop(op["id"], 0)

    def snapshot(self) -> bytes:
        return json.dumps({"orders": self.orders, "volume": self.volume},
                          sort_keys=True).encode()

    def restore(self, snapshot: bytes) -> None:
        state = json.loads(snapshot.decode())
        self.orders = state["orders"]
        self.volume = state["volume"]


def place(order_id: str, qty: int) -> bytes:
    return json.dumps({"op": "place", "id": order_id, "qty": qty}).encode()


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2, presence_interval=0.2))
    cluster = SimCluster(config)
    rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid], OrderBook(),
                                        initially_synced=(nid != 4))
            for nid in cluster.nodes}

    # Act 1: three replicas process orders.
    for nid in (1, 2, 3):
        cluster.nodes[nid].start([1, 2, 3])
    for i in range(30):
        rsms[1 + i % 3].submit(place(f"ord-{i}", 10))
    cluster.run_for(0.2)
    print(f"act 1: volume at replicas 1-3: "
          f"{[rsms[n].machine.volume for n in (1, 2, 3)]}")

    # Act 2: replica 4 joins the running group.
    cluster.nodes[4].start(None)
    cluster.run_until_condition(lambda: rsms[4].synced, timeout=5.0)
    cluster.run_for(0.1)
    print(f"act 2: replica 4 joined and synced by snapshot — volume "
          f"{rsms[4].machine.volume}, "
          f"snapshots installed: {rsms[4].stats.snapshots_installed}")

    # Act 3: replica 2 crashes and is restarted with empty state.
    cluster.crash_node(2)
    cluster.run_for(0.5)
    rsms[1].submit(place("while-2-down", 500))
    cluster.run_for(0.1)
    fresh = cluster.restart_node(2)
    rsms[2] = ReplicatedStateMachine(fresh, OrderBook(),
                                     initially_synced=False)
    cluster.run_until_condition(lambda: rsms[2].synced, timeout=5.0)
    cluster.run_for(0.1)
    print(f"act 3: replica 2 restarted and re-synced — volume "
          f"{rsms[2].machine.volume} "
          f"(includes the order placed while it was down: "
          f"{'while-2-down' in rsms[2].machine.orders})")

    # Act 4: partition replica 4 away; its lone write loses the merge.
    cluster.partition_cluster([[1, 2, 3], [4]])
    cluster.run_for(0.4)
    rsms[4].submit(place("divergent", 999))
    rsms[1].submit(place("mainline", 111))
    cluster.run_for(0.4)
    cluster.heal_cluster()
    cluster.run_until_condition(
        lambda: all(rsm.synced for rsm in rsms.values()), timeout=8.0)
    cluster.run_for(0.2)
    volumes = {nid: rsm.machine.volume for nid, rsm in rsms.items()}
    print(f"act 4: after partition+heal, volumes: {volumes}")
    print(f"        divergent minority order survived: "
          f"{'divergent' in rsms[1].machine.orders} (primary-lineage rule)")
    assert len(set(volumes.values())) == 1, "replicas diverged!"
    print("all four replicas byte-identical at the end")


if __name__ == "__main__":
    main()
