#!/usr/bin/env python3
"""A sharded key-value store over many concurrent Totem rings.

A single Totem ring saturates at ring-rotation rate.  This demo scales
out the way Multi-Ring Paxos does (see docs/MULTIRING.md): the keyspace
is sharded across N independent rings — each still a full Totem RRP ring,
redundant over the same two shared LANs — and subscribers that need the
whole keyspace merge the per-ring streams deterministically using round
markers (merge clocks), so every auditor sees the exact same byte
sequence without any cross-ring coordination.

The demo writes keys from rotating senders, runs loss on one shared LAN
to show the rings' redundancy still masks it, then verifies (a) every
replica of every shard converged and (b) the two full-keyspace auditors
hold byte-identical merged audit logs.

Run:  python examples/sharded_kv.py [--rings 8] [--keys 200]
"""

from __future__ import annotations

import argparse
import sys

from repro import FaultPlan
from repro.app import ShardedKv
from repro.multiring import MultiRingCluster, MultiRingConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rings", type=int, default=8,
                        help="number of concurrent Totem rings (default 8)")
    parser.add_argument("--keys", type=int, default=200,
                        help="keys to write (default 200)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    config = MultiRingConfig(num_rings=args.rings, num_nodes=3,
                             seed=args.seed)
    cluster = MultiRingCluster(config)
    kv = ShardedKv(cluster, audit_members=(1, 2))

    # Sporadic loss on shared LAN 0 from 0.05s: active replication over the
    # second LAN masks it for every ring at once.
    cluster.apply_fault_plan(
        FaultPlan().set_loss(at=0.05, network=0, rate=0.05)
                   .set_loss(at=0.45, network=0, rate=0.0))

    cluster.start()

    for i in range(args.keys):
        key = f"user:{i}".encode()
        kv.set(key, f"value-{i}".encode(), sender=1 + i % config.num_nodes)
        if i % 20 == 19:
            cluster.run_for(0.02)
    cluster.run_for(0.5)
    # Quiesce: stop cutting new rounds, let the open ones drain and merge.
    cluster.stop_markers()
    cluster.run_for(0.3)

    per_ring = [cluster.groups[g].delivered_count()
                for g in sorted(cluster.groups)]
    print(f"rings: {config.num_rings}, keys written: {args.keys}")
    print(f"messages delivered per ring: {per_ring}")
    print(f"operations applied per replica: "
          f"{[kv.applied[m] for m in sorted(kv.applied)]}")

    cluster.assert_total_order()

    if not kv.converged():
        print("FAIL: replicas diverged", file=sys.stderr)
        return 1
    reference = kv.stores[1]
    if len(reference) != args.keys:
        print(f"FAIL: expected {args.keys} keys, got {len(reference)}",
              file=sys.stderr)
        return 1
    print(f"all replicas identical: {len(reference)} keys across "
          f"{config.num_rings} shards")

    digests = {m: kv.audit_digest(m) for m in kv.auditors}
    print(f"merged audit digests: {digests}")
    logs = [kv.audit_log(m) for m in kv.auditors]
    if any(log != logs[0] for log in logs[1:]):
        print("FAIL: audit logs differ between subscribers", file=sys.stderr)
        return 1
    entries = len(kv.auditors[1].merged)
    print(f"auditors byte-identical: {entries} merged operations over "
          f"{kv.auditors[1].rounds_emitted} rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
