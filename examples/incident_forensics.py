#!/usr/bin/env python3
"""Incident forensics: flight recorder + automated fault diagnosis.

An operator's view of a bad afternoon: a cluster runs a steady workload
while a sequence of faults unfolds — a NIC's transmit path dies, a switch
loses power, a node crashes and is restarted.  Afterwards we reconstruct
what happened from two sources the library maintains automatically:

* the **flight recorder** (`cluster.tracer`) — membership-level protocol
  milestones with virtual timestamps and reasons,
* the **fault reports** plus the §3-motivated automated **diagnosis**
  (`cluster.diagnose_faults()`), which infers the physical fault from who
  reported what, in which order,
* the **telemetry subsystem** (`repro.obs`, enabled here with
  `obs="full"`) — time series, health scores and a self-contained
  HTML/SVG run report showing the whole afternoon on one timeline.

Run:  python examples/incident_forensics.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    FaultPlan,
    ReplicationStyle,
    SimCluster,
    TotemConfig,
)
from repro.bench.workload import SaturatingWorkload
from repro.core import format_diagnoses
from repro.obs import build_run_document, write_report, write_run_document


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=ReplicationStyle.PASSIVE,
                          num_networks=2),
        obs="full",  # telemetry: sampling + per-event hooks
    )
    cluster = SimCluster(config)

    # This afternoon's incidents (the operator does not know this yet):
    cluster.apply_fault_plan(
        FaultPlan()
        .sever_send(at=0.3, network=0, node=3)    # node 3's NIC0 TX dies
        .fail_network(at=1.0, network=1))          # switch 1 loses power
    cluster.start()
    workload = SaturatingWorkload(cluster, 700)
    workload.start()

    cluster.run_until(0.8)
    # Ops also restarts a box that "looked weird".
    cluster.crash_node(4)
    cluster.run_until(1.6)
    cluster.restart_node(4)
    cluster.run_until(3.0)

    print("=== what the system did (cluster summary) ===")
    print(cluster.summary().format())

    print("\n=== flight recorder (membership milestones) ===")
    for event in cluster.tracer.events(category="membership"):
        print(f"  {event}")

    print("\n=== raw fault reports (the administrator's alarms) ===")
    for report in cluster.all_fault_reports():
        print(f"  {report}")

    print("\n=== automated diagnosis (paper §3) ===")
    print(format_diagnoses(cluster.diagnose_faults()))

    print("\n=== telemetry (repro.obs) ===")
    obs = cluster.obs
    for i in range(len(cluster.lans)):
        print(f"  net{i}: health {obs.health.score(i):.2f} "
              f"({obs.health.state(i)})")
    for transition in obs.health.transitions:
        print(f"  {transition}")
    document = build_run_document(
        cluster, meta={"title": "Incident forensics: a bad afternoon"})
    write_run_document(document, "incident_run.json")
    write_report(document, "incident_report.html")
    print("  wrote incident_run.json (replayable with "
          "`python -m repro.obs report incident_run.json`)")
    print("  wrote incident_report.html (open in any browser)")

    cluster.assert_total_order(nodes=(1, 2, 3))
    print("\ntotal order verified across the continuously-alive nodes")


if __name__ == "__main__":
    main()
