#!/usr/bin/env python3
"""A replicated key-value store on Totem's total order (state machines).

This is the classic group-communication application the paper motivates
(§1: "financial, avionic, or military applications... based on clusters of
computers"): every replica applies the same totally ordered stream of
operations, so the replicas stay byte-identical without locks or a central
coordinator — and with the Totem RRP underneath, they stay identical
*through network failures*.

The demo runs four replicas over two networks with passive replication,
issues concurrent writes and increments from all replicas, severs one
node's receive path on network 0 mid-run (a §3 partial fault), and then
verifies every replica holds exactly the same state.

Run:  python examples/replicated_kv.py
"""

from __future__ import annotations

import json
from typing import Dict

from repro import (
    ClusterConfig,
    DeliveredMessage,
    FaultPlan,
    ReplicationStyle,
    SimCluster,
    TotemConfig,
)


class KvReplica:
    """One state-machine replica: applies delivered operations in order."""

    def __init__(self) -> None:
        self.data: Dict[str, int] = {}
        self.applied = 0

    def apply(self, message: DeliveredMessage) -> None:
        op = json.loads(message.payload.decode())
        if op["type"] == "set":
            self.data[op["key"]] = op["value"]
        elif op["type"] == "incr":
            self.data[op["key"]] = self.data.get(op["key"], 0) + op["by"]
        elif op["type"] == "del":
            self.data.pop(op["key"], None)
        self.applied += 1


def op(kind: str, **fields) -> bytes:
    return json.dumps({"type": kind, **fields}).encode()


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=ReplicationStyle.PASSIVE, num_networks=2),
    )
    cluster = SimCluster(config)

    replicas = {node_id: KvReplica() for node_id in range(1, 5)}
    for node_id, replica in replicas.items():
        cluster.nodes[node_id]._user_deliver = replica.apply

    # Node 3 loses its receive path on network 0 at t=0.1s (§3 fault model):
    # the RRP must route around it without any replica diverging.
    cluster.apply_fault_plan(FaultPlan().sever_recv(at=0.1, network=0, node=3))

    cluster.start()

    # Concurrent, conflicting operations from every replica.
    for round_no in range(50):
        cluster.nodes[1].submit(op("incr", key="counter", by=1))
        cluster.nodes[2].submit(op("set", key=f"user:{round_no}", value=round_no))
        cluster.nodes[3].submit(op("incr", key="counter", by=10))
        cluster.nodes[4].submit(op("del", key=f"user:{round_no - 5}"))
        cluster.run_for(0.01)

    cluster.run_for(0.5)

    states = {nid: replica.data for nid, replica in replicas.items()}
    reference = states[1]
    print(f"operations applied per replica: "
          f"{[replicas[n].applied for n in sorted(replicas)]}")
    print(f"counter value at every replica: "
          f"{[states[n].get('counter') for n in sorted(states)]}")
    assert all(state == reference for state in states.values()), \
        "replicas diverged!"
    print(f"all 4 replicas identical: {len(reference)} keys, "
          f"counter = {reference['counter']} (expected {50 * 11})")

    for report in cluster.all_fault_reports():
        print(f"fault report: {report}")


if __name__ == "__main__":
    main()
