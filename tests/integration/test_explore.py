"""End-to-end tests for the ``repro.check explore`` model checker.

Three things must hold:

* the fixed protocol tree is clean — a small exploration completes
  exhaustively with zero violations;
* the checker has teeth — an injected delivery-order bug (the same
  eager-delivery mutation the campaign corpus uses) is found, exported as
  a campaign scenario, and the export independently reproduces through the
  campaign runner;
* the bug the explorer found for real (a stopped incarnation processing
  an in-flight frame and re-arming its timers after restart) stays fixed,
  pinned by ``tests/scenarios/restart_inflight_token.json``.
"""

import json
import os

import pytest

from repro.campaign import load_scenario, run_scenario
from repro.check.explore import (
    ExploreOptions,
    apply_mutation,
    explore,
    replay_trace,
)
from repro.core.base import ReplicationEngine
from repro.types import ReplicationStyle

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "..", "scenarios")
TRACE_DIR = os.path.join(os.path.dirname(__file__), "..", "traces")


def _quick_options(**overrides):
    base = dict(nodes=2, networks=2, max_msgs=2, horizon=0.003,
                settle=0.3, max_depth=2, time_limit=120.0)
    base.update(overrides)
    return ExploreOptions(**base)


def test_exploration_is_exhaustive_and_clean():
    report = explore(_quick_options())
    assert report.exhaustive
    assert report.clean
    assert report.paths > 10
    assert report.states > 10
    # The canonical-only iteration plus the single-drop frontier.
    assert report.iterations[0] == (0, 1, True)
    assert not report.iterations[-1][2]  # final depth: nothing truncated


def test_por_and_no_por_agree():
    with_por = explore(_quick_options())
    without = explore(_quick_options(por=False))
    assert with_por.clean and without.clean
    assert with_por.exhaustive and without.exhaustive
    # POR may only *merge* equivalent schedules, never skip distinct ones.
    assert with_por.paths <= without.paths


def test_passive_style_exploration_clean():
    report = explore(_quick_options(style=ReplicationStyle.PASSIVE,
                                    settle=0.4))
    assert report.exhaustive
    assert report.clean


def test_batched_exploration_clean():
    """The batch hot path survives the same adversarial schedules.

    Four messages over two nodes queue two per sender, so token visits
    really coalesce multiple packets into one droppable frame train —
    losing a train must lose every carried packet atomically and recover
    through ordinary retransmission.
    """
    report = explore(_quick_options(max_msgs=4, batching=True,
                                    horizon=0.004, settle=0.4))
    assert report.exhaustive
    assert report.clean
    assert report.paths > 10


def test_mutation_is_caught_and_exported(tmp_path):
    """Acceptance: the eager-delivery bug is found and the exported
    counterexample replays through the campaign runner."""
    options = _quick_options(
        horizon=0.005, settle=0.4, fault_budget=2, max_depth=2,
        drop_kinds=("data",), export_dir=str(tmp_path))
    with apply_mutation("eager-delivery"):
        report = explore(options)
    assert report.violations, "mutation not caught"
    first = report.violations[0]
    # Root cause: both network copies of one data frame dropped, so the
    # mutated node skips the gap and diverges -> agreement breach.
    oracles = {violation.oracle for violation in first.oracles}
    assert "agreement" in oracles or "evs-ledger" in oracles
    assert first.scenario_path and os.path.exists(first.scenario_path)
    assert first.trace_path and os.path.exists(first.trace_path)
    assert first.replay_verified, "exported scenario did not reproduce"

    # The exported scenario is a valid, loadable campaign case and is
    # clean once the mutation is removed (the bug is in the protocol
    # mutation, not the scenario).
    scenario = load_scenario(first.scenario_path)
    assert any(event.kind == "drop_frame" for event in scenario.events)
    result = run_scenario(scenario)
    assert result.ok, result.violations

    # The decision trace replays exactly: violations under the mutation,
    # none on the fixed tree.
    with apply_mutation("eager-delivery"):
        _options, violations = replay_trace(first.trace_path)
    assert violations
    _options, violations = replay_trace(first.trace_path)
    assert violations == []


def test_trace_export_is_json_roundtrippable(tmp_path):
    options = _quick_options(
        horizon=0.005, settle=0.4, fault_budget=2, max_depth=2,
        drop_kinds=("data",), export_dir=str(tmp_path))
    with apply_mutation("eager-delivery"):
        report = explore(options)
    with open(report.violations[0].trace_path, encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["decisions"]
    rebuilt = ExploreOptions.from_dict(data["options"])
    assert rebuilt.style is options.style
    assert rebuilt.fault_budget == options.fault_budget


# ----- the explorer-found lifecycle bug, pinned -----

@pytest.fixture
def unguarded_on_packet(monkeypatch):
    """Re-open the bug the explorer found: let a stopped engine process
    arriving frames (it then re-arms timers after stop())."""
    original = ReplicationEngine.on_packet

    def unguarded(self, packet, network):
        stopped = self._stopped
        self._stopped = False
        try:
            original(self, packet, network)
        finally:
            self._stopped = stopped

    monkeypatch.setattr(ReplicationEngine, "on_packet", unguarded)


def test_restart_inflight_token_scenario_pinned():
    """The pinned counterexample is clean on the fixed tree."""
    scenario = load_scenario(
        os.path.join(SCENARIO_DIR, "restart_inflight_token.json"))
    result = run_scenario(scenario)
    assert result.ok, result.violations


def test_restart_inflight_token_scenario_has_teeth(unguarded_on_packet):
    """Removing the fix makes the pinned scenario fail the same way the
    explorer originally reported (timer-after-stop)."""
    scenario = load_scenario(
        os.path.join(SCENARIO_DIR, "restart_inflight_token.json"))
    result = run_scenario(scenario)
    assert any("timer-after-stop" in str(violation)
               for violation in result.violations)


def test_restart_inflight_token_trace_pinned():
    """The explorer's own decision trace for the lifecycle bug replays
    clean on the fixed tree (exact schedule, not just the scenario)."""
    _options, violations = replay_trace(
        os.path.join(TRACE_DIR, "restart_inflight_token.trace.json"))
    assert violations == []


def test_restart_inflight_token_trace_has_teeth(unguarded_on_packet):
    _options, violations = replay_trace(
        os.path.join(TRACE_DIR, "restart_inflight_token.trace.json"))
    assert any("timer-after-stop" in violation.detail
               for violation in violations)


def test_crash_exploration_smoke():
    """A one-deviation churn exploration stays clean after the fix (the
    full crash+restart product runs in the nightly deep job)."""
    report = explore(ExploreOptions(
        nodes=2, networks=2, max_msgs=2, horizon=0.0001, settle=0.8,
        faults=("crash", "restart"), fault_budget=1,
        max_depth=1, time_limit=120.0))
    assert report.clean
    assert report.paths > 5
