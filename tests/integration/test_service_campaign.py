"""Tier-1 pin of the service-facade campaign scenario.

``tests/scenarios/service_overload.json`` drives the production facade
through a client overload burst, a ring-member crash during load, and a
heal + restart — the resilience story in one case file.  Pinned here:

* the case file is byte-identical to its canonical serialization (so an
  accidental schema or default change shows up as a diff, not silently);
* the run passes every oracle, including the fault-transparency oracle:
  the fault-free twin's applied set minus typed sheds equals what the
  faulty run applied — sheds are the *only* client-visible deviation;
* replay is deterministic byte for byte.
"""

import os

import pytest

from repro.campaign import load_scenario, run_scenario
from repro.errors import ConfigError

SCENARIO = os.path.join(os.path.dirname(__file__), "..", "scenarios",
                        "service_overload.json")


def test_case_file_pinned_byte_identical():
    with open(SCENARIO, "rb") as fh:
        on_disk = fh.read()
    scenario = load_scenario(SCENARIO)
    assert scenario.to_json().encode() == on_disk


@pytest.fixture(scope="module")
def result():
    return run_scenario(load_scenario(SCENARIO))


def test_scenario_passes_all_oracles(result):
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_fault_transparency_twin_checked(result):
    # The transparency oracle must actually have run (crash present, so
    # the fault-free twin is mandatory for the facade's contract).
    assert result.twin_checked
    summary = result.service_summary
    assert summary is not None
    admitted = summary["admitted"]
    shed = summary["shed"]
    assert admitted and shed, "scenario must exercise both outcomes"
    # Exactly one decision per issued request, no overlap.
    assert not (admitted & shed)
    assert admitted | shed == set(summary["issued"])


def test_overload_was_real_and_ring_never_stalled(result):
    summary = result.service_summary
    reasons = summary["shed_reasons"]
    # The burst overloads admission (rate/queue) and the ring
    # (backpressure); the shedder must keep the SRP queue from stalling.
    assert reasons.get("backpressure", 0) > 0
    assert summary["ring_stalls"] == 0
    assert result.delivered_total > 0


def test_replay_is_byte_identical():
    scenario = load_scenario(SCENARIO)
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.replay_text == second.replay_text
    assert "service: issued=" in first.replay_text
    assert first.replay_text.endswith("verdict: PASS\n")


def test_service_scenarios_require_unreplicated_smr():
    scenario = load_scenario(SCENARIO)
    data = scenario.to_dict()
    data["smr"] = True
    with pytest.raises(ConfigError, match="smr"):
        type(scenario).from_dict(data)


def test_crashing_the_gateway_is_rejected():
    scenario = load_scenario(SCENARIO)
    data = scenario.to_dict()
    for event in data["events"]:
        if event["kind"] == "crash":
            event["node"] = 1                  # the facade gateway
    with pytest.raises(ConfigError, match="gateway"):
        type(scenario).from_dict(data)
