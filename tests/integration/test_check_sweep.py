"""Integration smoke tests for the ``repro.check`` CLI and sweep driver."""

from __future__ import annotations

from repro.check import INVARIANTS, CheckMode, SWEEP_STYLES, run_sweep
from repro.check.cli import main


class TestSweepDriver:
    def test_quick_sweep_all_styles_clean(self):
        report = run_sweep(runs_per_style=1, base_seed=11, duration=0.4,
                           mode=CheckMode.STRICT, messages=40)
        assert len(report.cases) == len(SWEEP_STYLES)
        assert report.clean, report.render()
        assert all(case.fault_events > 0 for case in report.cases)

    def test_report_renders_verdict(self):
        report = run_sweep(runs_per_style=1, base_seed=2, duration=0.3,
                           messages=30)
        text = report.render()
        assert "PASS: no invariant violations" in text
        for style in SWEEP_STYLES:
            assert style.value in text

    def test_cases_are_deterministic(self):
        from repro.check import run_case
        from repro.types import ReplicationStyle
        a = run_case(ReplicationStyle.PASSIVE, 5, duration=0.3, messages=30)
        b = run_case(ReplicationStyle.PASSIVE, 5, duration=0.3, messages=30)
        assert a.delivered == b.delivered
        assert a.fault_events == b.fault_events


class TestCli:
    def test_sweep_quick_exits_zero(self, capsys):
        assert main(["sweep", "--quick", "--quiet", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "PASS: no invariant violations" in out

    def test_rules_lists_full_catalogue(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for name, (requirement, _) in INVARIANTS.items():
            assert name in out
            assert requirement in out

    def test_style_filter(self, capsys):
        assert main(["sweep", "--quick", "--quiet", "--styles", "active",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "passive" not in out.replace("active_passive", "")
