"""Integration smoke tests for the ``repro.check`` CLI and sweep driver."""

from __future__ import annotations

from repro.check import INVARIANTS, CheckMode, SWEEP_STYLES, run_sweep
from repro.check.cli import main


class TestSweepDriver:
    def test_quick_sweep_all_styles_clean(self):
        report = run_sweep(runs_per_style=1, base_seed=11, duration=0.4,
                           mode=CheckMode.STRICT, messages=40)
        assert len(report.cases) == len(SWEEP_STYLES)
        assert report.clean, report.render()
        assert all(case.fault_events > 0 for case in report.cases)

    def test_report_renders_verdict(self):
        report = run_sweep(runs_per_style=1, base_seed=2, duration=0.3,
                           messages=30)
        text = report.render()
        assert "PASS: no invariant violations" in text
        for style in SWEEP_STYLES:
            assert style.value in text

    def test_cases_are_deterministic(self):
        from repro.check import run_case
        from repro.types import ReplicationStyle
        a = run_case(ReplicationStyle.PASSIVE, 5, duration=0.3, messages=30)
        b = run_case(ReplicationStyle.PASSIVE, 5, duration=0.3, messages=30)
        assert a.delivered == b.delivered
        assert a.fault_events == b.fault_events


class TestCli:
    def test_sweep_quick_exits_zero(self, capsys):
        assert main(["sweep", "--quick", "--quiet", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "PASS: no invariant violations" in out

    def test_rules_lists_full_catalogue(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for name, (requirement, _) in INVARIANTS.items():
            assert name in out
            assert requirement in out

    def test_style_filter(self, capsys):
        assert main(["sweep", "--quick", "--quiet", "--styles", "active",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "passive" not in out.replace("active_passive", "")


class TestTraceDeterminism:
    """Same-seed runs must be bit-for-bit identical, trace line by trace
    line.  This is the regression net for scheduler/LAN hot-path changes
    (event batching, heap compaction): any observable reordering shows up
    as a diff in the trace-recorder output."""

    def test_same_seed_case_trace_byte_identical(self):
        from repro.check import run_case
        from repro.types import ReplicationStyle
        kwargs = dict(duration=0.4, messages=40, capture_trace=True)
        a = run_case(ReplicationStyle.ACTIVE, 13, **kwargs)
        b = run_case(ReplicationStyle.ACTIVE, 13, **kwargs)
        assert a.trace_text is not None and a.trace_text != ""
        assert a.trace_text.encode() == b.trace_text.encode()
        assert a.delivered == b.delivered

    def test_same_seed_sweep_trace_byte_identical(self):
        kwargs = dict(runs_per_style=1, base_seed=4, duration=0.3,
                      messages=30, capture_trace=True)
        first = run_sweep(**kwargs)
        second = run_sweep(**kwargs)
        texts_a = [case.trace_text for case in first.cases]
        texts_b = [case.trace_text for case in second.cases]
        assert all(text for text in texts_a)
        assert texts_a == texts_b
        assert ([case.delivered for case in first.cases]
                == [case.delivered for case in second.cases])

    def test_trace_capture_off_by_default(self):
        from repro.check import run_case
        from repro.types import ReplicationStyle
        case = run_case(ReplicationStyle.ACTIVE, 3, duration=0.2, messages=10)
        assert case.trace_text is None
