"""Integration tests for passive replication (paper §6) on the full stack."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


class TestRoundRobin:
    def test_traffic_split_across_networks(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.start()
        for i in range(50):
            cluster.nodes[1 + i % 4].submit(b"x" * 400)
        drain(cluster)
        frames0 = cluster.lans[0].stats.frames_sent
        frames1 = cluster.lans[1].stats.frames_sent
        assert frames0 > 10 and frames1 > 10
        assert frames0 == pytest.approx(frames1, rel=0.35)

    def test_no_duplicates_generated(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.start()
        for i in range(30):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster)
        assert all(n.srp.stats.duplicate_packets == 0
                   for n in cluster.nodes.values())
        cluster.assert_total_order()

    def test_three_networks(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE, num_networks=3)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(b"y" * 300)
        drain(cluster)
        assert all(lan.stats.frames_sent > 10 for lan in cluster.lans)
        cluster.assert_total_order()


class TestRequirementP1:
    def test_out_of_order_arrival_causes_no_retransmission(self):
        """Figure 3 scenarios: networks with very different latencies
        reorder messages against the token; P1 forbids spurious rtrs."""
        from repro.config import LanConfig
        cluster = make_cluster(ReplicationStyle.PASSIVE,
                               lan=LanConfig(latency=20e-6))
        # Make network 1 ten times slower in propagation.
        cluster.lans[1].config = LanConfig(latency=500e-6)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(f"m{i:02d}".encode())
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 60 for n in cluster.nodes.values())
        rtr = sum(n.srp.stats.retransmission_requests
                  for n in cluster.nodes.values())
        assert rtr == 0

    def test_tokens_buffered_under_skew(self):
        # Packing is disabled so each visit sends several packets; with an
        # odd number of sends per visit the round-robin assigns messages and
        # the token to different networks, which is what makes the slow
        # network's messages trail the fast network's token.
        from repro.config import LanConfig
        cluster = make_cluster(ReplicationStyle.PASSIVE,
                               enable_packing=False)
        cluster.lans[1].config = LanConfig(latency=800e-6)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster, timeout=10.0)
        buffered = sum(n.rrp.stats.tokens_buffered
                       for n in cluster.nodes.values())
        assert buffered > 0  # the mechanism actually engaged


class TestRequirementP3:
    def test_real_loss_recovered_after_token_timeout(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE, seed=23,
                               passive_token_timeout=0.005)
        plan = (FaultPlan()
                .set_loss(at=0.0, network=0, rate=0.05)
                .set_loss(at=0.0, network=1, rate=0.05))
        cluster.apply_fault_plan(plan)
        cluster.start()
        for i in range(80):
            cluster.nodes[1 + i % 4].submit(f"m{i:03d}".encode())
        drain(cluster, timeout=30.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 80 for n in cluster.nodes.values())
        # Real loss must have exercised retransmission (unlike active).
        assert sum(n.srp.stats.retransmissions_served
                   for n in cluster.nodes.values()) > 0


class TestNetworkFailure:
    def test_total_failure_transparent_with_reports(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.05, network=0))
        cluster.start()
        for burst in range(25):
            for node_id in cluster.nodes:
                cluster.nodes[node_id].submit(f"{node_id}-{burst}".encode())
            cluster.run_for(0.01)
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 100 for n in cluster.nodes.values())
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())
        cluster.run_until_condition(
            lambda: all(0 in n.faulty_networks for n in cluster.nodes.values()),
            timeout=5.0)

    def test_paper_fault_propagation_story(self):
        """§3: a node that stops sending on a network is itself interpreted
        as a network fault by the other nodes' monitors, and the order of
        the resulting reports aids diagnosis.

        What the protocol guarantees (and this test asserts): the victim
        node reports the truly faulty network first, every node eventually
        raises an alarm, and the system keeps delivering in total order
        with no membership change.  It does NOT guarantee the *other*
        nodes blame the right network: the deaf node triggers sustained
        retransmissions, which skew per-origin reception counts and can
        falsely condemn a healthy network (see DESIGN.md §6 — the same
        false-positive class corosync's RRP exhibited in production).
        The refuse-last-network safeguard keeps the ring running anyway.
        """
        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.apply_fault_plan(FaultPlan().sever_recv(at=0.1, network=0,
                                                        node=2))
        cluster.start()
        for i in range(400):
            cluster.nodes[1 + i % 4].submit(b"z" * 256)
            cluster.run_for(0.002)
        cluster.run_until_condition(
            lambda: all(n.log.fault_reports for n in cluster.nodes.values()),
            timeout=10.0)
        reports = cluster.all_fault_reports()
        # The victim is the first to know, and it blames the right network.
        assert reports[0].node == 2
        assert reports[0].network == 0
        assert 0 in cluster.nodes[2].faulty_networks
        # Everyone raised an alarm for the administrator.
        assert {r.node for r in reports} == {1, 2, 3, 4}
        # And the system healed: total order, the full ring reassembled
        # (the cross-marking corner may cost one reconfiguration — unlike a
        # clean network failure, which tests above show is fully
        # transparent), and nothing was lost.
        cluster.run_for(0.5)
        cluster.assert_total_order()
        assert all(len(n.membership) == 4 for n in cluster.nodes.values())
        assert all(n.srp.stats.membership_changes <= 2
                   for n in cluster.nodes.values())
        cluster.run_until_condition(
            lambda: all(len(n.log.payloads) == 400
                        for n in cluster.nodes.values()),
            timeout=10.0)

    def test_requirement_p5_sporadic_loss_forgiven(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE, seed=31,
                               recv_count_topup_interval=0.05)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=1,
                                                      rate=0.002))
        cluster.start()
        for i in range(300):
            cluster.nodes[1 + i % 4].submit(b"w" * 200)
            cluster.run_for(0.003)
        cluster.run_for(0.5)
        assert all(n.faulty_networks == [] for n in cluster.nodes.values())
