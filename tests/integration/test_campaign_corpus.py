"""Tier-1 replay of the seed-pinned campaign corpus (tests/scenarios/).

Three layers of assurance:

* every corpus scenario passes all conformance oracles on the real code;
* replay is deterministic — running a case twice yields byte-identical
  replay text (the case files are cross-machine regression anchors);
* the oracles have teeth — an injected delivery-order bug (eager delivery
  that skips sequence gaps instead of waiting for retransmission, the
  kind of bug the PR-1 token-lifecycle fixes guarded against) makes a
  corpus scenario fail, and the minimizer shrinks the failing timeline.
"""

import glob
import os

import pytest

from repro.campaign import load_scenario, minimize_scenario, run_scenario
from repro.srp.engine import TotemSrp

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "..", "scenarios")
CORPUS = sorted(glob.glob(os.path.join(SCENARIO_DIR, "*.json")))


def corpus_ids():
    return [os.path.splitext(os.path.basename(p))[0] for p in CORPUS]


def test_corpus_exists():
    assert len(CORPUS) >= 5, "seed-pinned corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_corpus_scenario_conformant(path):
    scenario = load_scenario(path)
    result = run_scenario(scenario)
    assert result.ok, "\n".join(str(v) for v in result.violations)
    assert result.delivered_total > 0, "scenario delivered nothing"


@pytest.mark.parametrize("path", CORPUS[:2], ids=corpus_ids()[:2])
def test_corpus_replay_is_byte_identical(path):
    scenario = load_scenario(path)
    first = run_scenario(scenario).replay_text
    second = run_scenario(scenario).replay_text
    assert first == second
    assert first.endswith("verdict: PASS\n")


@pytest.fixture
def eager_delivery_bug(monkeypatch):
    """Inject a delivery-order bug: deliver in arrival order, skipping gaps.

    This is the canonical failure mode the ordered-delivery machinery
    exists to prevent — a node that missed a frame on a lossy network
    delivers later frames anyway and permanently skips the gap instead of
    waiting for retransmission, so lossy receivers diverge from clean ones.
    """

    def eager_try_deliver(self):
        while self._delivered_seq < self.recv_buffer.high_seq:
            seq = self._delivered_seq + 1
            packet = self.recv_buffer.get(seq)
            self._delivered_seq = seq
            if packet is not None:
                self._deliver_packet_chunks(
                    packet, self._reassembler,
                    safe=seq <= self._stable_seq,
                    config_id=self.ring_id)

    monkeypatch.setattr(TotemSrp, "_try_deliver", eager_try_deliver)


def _lossy_scenario():
    return load_scenario(os.path.join(SCENARIO_DIR, "passive_lossy.json"))


def test_oracles_catch_seeded_delivery_bug(eager_delivery_bug):
    result = run_scenario(_lossy_scenario())
    assert not result.ok, "oracles failed to flag the injected bug"
    oracles = {v.oracle for v in result.violations}
    assert "agreement" in oracles


def test_minimizer_shrinks_seeded_bug_case(eager_delivery_bug):
    scenario = _lossy_scenario()
    minimized = minimize_scenario(scenario)
    assert minimized.minimized_events <= 3
    assert minimized.minimized_events < len(scenario.fault_events)
    # The minimized case still fails, and for the same reason.
    result = run_scenario(minimized.scenario)
    assert not result.ok
    assert any(v.oracle == "agreement" for v in result.violations)


@pytest.mark.parametrize("seed", [103, 108])
def test_generated_regression_seeds_pass(seed):
    """Generated scenarios that exposed real protocol bugs stay green.

    Seed 103: a restarted node reused ring ids (no stable-storage ring-seq
    watermark), so two different configurations shared a RingId and the
    agreement oracle saw divergent streams in "one" configuration.
    Seed 108: a restarted incarnation was counted as an old-ring survivor
    in the transitional configuration, so the SMR layer never saw it as a
    newcomer and never offered state transfer.
    """
    from repro.campaign import random_scenario

    result = run_scenario(random_scenario(seed))
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_minimize_refuses_passing_scenario():
    scenario = load_scenario(os.path.join(SCENARIO_DIR, "active_loss.json"))
    with pytest.raises(ValueError, match="does not fail"):
        minimize_scenario(scenario)
