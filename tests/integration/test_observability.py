"""End-to-end tests for the repro.obs telemetry subsystem."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.obs import (
    build_run_document,
    render_report,
    samples_to_jsonl,
)
from repro.obs.cli import main as obs_main
from repro.types import ReplicationStyle


def make_obs_cluster(mode: str, seed: int = 7, interval: float = 0.01,
                     style: ReplicationStyle = ReplicationStyle.ACTIVE,
                     num_nodes: int = 4) -> SimCluster:
    config = build_config(style, num_nodes, seed=seed)
    config = dataclasses.replace(config, obs=mode, obs_interval=interval)
    return SimCluster(config)


def run_fig6_with_fault(mode: str, seed: int = 7,
                        duration: float = 0.5) -> SimCluster:
    cluster = make_obs_cluster(mode, seed=seed)
    cluster.apply_fault_plan(FaultPlan().fail_network(at=0.2, network=0))
    cluster.start()
    workload = SaturatingWorkload(cluster, 700)
    workload.start()
    cluster.run_for(duration)
    workload.stop()
    return cluster


class TestModes:
    def test_off_constructs_nothing(self):
        cluster = make_obs_cluster("off")
        assert cluster.obs is None
        for node in cluster.nodes.values():
            assert node.srp.obs is None
            assert node.rrp.obs is None

    def test_off_and_sampled_trajectories_identical(self):
        """Sampling is read-only: the protocol outcome must not change."""
        outcomes = []
        for mode in ("off", "sampled"):
            cluster = make_obs_cluster(mode, seed=3)
            cluster.start()
            for i in range(60):
                cluster.nodes[1 + i % 4].submit(b"m" * 200)
                cluster.run_for(0.002)
            cluster.run_for(0.1)
            outcomes.append([
                (m.sender, m.seq, m.payload)
                for m in cluster.nodes[1].delivered])
        assert outcomes[0] == outcomes[1]
        assert len(outcomes[0]) == 60

    def test_sampled_mode_does_not_attach_hooks(self):
        cluster = make_obs_cluster("sampled")
        cluster.start()
        cluster.run_for(0.1)
        assert cluster.obs is not None
        assert all(n.srp.obs is None for n in cluster.nodes.values())
        # Periodic samples accumulate (t=0 baseline + ~10 ticks; the last
        # tick may fall just past the horizon from float accumulation).
        assert len(cluster.obs.samples) in (10, 11)
        assert cluster.obs.registry.get("totem_token_rotation_seconds",
                                        {"node": 1}) is None

    def test_full_mode_records_rotation_histogram(self):
        cluster = make_obs_cluster("full")
        cluster.start()
        cluster.run_for(0.2)
        hist = cluster.obs.registry.get("totem_token_rotation_seconds",
                                        {"node": 1})
        assert hist is not None
        assert hist.count > 10
        assert 0.0 < hist.mean < 0.1


class TestSampling:
    def test_sample_rows_shape(self):
        cluster = run_fig6_with_fault("full")
        rows = cluster.obs.samples
        assert len(rows) in (50, 51)  # t=0 baseline + ~50 ticks over 0.5s
        row = rows[-1]
        assert set(row) == {"t", "nodes", "lans", "health", "scheduler"}
        assert sorted(row["nodes"]) == ["1", "2", "3", "4"]
        assert [lan["index"] for lan in row["lans"]] == [0, 1]
        snap = row["nodes"]["1"]
        assert snap["msgs_delivered"] > 0
        assert "window_rotation_mean" in snap
        assert len(snap["monitor_problem"]) == 2

    def test_fault_drives_health_to_failed(self):
        cluster = run_fig6_with_fault("full")
        obs = cluster.obs
        assert obs.health.state(0) == "failed"
        assert obs.health.state(1) == "healthy"
        kinds = {e.kind for e in obs.events}
        assert "fault-injected" in kinds
        assert "health-transition" in kinds

    def test_scheduler_counters_progress(self):
        cluster = run_fig6_with_fault("sampled")
        processed = [r["scheduler"]["events_processed"]
                     for r in cluster.obs.samples]
        assert processed == sorted(processed)
        assert processed[-1] > 1000

    def test_restart_reattaches_hooks(self):
        cluster = make_obs_cluster("full")
        cluster.start()
        cluster.run_for(0.05)
        cluster.crash_node(2)
        cluster.run_for(0.3)
        fresh = cluster.restart_node(2)
        assert fresh.srp.obs is cluster.obs
        cluster.run_for(0.3)


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        first = run_fig6_with_fault("full", seed=11)
        second = run_fig6_with_fault("full", seed=11)
        assert (samples_to_jsonl(first.obs.samples)
                == samples_to_jsonl(second.obs.samples))
        doc_a = build_run_document(first)
        doc_b = build_run_document(second)
        assert (json.dumps(doc_a, sort_keys=True)
                == json.dumps(doc_b, sort_keys=True))

    def test_different_seed_differs_under_random_loss(self):
        """The seed only matters once randomness is consumed (loss model);
        then it must show up in the telemetry."""
        def run(seed):
            cluster = make_obs_cluster("full", seed=seed)
            cluster.apply_fault_plan(
                FaultPlan().set_loss(at=0.0, network=1, rate=0.05))
            cluster.start()
            workload = SaturatingWorkload(cluster, 700)
            workload.start()
            cluster.run_for(0.3)
            workload.stop()
            return samples_to_jsonl(cluster.obs.samples)

        assert run(11) != run(12)
        assert run(11) == run(11)


class TestRunDocumentAndReport:
    def test_document_requires_obs(self):
        cluster = make_obs_cluster("off")
        cluster.start()
        cluster.run_for(0.05)
        with pytest.raises(ConfigError):
            build_run_document(cluster)

    def test_document_contents(self):
        cluster = run_fig6_with_fault("full")
        document = build_run_document(cluster, meta={"title": "t"})
        assert document["schema"] == 1
        assert document["config"]["replication"] == "active"
        assert document["summary"]["total_delivered"] > 0
        kinds = {e["kind"] for e in document["events"]}
        assert "fault-injected" in kinds
        assert "fault-report:network_failed" in kinds
        assert any("total network failure" in d
                   for d in document["diagnoses"])
        times = [e["time"] for e in document["events"]]
        assert times == sorted(times)

    def test_report_renders_self_contained_html(self):
        cluster = run_fig6_with_fault("full")
        html_text = render_report(build_run_document(cluster))
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<svg" in html_text
        assert "Token rotation" in html_text
        assert "Ring health" in html_text
        assert "fault-injected" in html_text
        # Self-contained: no scripts, no fetched assets (the only URL-like
        # string is the SVG xmlns namespace identifier).
        assert "<script" not in html_text
        assert "src=" not in html_text
        assert "<link" not in html_text


class TestCli:
    def test_record_and_report_roundtrip(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        jsonl_path = tmp_path / "run.jsonl"
        prom_path = tmp_path / "run.prom"
        assert obs_main(["record", "--quick", "--out", str(run_path),
                         "--jsonl", str(jsonl_path),
                         "--prom", str(prom_path)]) == 0
        assert run_path.exists()
        assert len(jsonl_path.read_text().splitlines()) > 10
        assert "# TYPE totem_token_rotation_seconds histogram" in \
            prom_path.read_text()
        report_path = tmp_path / "report.html"
        assert obs_main(["report", str(run_path),
                         "--out", str(report_path)]) == 0
        text = report_path.read_text()
        assert "<svg" in text and "Ring health" in text
        out = capsys.readouterr().out
        assert "wrote run document" in out
