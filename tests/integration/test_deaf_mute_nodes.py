"""Integration tests for asymmetric node failures (deaf / mute nodes).

These are the §3 per-node fault types taken to their extreme: a node that
can receive on *no* network (deaf) or send on *no* network (mute).  Unlike
single-network faults, redundancy cannot mask these — the ring must exclude
the victim via the membership protocol (mutual accusation) and must not be
destabilised by its continued attempts.
"""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import make_cluster


def operational_ring(cluster, members) -> bool:
    return all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
               and tuple(cluster.nodes[n].membership.members) == tuple(members)
               for n in members)


class TestDeafNode:
    def _deaf_cluster(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        plan = (FaultPlan()
                .sever_recv(at=0.1, network=0, node=4)
                .sever_recv(at=0.1, network=1, node=4))
        cluster.apply_fault_plan(plan)
        return cluster

    def test_deaf_node_excluded_from_ring(self):
        cluster = self._deaf_cluster()
        cluster.start()
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 2, 3)), timeout=5.0)
        assert 4 not in cluster.nodes[1].membership

    def test_survivors_keep_delivering(self):
        cluster = self._deaf_cluster()
        cluster.start()
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 2, 3)), timeout=5.0)
        for i in range(30):
            cluster.nodes[1 + i % 3].submit(f"m{i}".encode())
        cluster.run_for(0.3)
        for node_id in (1, 2, 3):
            assert len(cluster.nodes[node_id].log.payloads) == 30
        cluster.assert_total_order()

    def test_deaf_node_does_not_thrash_the_ring(self):
        """The deaf node keeps broadcasting joins forever; quarantine must
        bound the surviving ring's reconfiguration rate."""
        cluster = self._deaf_cluster()
        cluster.start()
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 2, 3)), timeout=5.0)
        changes_after_formation = max(
            cluster.nodes[n].srp.stats.membership_changes for n in (1, 2, 3))
        cluster.run_for(2.0)
        changes_later = max(
            cluster.nodes[n].srp.stats.membership_changes for n in (1, 2, 3))
        # At most ~one reconfiguration per quarantine period (0.5s).
        assert changes_later - changes_after_formation <= 5

    def test_healed_deaf_node_rejoins(self):
        cluster = self._deaf_cluster()
        cluster.apply_fault_plan(FaultPlan()
                                 .restore_network(at=1.5, network=0)
                                 .restore_network(at=1.5, network=1))
        cluster.start()
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 2, 3)), timeout=5.0)
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 2, 3, 4)), timeout=6.0)
        cluster.nodes[4].submit(b"back!")
        cluster.run_for(0.2)
        assert b"back!" in cluster.nodes[2].log.payloads


class TestMuteNode:
    def test_mute_node_excluded(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        plan = (FaultPlan()
                .sever_send(at=0.1, network=0, node=2)
                .sever_send(at=0.1, network=1, node=2))
        cluster.apply_fault_plan(plan)
        cluster.start()
        cluster.run_until_condition(
            lambda: operational_ring(cluster, (1, 3, 4)), timeout=5.0)
        for i in range(20):
            cluster.nodes[1].submit(f"m{i}".encode())
        cluster.run_for(0.3)
        assert len(cluster.nodes[3].log.payloads) == 20
        # The mute node still hears the traffic of the ring it fell out
        # of... but it cannot have delivered anything new on a ring it is
        # not a member of.
        cluster.assert_total_order()
