"""Integration tests for the state-machine replication toolkit."""

from __future__ import annotations

import json

import pytest

from repro.app import ReplicatedStateMachine, StateMachine
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import make_cluster


class KvMachine:
    """A tiny deterministic KV machine implementing StateMachine."""

    def __init__(self) -> None:
        self.data = {}

    def apply(self, command: bytes) -> None:
        op = json.loads(command.decode())
        if op["op"] == "set":
            self.data[op["k"]] = op["v"]
        elif op["op"] == "incr":
            self.data[op["k"]] = self.data.get(op["k"], 0) + op["by"]

    def snapshot(self) -> bytes:
        return json.dumps(self.data, sort_keys=True).encode()

    def restore(self, snapshot: bytes) -> None:
        self.data = json.loads(snapshot.decode())


def set_cmd(k, v):
    return json.dumps({"op": "set", "k": k, "v": v}).encode()


def incr_cmd(k, by=1):
    return json.dumps({"op": "incr", "k": k, "by": by}).encode()


def build_rsms(cluster, node_ids=None, joiners=()):
    return {nid: ReplicatedStateMachine(
                cluster.nodes[nid], KvMachine(),
                initially_synced=nid not in joiners)
            for nid in (node_ids or cluster.nodes)}


def ring_is(cluster, members) -> bool:
    return all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
               and tuple(cluster.nodes[n].membership.members) == tuple(members)
               for n in members)


class TestBasicReplication:
    def test_machines_stay_identical(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        rsms = build_rsms(cluster)
        cluster.start()
        for i in range(40):
            rsms[1 + i % 4].submit(incr_cmd("n"))
        cluster.run_for(0.3)
        states = [rsm.machine.data for rsm in rsms.values()]
        assert all(s == {"n": 40} for s in states)
        assert all(rsm.synced for rsm in rsms.values())
        assert all(rsm.stats.commands_applied == 40 for rsm in rsms.values())

    def test_implements_protocol(self):
        assert isinstance(KvMachine(), StateMachine)

    def test_no_sync_round_for_stable_group(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        rsms = build_rsms(cluster)
        cluster.start()
        cluster.run_for(0.2)
        assert all(rsm.stats.markers_sent == 0 for rsm in rsms.values())


class TestJoinStateTransfer:
    def test_joiner_catches_up_via_snapshot(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4)
        rsms = build_rsms(cluster, joiners=(4,))
        for nid in (1, 2, 3):
            cluster.nodes[nid].start([1, 2, 3])
        for i in range(25):
            rsms[1 + i % 3].submit(set_cmd(f"k{i}", i))
        cluster.run_for(0.2)
        # Node 4 joins late with an empty machine.
        cluster.nodes[4].start(None)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        rsms[1].submit(set_cmd("after", 99))
        cluster.run_until_condition(lambda: rsms[4].synced, timeout=5.0)
        cluster.run_for(0.2)
        assert rsms[4].machine.data == rsms[1].machine.data
        assert rsms[4].machine.data["k0"] == 0  # pre-join state transferred
        assert rsms[4].machine.data["after"] == 99
        assert rsms[4].stats.snapshots_installed == 1

    def test_commands_during_transfer_not_lost(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=3)
        rsms = build_rsms(cluster, joiners=(3,))
        for nid in (1, 2):
            cluster.nodes[nid].start([1, 2])
        for i in range(10):
            rsms[1].submit(incr_cmd("c"))
        cluster.run_for(0.1)
        cluster.nodes[3].start(None)
        # Keep writing while the membership change and transfer happen.
        for i in range(30):
            rsms[1 + i % 2].submit(incr_cmd("c"))
            cluster.run_for(0.004)
        cluster.run_until_condition(lambda: rsms[3].synced, timeout=5.0)
        cluster.run_for(0.3)
        assert rsms[3].machine.data == {"c": 40}
        assert rsms[1].machine.data == {"c": 40}

    def test_restarted_node_resyncs(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        rsms = build_rsms(cluster)
        cluster.start()
        for i in range(10):
            rsms[1].submit(incr_cmd("x"))
        cluster.run_for(0.2)
        cluster.crash_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 3, 4)),
                                    timeout=5.0)
        rsms[1].submit(incr_cmd("x"))
        cluster.run_for(0.1)
        fresh = cluster.restart_node(2)
        rsms[2] = ReplicatedStateMachine(fresh, KvMachine(),
                                         initially_synced=False)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        cluster.run_until_condition(lambda: rsms[2].synced, timeout=5.0)
        cluster.run_for(0.2)
        assert rsms[2].machine.data == {"x": 11}


class TestMergeSemantics:
    def test_majority_lineage_wins_merge(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4,
                               presence_interval=0.1)
        rsms = build_rsms(cluster)
        for nid in (1, 2, 3):
            cluster.nodes[nid].start([1, 2, 3])
        cluster.nodes[4].start([4])
        # Establish divergent state while the groups cannot see each other.
        cluster.partition_cluster([[1, 2, 3], [4]])
        cluster.run_for(0.05)
        rsms[1].submit(set_cmd("group", "majority"))
        rsms[4].submit(set_cmd("group", "minority"))
        cluster.run_for(0.2)
        assert rsms[4].machine.data == {"group": "minority"}
        assert rsms[1].machine.data == {"group": "majority"}
        cluster.heal_cluster()
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        cluster.run_until_condition(
            lambda: all(rsm.synced for rsm in rsms.values()), timeout=5.0)
        cluster.run_for(0.2)
        # The three-node lineage's state prevails; node 4's divergent
        # update is discarded with the standard primary-lineage semantics.
        for rsm in rsms.values():
            assert rsm.machine.data == {"group": "majority"}
        assert rsms[4].stats.state_discards == 1

    def test_partition_heal_discards_minority_side(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4,
                               presence_interval=0.1)
        rsms = build_rsms(cluster)
        cluster.start()
        rsms[1].submit(set_cmd("base", 1))
        cluster.run_for(0.1)
        cluster.partition_cluster([[1, 2, 3], [4]])
        cluster.run_until_condition(
            lambda: ring_is(cluster, (1, 2, 3)) and ring_is(cluster, (4,)),
            timeout=5.0)
        rsms[1].submit(set_cmd("majority_write", True))
        rsms[4].submit(set_cmd("minority_write", True))
        cluster.run_for(0.3)
        cluster.heal_cluster()
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=8.0)
        cluster.run_until_condition(
            lambda: all(rsm.synced for rsm in rsms.values()), timeout=5.0)
        cluster.run_for(0.2)
        reference = rsms[1].machine.data
        assert reference.get("majority_write") is True
        assert "minority_write" not in reference
        assert all(rsm.machine.data == reference for rsm in rsms.values())

    def test_post_merge_writes_apply_everywhere(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4,
                               presence_interval=0.1)
        rsms = build_rsms(cluster)
        for nid in (1, 2, 3):
            cluster.nodes[nid].start([1, 2, 3])
        cluster.nodes[4].start([4])
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        cluster.run_until_condition(
            lambda: all(rsm.synced for rsm in rsms.values()), timeout=5.0)
        rsms[4].submit(set_cmd("from4", "hello"))
        cluster.run_for(0.2)
        assert all(rsm.machine.data.get("from4") == "hello"
                   for rsm in rsms.values())
