"""Integration tests for active-passive replication (paper §7)."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


class TestBasics:
    def test_total_order_and_completeness(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE)
        cluster.start()
        for i in range(40):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 40 for n in cluster.nodes.values())

    def test_k_fold_bandwidth_cost(self):
        """§4: bandwidth consumption increases K-fold."""
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(b"x" * 900)
        drain(cluster)
        total_frames = sum(lan.stats.frames_sent for lan in cluster.lans)
        data_sends = sum(n.rrp.stats.data_sends for n in cluster.nodes.values())
        # Each logical send produced K=2 frames (plus token/control traffic).
        assert total_frames >= 2 * data_sends

    def test_traffic_spread_over_all_three_networks(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(b"y" * 500)
        drain(cluster)
        for lan in cluster.lans:
            assert lan.stats.frames_sent > 20

    def test_four_networks_k3(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE,
                               num_networks=4, active_passive_k=3)
        cluster.start()
        for i in range(30):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 30 for n in cluster.nodes.values())


class TestLossMasking:
    def test_k_minus_1_lossy_networks_masked(self):
        """§4: the loss of a message on up to K-1 networks is masked
        without retransmission delay."""
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE, seed=41)
        # One of the three networks is very lossy; every packet travels two
        # networks, so a single lossy network is always masked.
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=2,
                                                      rate=0.3))
        cluster.start()
        for i in range(80):
            cluster.nodes[1 + i % 4].submit(f"m{i:03d}".encode())
        drain(cluster, timeout=20.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 80 for n in cluster.nodes.values())

    def test_total_failure_of_one_network_transparent(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE)
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.05, network=1))
        cluster.start()
        for burst in range(20):
            for node_id in cluster.nodes:
                cluster.nodes[node_id].submit(f"{node_id}-{burst}".encode())
            cluster.run_for(0.01)
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 80 for n in cluster.nodes.values())
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())

    def test_two_network_failures_still_survive(self):
        """With N=3, K=2 even two dead networks leave a working system."""
        cluster = make_cluster(ReplicationStyle.ACTIVE_PASSIVE)
        cluster.apply_fault_plan(FaultPlan()
                                 .fail_network(at=0.05, network=0)
                                 .fail_network(at=0.30, network=2))
        cluster.start()
        for burst in range(40):
            for node_id in cluster.nodes:
                cluster.nodes[node_id].submit(f"{node_id}-{burst}".encode())
            cluster.run_for(0.015)
        drain(cluster, timeout=15.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 160 for n in cluster.nodes.values())
