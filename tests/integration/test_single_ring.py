"""Integration tests for the SRP on a single network (the baseline)."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


class TestBasicDelivery:
    def test_one_message_reaches_everyone(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        cluster.nodes[1].submit(b"hello")
        drain(cluster)
        for node in cluster.nodes.values():
            assert node.log.payloads == [b"hello"]

    def test_interleaved_senders_totally_ordered(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        for i in range(40):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster)
        cluster.assert_total_order()
        reference = cluster.nodes[1].log.payloads
        assert len(reference) == 40
        assert sorted(reference) == sorted(f"m{i}".encode() for i in range(40))

    def test_fifo_per_sender(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        for i in range(20):
            cluster.nodes[2].submit(f"s2-{i:03d}".encode())
        drain(cluster)
        at_node_4 = [p for p in cluster.nodes[4].log.payloads
                     if p.startswith(b"s2-")]
        assert at_node_4 == sorted(at_node_4)

    def test_large_message_fragmented_and_reassembled(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        big = bytes(range(256)) * 40  # 10240 bytes >> 1424-byte frames
        cluster.nodes[3].submit(big)
        drain(cluster)
        for node in cluster.nodes.values():
            assert node.log.payloads == [big]

    def test_mixed_sizes(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        payloads = [b"a", b"b" * 5000, b"c" * 100, b"d" * 1424, b"e" * 20000]
        for payload in payloads:
            cluster.nodes[1].submit(payload)
        drain(cluster)
        assert cluster.nodes[2].log.payloads == payloads

    def test_empty_message(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        cluster.nodes[1].submit(b"")
        drain(cluster)
        assert cluster.nodes[3].log.payloads == [b""]

    def test_two_node_ring(self):
        cluster = make_cluster(ReplicationStyle.NONE, num_nodes=2)
        cluster.start()
        cluster.nodes[1].submit(b"ping")
        cluster.nodes[2].submit(b"pong")
        drain(cluster)
        cluster.assert_total_order()
        assert len(cluster.nodes[1].log.payloads) == 2

    def test_single_node_ring(self):
        cluster = make_cluster(ReplicationStyle.NONE, num_nodes=1)
        cluster.start()
        cluster.nodes[1].submit(b"solo")
        drain(cluster)
        assert cluster.nodes[1].log.payloads == [b"solo"]


class TestLossRecovery:
    def test_sporadic_loss_recovered_by_retransmission(self):
        cluster = make_cluster(ReplicationStyle.NONE, seed=3)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=0,
                                                      rate=0.05))
        cluster.start()
        for i in range(100):
            cluster.nodes[1 + i % 4].submit(f"m{i:03d}".encode())
        drain(cluster, timeout=20.0)
        cluster.assert_total_order()
        for node in cluster.nodes.values():
            assert len(node.log.payloads) == 100
        retransmissions = sum(n.srp.stats.retransmissions_served
                              for n in cluster.nodes.values())
        assert retransmissions > 0

    def test_heavy_loss_still_converges(self):
        cluster = make_cluster(ReplicationStyle.NONE, seed=5)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=0,
                                                      rate=0.20))
        cluster.start()
        for i in range(30):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster, timeout=30.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 30 for n in cluster.nodes.values())


class TestStats:
    def test_token_circulates_while_idle(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        cluster.run_for(0.1)
        assert cluster.nodes[1].srp.stats.tokens_accepted > 50

    def test_duplicate_suppression_counted(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        cluster.nodes[1].submit(b"x")
        drain(cluster)
        # On a clean single network there are no duplicates.
        assert cluster.nodes[2].srp.stats.duplicate_packets == 0

    def test_gc_bounds_receive_buffer(self):
        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        for i in range(200):
            cluster.nodes[1].submit(b"p" * 600)
        drain(cluster, timeout=10.0)
        cluster.run_for(0.1)  # a few more rotations for stability to settle
        for node in cluster.nodes.values():
            assert len(node.srp.recv_buffer) < 150
