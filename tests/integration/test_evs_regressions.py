"""Regression tests for two subtle extended-virtual-synchrony bugs.

Both were found by the incident-forensics scenario (see DESIGN.md §7):

1. *Abandoned voted-done recovery*: a node one token-hop away from
   completing a recovery was dragged into a new gather by an unrelated
   join and silently dropped messages that the already-installed members
   had delivered.
2. *Arrival-order recovery absorption*: encapsulated old-ring packets are
   fragmented across new-ring packets; absorbing them in arrival order
   orphans a message in the reassembler when a retransmitted first
   fragment arrives after its second.

The scenario below reproduces the original incident: churn (a crash and a
restart) racing a network failure under a saturating workload, checked for
delivery-history consistency among the continuously-alive nodes.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import SaturatingWorkload
from repro.net.faults import FaultPlan
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import make_cluster


@pytest.mark.parametrize("style", (ReplicationStyle.PASSIVE,
                                   ReplicationStyle.ACTIVE),
                         ids=lambda s: s.value)
def test_churn_racing_network_failure_under_load(style):
    cluster = make_cluster(style, num_nodes=4)
    cluster.apply_fault_plan(
        FaultPlan()
        .sever_send(at=0.3, network=0, node=3)
        .fail_network(at=1.0, network=1))
    cluster.start()
    SaturatingWorkload(cluster, 700).start()

    cluster.run_until(0.8)
    cluster.crash_node(4)
    cluster.run_until(1.6)
    cluster.restart_node(4)
    cluster.run_until(3.0)

    # Nodes 1 and 2 were alive and well-connected throughout; their entire
    # delivery histories must be prefix-consistent.
    cluster.assert_total_order(nodes=(1, 2))
    # And nothing delivered twice.
    for node_id in (1, 2):
        seen = [(m.ring_id, m.sender, m.seq, m.payload)
                for m in cluster.nodes[node_id].delivered]
        assert len(seen) == len(set(seen))


def test_evs_holds_through_the_full_fault_gauntlet():
    """The network_failover example's brutal scenario: asymmetric node
    faults interrupt recoveries, nodes may follow different configuration
    lineages — but per-configuration agreement (EVS) must always hold."""
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4)
    cluster.apply_fault_plan(
        FaultPlan()
        .sever_send(at=0.2, network=0, node=2)
        .sever_recv(at=0.4, network=0, node=4)
        .partition(at=0.6, network=1, groups=[[1, 2], [3, 4]])
        .fail_network(at=0.8, network=1))
    cluster.start()
    SaturatingWorkload(cluster, 512).start()
    cluster.run_until(1.8)
    cluster.assert_evs_consistency()


def test_evs_checker_detects_forged_divergence():
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=2)
    cluster.start()
    cluster.nodes[1].submit(b"a")
    cluster.nodes[2].submit(b"b")
    cluster.run_for(0.1)
    cluster.assert_evs_consistency()
    log = cluster.nodes[2].log.messages
    log[0], log[1] = log[1], log[0]
    with pytest.raises(AssertionError, match="EVS violated"):
        cluster.assert_evs_consistency()


def test_interrupted_recovery_still_installs_when_done_was_voted():
    """Directly provoke the voted-done race: saturate, crash a node so a
    recovery happens, then fire a join mid-recovery via a booting node."""
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4)
    # Only nodes 1-3 boot initially.
    for node_id in (1, 2, 3):
        cluster.nodes[node_id].start([1, 2, 3])
    workload = SaturatingWorkload(cluster, 512, senders=[1, 2, 3])
    workload.start()
    cluster.run_until(0.3)
    cluster.crash_node(3)
    # While nodes 1-2 re-form and recover, node 4 boots and joins, which is
    # exactly the interruption that used to abandon the recovery.
    cluster.run_until(0.45)
    cluster.nodes[4].start(None)
    cluster.run_until_condition(
        lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                    and len(cluster.nodes[n].membership) == 3
                    for n in (1, 2, 4)),
        timeout=10.0)
    workload.stop()
    cluster.run_until_condition(
        lambda: all(len(cluster.nodes[n].srp.send_queue) == 0
                    for n in (1, 2)),
        timeout=15.0)
    cluster.run_for(0.3)
    cluster.assert_total_order(nodes=(1, 2))
    assert (len(cluster.nodes[1].delivered) == len(cluster.nodes[2].delivered))
