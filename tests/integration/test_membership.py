"""Integration tests for the membership protocol (gather/commit/recovery).

Network faults are transparent (no membership change) — these tests cover
the events that DO reconfigure the ring: crashes, joins, partitions of all
networks at once, and merges, with extended-virtual-synchrony delivery.
"""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import REDUNDANT_STYLES, drain, make_cluster


def crash(cluster, node_id) -> None:
    """Fail-silent crash: the node neither sends nor receives any more."""
    cluster.crash_node(node_id)


def all_operational(cluster, expected_members) -> bool:
    live = [cluster.nodes[n] for n in expected_members]
    return all(node.srp.state is SrpState.OPERATIONAL
               and tuple(node.membership.members) == tuple(expected_members)
               for node in live)


class TestFormation:
    @pytest.mark.parametrize("style", REDUNDANT_STYLES,
                             ids=lambda s: s.value)
    def test_ring_forms_from_singleton_boot(self, style):
        cluster = make_cluster(style)
        cluster.start(preformed=False)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)
        cluster.nodes[2].submit(b"after formation")
        drain(cluster)
        assert all(n.log.payloads == [b"after formation"]
                   for n in cluster.nodes.values())

    def test_formation_delivers_regular_config(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start(preformed=False)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)
        for node in cluster.nodes.values():
            final = node.log.last_regular_membership()
            assert final is not None
            assert tuple(final.members) == (1, 2, 3, 4)

    def test_single_node_boots_alone(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=1)
        cluster.start(preformed=False)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1]), timeout=5.0)
        cluster.nodes[1].submit(b"solo")
        drain(cluster)
        assert cluster.nodes[1].log.payloads == [b"solo"]


class TestCrash:
    def test_crashed_node_removed_from_ring(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        crash(cluster, 3)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 4]), timeout=5.0)
        survivors = [cluster.nodes[n] for n in (1, 2, 4)]
        for node in survivors:
            assert 3 not in node.membership

    def test_survivors_deliver_transitional_then_regular_config(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        crash(cluster, 3)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 4]), timeout=5.0)
        for node_id in (1, 2, 4):
            changes = cluster.nodes[node_id].log.config_changes
            # initial install, transitional, new regular — in that order.
            assert [c.transitional for c in changes] == [False, True, False]
            assert tuple(changes[1].membership.members) == (1, 2, 4)
            assert tuple(changes[2].membership.members) == (1, 2, 4)

    def test_messages_in_flight_at_crash_not_lost_for_survivors(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=17)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(f"pre-{i:02d}".encode())
        cluster.run_for(0.004)  # mid-broadcast
        crash(cluster, 2)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 3, 4]), timeout=5.0)
        for i in range(10):
            cluster.nodes[1].submit(f"post-{i}".encode())
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        # Survivors agree exactly (extended virtual synchrony among the
        # transitional configuration).
        reference = cluster.nodes[1].log.payloads
        for node_id in (3, 4):
            assert cluster.nodes[node_id].log.payloads == reference
        assert sum(1 for p in reference if p.startswith(b"post-")) == 10

    def test_sequential_crashes_down_to_singleton(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE,
                               token_loss_timeout=0.03)
        cluster.start()
        cluster.run_for(0.05)
        for victim, remaining in ((4, [1, 2, 3]), (3, [1, 2]), (2, [1])):
            crash(cluster, victim)
            cluster.run_until_condition(
                lambda remaining=remaining: all_operational(cluster, remaining),
                timeout=5.0)
        cluster.nodes[1].submit(b"last one standing")
        drain(cluster)
        assert b"last one standing" in cluster.nodes[1].log.payloads


class TestJoin:
    def test_late_node_joins_running_ring(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4)
        # Boot only nodes 1-3; node 4 stays down.
        for node_id in (1, 2, 3):
            cluster.nodes[node_id].start([1, 2, 3])
        cluster.run_for(0.05)
        cluster.nodes[1].submit(b"before join")
        cluster.run_for(0.05)
        # Node 4 boots as a singleton and discovers the ring.
        cluster.nodes[4].start(None)
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)
        cluster.nodes[4].submit(b"hello from 4")
        drain(cluster)
        for node_id in (1, 2, 3):
            assert b"hello from 4" in cluster.nodes[node_id].log.payloads
        # The joiner does not retroactively receive pre-join messages.
        assert b"before join" not in cluster.nodes[4].log.payloads

    def test_idle_rings_merge_via_presence_beacons(self):
        """Idle rings exchange no broadcasts (tokens are unicast); the
        representative's presence beacon is what makes them discoverable."""
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4,
                               presence_interval=0.2)
        for node_id in (1, 2):
            cluster.nodes[node_id].start([1, 2])
        for node_id in (3, 4):
            cluster.nodes[node_id].start([3, 4])
        # No application traffic at all: only beacons can reveal the rings.
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)

    def test_beacons_disabled_means_idle_rings_stay_apart(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4,
                               presence_interval=0.0)
        for node_id in (1, 2):
            cluster.nodes[node_id].start([1, 2])
        for node_id in (3, 4):
            cluster.nodes[node_id].start([3, 4])
        cluster.run_for(2.0)
        assert tuple(cluster.nodes[1].membership.members) == (1, 2)
        assert tuple(cluster.nodes[3].membership.members) == (3, 4)

    def test_two_rings_merge(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4)
        for node_id in (1, 2):
            cluster.nodes[node_id].start([1, 2])
        for node_id in (3, 4):
            cluster.nodes[node_id].start([3, 4])
        cluster.run_for(0.05)
        # Idle rings are invisible to each other (tokens are unicast);
        # a data broadcast from either ring triggers merge detection.
        cluster.nodes[1].submit(b"ring A says hi")
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)
        cluster.nodes[1].submit(b"merged")
        drain(cluster)
        assert all(b"merged" in n.log.payloads for n in cluster.nodes.values())


class TestPartitionAndMerge:
    def test_all_networks_partition_splits_ring(self):
        """When EVERY redundant network partitions the same way, the ring
        must split (this is a node-connectivity fault, not a network
        fault — redundancy cannot mask it)."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        plan = (FaultPlan()
                .partition(at=0.1, network=0, groups=[[1, 2], [3, 4]])
                .partition(at=0.1, network=1, groups=[[1, 2], [3, 4]]))
        cluster.apply_fault_plan(plan)
        cluster.start()
        cluster.run_until_condition(
            lambda: (all_operational(cluster, [1, 2])
                     and all_operational(cluster, [3, 4])),
            timeout=5.0)
        cluster.nodes[1].submit(b"side A")
        cluster.nodes[3].submit(b"side B")
        drain(cluster, timeout=5.0)
        assert cluster.nodes[2].log.payloads[-1] == b"side A"
        assert cluster.nodes[4].log.payloads[-1] == b"side B"
        assert b"side B" not in cluster.nodes[1].log.payloads

    def test_partition_heals_and_rings_merge(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        plan = (FaultPlan()
                .partition(at=0.1, network=0, groups=[[1, 2], [3, 4]])
                .partition(at=0.1, network=1, groups=[[1, 2], [3, 4]])
                .restore_network(at=1.0, network=0)
                .restore_network(at=1.0, network=1))
        cluster.apply_fault_plan(plan)
        cluster.start()
        cluster.run_until_condition(
            lambda: (all_operational(cluster, [1, 2])
                     and all_operational(cluster, [3, 4])),
            timeout=5.0)
        cluster.run_until(1.05)  # networks healed at t=1.0
        # Cross-ring traffic reveals the other ring and triggers the merge.
        cluster.nodes[1].submit(b"probe A")
        cluster.nodes[3].submit(b"probe B")
        cluster.run_until_condition(
            lambda: all_operational(cluster, [1, 2, 3, 4]), timeout=5.0)
        cluster.nodes[2].submit(b"together again")
        drain(cluster)
        assert all(b"together again" in n.log.payloads
                   for n in cluster.nodes.values())
