"""Cross-cutting coverage: the application stack on every replication style
and on the real-socket transport."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.app import CounterMachine, ReplicatedStateMachine
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import REDUNDANT_STYLES, make_cluster


class TestSmrAcrossStyles:
    @pytest.mark.parametrize("style", REDUNDANT_STYLES,
                             ids=lambda s: s.value)
    def test_counter_converges_under_style_and_network_failure(self, style):
        cluster = make_cluster(style)
        rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid],
                                            CounterMachine())
                for nid in cluster.nodes}
        cluster.apply_fault_plan(FaultPlan().fail_network(
            at=0.05, network=cluster.config.totem.num_networks - 1))
        cluster.start()
        for i in range(40):
            rsms[1 + i % 4].submit(CounterMachine.increment("ops"))
            cluster.run_for(0.005)
        cluster.run_for(0.3)
        assert all(rsm.machine.value("ops") == 40 for rsm in rsms.values())
        # The network failure stayed below the application.
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:  # pragma: no cover
        return False


@pytest.mark.skipif(not _loopback_available(),
                    reason="loopback UDP unavailable")
class TestUdpActivePassive:
    def test_active_passive_over_real_sockets(self):
        from repro.api.asyncio_node import AsyncioTotemNode
        from repro.config import TotemConfig
        from repro.net.udp import local_address_map

        async def scenario():
            ids = [1, 2, 3]
            config = TotemConfig(replication=ReplicationStyle.ACTIVE_PASSIVE,
                                 num_networks=3, active_passive_k=2,
                                 token_retransmit_interval=0.02,
                                 token_loss_timeout=0.4)
            addresses = local_address_map(ids, 3, base_port=21400)
            nodes = {i: AsyncioTotemNode(i, config, addresses) for i in ids}
            for node in nodes.values():
                await node.start(initial_members=ids)
            try:
                for i in range(9):
                    nodes[1 + i % 3].submit(f"ap-{i}".encode())
                deadline = asyncio.get_event_loop().time() + 5.0
                while not all(len(n.delivered) == 9 for n in nodes.values()):
                    if asyncio.get_event_loop().time() > deadline:
                        raise AssertionError("UDP AP delivery incomplete")
                    await asyncio.sleep(0.02)
                reference = [m.payload for m in nodes[1].delivered]
                assert all([m.payload for m in n.delivered] == reference
                           for n in nodes.values())
            finally:
                for node in nodes.values():
                    node.close()
        asyncio.run(scenario())
