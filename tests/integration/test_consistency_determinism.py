"""Cross-cutting integration tests: EVS consistency under churn, safe
delivery, and determinism of the simulation."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


class TestRecoveryConsistency:
    def test_crash_under_load_leaves_survivors_identical(self):
        """The hard case: a node dies mid-broadcast under saturation; the
        survivors must end with byte-identical delivery sequences."""
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=19)
        cluster.start()
        for i in range(200):
            cluster.nodes[1 + i % 4].submit(f"load-{i:04d}".encode())
        cluster.run_for(0.006)  # well inside the broadcast storm
        cluster.crash_node(2)
        cluster.run_until_condition(
            lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                        and len(cluster.nodes[n].membership) == 3
                        for n in (1, 3, 4)),
            timeout=5.0)
        drain_nodes = [cluster.nodes[n] for n in (1, 3, 4)]
        cluster.run_until_condition(
            lambda: all(len(n.srp.send_queue) == 0 for n in drain_nodes),
            timeout=10.0)
        cluster.run_for(0.2)
        sequences = [n.log.payloads for n in drain_nodes]
        assert sequences[0] == sequences[1] == sequences[2]
        # Messages from every sender that made it to one made it to all.
        assert len(sequences[0]) >= 150

    def test_crash_under_load_with_loss(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE, seed=29)
        plan = (FaultPlan()
                .set_loss(at=0.0, network=0, rate=0.03)
                .set_loss(at=0.0, network=1, rate=0.03))
        cluster.apply_fault_plan(plan)
        cluster.start()
        for i in range(150):
            cluster.nodes[1 + i % 4].submit(f"x{i:04d}".encode())
        cluster.run_for(0.005)
        cluster.crash_node(4)
        cluster.run_until_condition(
            lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                        and len(cluster.nodes[n].membership) == 3
                        for n in (1, 2, 3)),
            timeout=10.0)
        survivors = [cluster.nodes[n] for n in (1, 2, 3)]
        cluster.run_until_condition(
            lambda: all(len(n.srp.send_queue) == 0
                        and not n.srp._packer.has_pending()
                        for n in survivors),
            timeout=20.0)
        cluster.run_for(0.3)
        assert (survivors[0].log.payloads == survivors[1].log.payloads
                == survivors[2].log.payloads)


class TestSafeDelivery:
    def test_safe_mode_end_to_end(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, safe_delivery=True)
        cluster.start()
        for i in range(20):
            cluster.nodes[1 + i % 4].submit(f"safe-{i}".encode())
        drain(cluster, timeout=10.0)
        cluster.run_for(0.1)
        cluster.assert_total_order()
        for node in cluster.nodes.values():
            assert len(node.log.payloads) == 20
            assert all(m.safe for m in node.log.messages)

    def test_safe_delivery_lags_agreed(self):
        """Safe delivery must not outrun the stability watermark."""
        cluster = make_cluster(ReplicationStyle.ACTIVE, safe_delivery=True)
        cluster.start()
        cluster.nodes[1].submit(b"probe")
        # Shortly after the broadcast the message is received but cannot be
        # safe yet (stability needs two further token rotations).
        cluster.run_for(0.0008)
        receiver = cluster.nodes[3]
        if receiver.srp.recv_buffer.high_seq >= 1:
            assert receiver.log.payloads == []
        drain(cluster)
        assert receiver.log.payloads == [b"probe"]


class TestDeterminism:
    def _run(self, seed: int):
        cluster = make_cluster(ReplicationStyle.PASSIVE, seed=seed)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=0,
                                                      rate=0.02))
        cluster.start()
        for i in range(50):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        cluster.run_until(0.5)
        return (cluster.scheduler.events_processed,
                [tuple(m.payload for m in n.delivered)
                 for n in cluster.nodes.values()],
                [n.srp.stats.retransmissions_served
                 for n in cluster.nodes.values()])

    def test_same_seed_identical_run(self):
        assert self._run(seed=7) == self._run(seed=7)

    def test_different_seed_different_run(self):
        # With injected loss, different seeds drop different frames.
        assert self._run(seed=7)[2] != self._run(seed=8)[2] or \
            self._run(seed=7)[0] != self._run(seed=8)[0]


class TestDeliveryLatency:
    def test_active_masks_loss_without_latency_penalty(self):
        """§4: active replication masks loss with no retransmission delay.
        Compare worst-case delivery latency of a lossy passive run against
        a lossy active run."""
        def worst_latency(style, seed):
            cluster = make_cluster(style, seed=seed,
                                   passive_token_timeout=0.01)
            cluster.apply_fault_plan(FaultPlan()
                                     .set_loss(at=0.0, network=0, rate=0.05)
                                     .set_loss(at=0.0, network=1, rate=0.05))
            cluster.start()
            worst = 0.0
            for i in range(50):
                sent_at = cluster.now
                cluster.nodes[1 + i % 4].submit(b"probe" + bytes([i]))
                target = len(cluster.nodes[1].delivered) + 1
                cluster.run_until_condition(
                    lambda: len(cluster.nodes[1].delivered) >= target,
                    timeout=5.0, step=0.0005)
                worst = max(worst, cluster.now - sent_at)
            return worst

        active = worst_latency(ReplicationStyle.ACTIVE, seed=3)
        passive = worst_latency(ReplicationStyle.PASSIVE, seed=3)
        # Passive pays the token-timeout stall when a frame is really lost;
        # active rides the surviving copy.
        assert active < passive
