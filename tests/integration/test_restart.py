"""Integration tests for crash + restart (a fresh process incarnation)."""

from __future__ import annotations

import pytest

from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


def ring_is(cluster, members) -> bool:
    return all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
               and tuple(cluster.nodes[n].membership.members) == tuple(members)
               for n in members)


class TestRestart:
    def test_restarted_node_rejoins_ring(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        cluster.crash_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 3, 4)),
                                    timeout=5.0)
        fresh = cluster.restart_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        assert fresh is cluster.nodes[2]
        fresh.submit(b"reincarnated")
        cluster.run_for(0.2)
        assert b"reincarnated" in cluster.nodes[4].log.payloads

    def test_restarted_node_has_fresh_state(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.nodes[1].submit(b"before crash")
        cluster.run_for(0.1)
        assert b"before crash" in cluster.nodes[2].log.payloads
        cluster.crash_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 3, 4)),
                                    timeout=5.0)
        cluster.restart_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        # A fresh incarnation has no memory of the previous life.
        assert b"before crash" not in cluster.nodes[2].log.payloads

    def test_no_ghost_traffic_from_old_incarnation(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        old = cluster.nodes[3]
        cluster.crash_node(3)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 4)),
                                    timeout=5.0)
        cluster.restart_node(3)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        # The dead incarnation's ports transmit nothing even if poked.
        frames = cluster.lans[0].stats.frames_sent
        old.stack.broadcast(0, _dummy_packet())
        cluster.run_for(0.01)
        assert cluster.lans[0].stats.frames_sent >= frames  # others still run
        blocked_before = cluster.lans[0].stats.frames_blocked
        old.stack.broadcast(0, _dummy_packet())
        cluster.run_for(0.01)
        assert cluster.lans[0].stats.frames_blocked > blocked_before

    def test_repeated_restart_cycles(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE,
                               token_loss_timeout=0.03)
        cluster.start()
        cluster.run_for(0.05)
        for _ in range(3):
            cluster.crash_node(4)
            cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3)),
                                        timeout=5.0)
            cluster.restart_node(4)
            cluster.run_until_condition(
                lambda: ring_is(cluster, (1, 2, 3, 4)), timeout=5.0)
        cluster.nodes[4].submit(b"still here")
        cluster.run_for(0.2)
        assert b"still here" in cluster.nodes[1].log.payloads
        cluster.assert_total_order()

    def test_ring_seq_watermark_survives_restart(self):
        """Stable storage: a fresh incarnation never reuses a ring id.

        Without the watermark, node 1's new incarnation boots at ring seq 0
        and its first rings collide with ids the cluster's early
        configurations already consumed — two different configurations
        would share a RingId, which breaks EVS agreement-per-configuration
        (caught by the campaign harness, generated seed 103).
        """
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        watermark = cluster.nodes[1].srp.ring_seq_watermark()
        assert watermark >= 4
        cluster.crash_node(1)
        cluster.run_until_condition(lambda: ring_is(cluster, (2, 3, 4)),
                                    timeout=5.0)
        fresh = cluster.restart_node(1)
        assert fresh.srp.ring_seq_watermark() >= watermark
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        # Every ring the new incarnation forms compares greater than any
        # ring the old incarnation was part of.
        assert fresh.srp.ring_id.seq > watermark

    def test_restarted_incarnation_is_not_a_transitional_survivor(self):
        """EVS: the transitional configuration holds old-ring *survivors*.

        A restarted node shares its node id with an old-ring member but
        continues from a different ring, so survivors that merge with it
        must see it leave the transitional configuration (and their SMR
        lineage) — otherwise the newcomer is never offered state transfer
        (caught by the campaign harness, generated seed 108).
        """
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        changes = []
        cluster.nodes[1].set_user_callbacks(
            on_config_change=lambda change: changes.append(change))
        cluster.start()
        cluster.run_for(0.05)
        cluster.crash_node(4)
        cluster.restart_node(4)  # rejoin during the same reformation wave
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        transitional = [tuple(c.membership.members) for c in changes
                        if c.transitional]
        assert transitional, "merge must deliver a transitional config"
        assert all(4 not in members for members in transitional), (
            "restarted incarnation counted as an old-ring survivor: "
            f"{transitional}")

    def test_delivery_continues_through_restart(self):
        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.start()
        for i in range(30):
            cluster.nodes[1 + i % 4].submit(f"pre-{i}".encode())
        cluster.run_for(0.05)
        cluster.crash_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 3, 4)),
                                    timeout=5.0)
        cluster.restart_node(2)
        cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                    timeout=5.0)
        for i in range(10):
            cluster.nodes[1 + i % 4].submit(f"post-{i}".encode())
        drain(cluster, timeout=10.0)
        # The continuously-alive nodes agree over the whole history; the
        # restarted node's history starts mid-stream.
        cluster.assert_total_order(nodes=(1, 3, 4))
        assert (cluster.nodes[1].log.payloads[-10:]
                == cluster.nodes[3].log.payloads[-10:])
        assert (cluster.nodes[2].log.payloads
                == cluster.nodes[1].log.payloads[-len(cluster.nodes[2].log.payloads):])


def _dummy_packet():
    from repro.types import RingId
    from repro.wire.packets import Chunk, DataPacket
    return DataPacket(sender=3, ring_id=RingId(4, 1), seq=9999,
                      chunks=(Chunk.whole(1, b"ghost"),))
