"""Integration tests: the service facade over real clusters.

The unit suite pins every decision branch against a fake ring; here the
facade runs over an actual single Totem ring and an actual sharded
multi-ring cluster, end to end: replicated writes converge at every
member, pub-sub fans out in total order, overload sheds instead of
stalling the SRP flow window, and the closed-loop workload generator
drives the whole pipeline.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import ClosedLoopWorkload
from repro.config import TotemConfig
from repro.errors import ConfigError
from repro.multiring import MultiRingCluster, MultiRingConfig
from repro.obs.metrics import MetricRegistry
from repro.service import Admitted, ServiceConfig, ServiceFacade, ShedReason
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import make_cluster


def formed_single_ring(seed=11, num_nodes=4):
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=num_nodes,
                           seed=seed)
    cluster.start()
    cluster.run_until_condition(
        lambda: all(n.srp.state is SrpState.OPERATIONAL
                    and len(n.membership) == num_nodes
                    for n in cluster.nodes.values()),
        timeout=5.0)
    return cluster


def multiring_cluster(seed=11, num_rings=4, num_nodes=3):
    config = MultiRingConfig(
        num_rings=num_rings, num_nodes=num_nodes, seed=seed,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2))
    cluster = MultiRingCluster(config)
    cluster.start()
    return cluster


class TestSingleRing:
    def test_writes_converge_at_every_member(self):
        cluster = formed_single_ring()
        facade = ServiceFacade(cluster, ServiceConfig(rate=5000.0, burst=64),
                               registry=MetricRegistry())
        for i in range(10):
            response = facade.set(1, b"key:%d" % i, b"val:%d" % i)
            assert isinstance(response, Admitted)
        facade.delete(1, b"key:0")
        cluster.run_for(0.3)
        assert facade.converged()
        assert facade.get(b"key:0") is None
        assert facade.get(b"key:9") == b"val:9"
        snapshot = facade.slo_snapshot()
        assert snapshot["completed"] == 11
        assert snapshot["ring_stalls"] == 0
        assert snapshot["latency_p99_ms"] > 0.0

    def test_pubsub_total_order_at_every_member(self):
        cluster = formed_single_ring(seed=13)
        facade = ServiceFacade(cluster, ServiceConfig(rate=5000.0, burst=64),
                               registry=MetricRegistry())
        seen = {m: [] for m in (1, 2, 3, 4)}
        for member in seen:
            facade.subscribe(member, b"events",
                             lambda t, d, m=member: seen[m].append(d))
        for i in range(8):
            facade.publish(2, b"events", b"e%d" % i)
        cluster.run_for(0.3)
        assert seen[1] == [b"e%d" % i for i in range(8)]
        assert seen[2] == seen[1] and seen[3] == seen[1]
        assert seen[4] == seen[1]

    def test_overload_sheds_without_flow_window_stalls(self):
        cluster = formed_single_ring(seed=17)
        facade = ServiceFacade(
            cluster, ServiceConfig(rate=500.0, burst=8, queue_capacity=32,
                                   inflight_windows=1.0),
            registry=MetricRegistry())
        for i in range(400):
            facade.set(1 + i % 8, b"k%d" % i, b"v")
        cluster.run_for(0.5)
        facade.quiesce()
        snapshot = facade.slo_snapshot()
        assert snapshot["shed_total"] > 0
        assert snapshot["ring_stalls"] == 0
        assert snapshot["admitted"] + snapshot["shed_total"] == 400

    def test_closed_loop_workload_drives_facade(self):
        cluster = formed_single_ring(seed=19)
        facade = ServiceFacade(
            cluster, ServiceConfig(rate=2000.0, burst=32, queue_capacity=64),
            registry=MetricRegistry())
        workload = ClosedLoopWorkload(facade, num_clients=50,
                                      think_mean=0.02, seed=5)
        workload.start()
        cluster.run_for(0.5)
        workload.stop()
        facade.quiesce()
        assert workload.offered > 50
        assert workload.completed > 0
        assert workload.admitted + workload.shed == workload.offered
        assert len(workload.latencies) == workload.completed
        assert facade.slo_snapshot()["ring_stalls"] == 0

    @pytest.mark.parametrize("kwargs", [
        {"num_clients": 0, "think_mean": 0.1},
        {"num_clients": 5, "think_mean": 0.0},
    ])
    def test_workload_rejects_bad_parameters(self, kwargs):
        cluster = formed_single_ring(seed=23)
        facade = ServiceFacade(cluster, registry=MetricRegistry())
        with pytest.raises(ValueError):
            ClosedLoopWorkload(facade, **kwargs)


class TestMultiRing:
    def test_sharded_writes_converge_across_rings(self):
        cluster = multiring_cluster()
        facade = ServiceFacade(cluster, ServiceConfig(rate=20_000.0,
                                                      burst=128),
                               registry=MetricRegistry())
        for i in range(40):
            assert isinstance(facade.set(1, b"key:%03d" % i, b"v%d" % i),
                              Admitted)
        cluster.run_for(0.3)
        assert facade.converged()
        for i in range(40):
            assert facade.get(b"key:%03d" % i) == b"v%d" % i
        # The key space actually spans several rings.
        groups = {g for g, _c, _u in facade.applied_log(1)}
        assert len(groups) > 1
        assert facade.slo_snapshot()["ring_stalls"] == 0

    def test_multi_get_reads_across_shards(self):
        cluster = multiring_cluster(seed=29)
        facade = ServiceFacade(cluster, registry=MetricRegistry())
        keys = [b"key:%03d" % i for i in range(12)]
        for key in keys:
            facade.set(1, key, b"v-" + key)
        cluster.run_for(0.3)
        results = facade.multi_get(keys)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [b"v-" + k for k in keys]

    def test_gateway_out_of_range_rejected(self):
        cluster = multiring_cluster(seed=31)
        with pytest.raises(ConfigError, match="gateway"):
            ServiceFacade(cluster, ServiceConfig(gateway=99),
                          registry=MetricRegistry())

    def test_multiring_members_cannot_rebind(self):
        cluster = multiring_cluster(seed=37)
        facade = ServiceFacade(cluster, registry=MetricRegistry())

        class FakeNode:
            node_id = 1
            srp = None

        with pytest.raises(ConfigError, match="restart"):
            facade.rebind_node(FakeNode())
