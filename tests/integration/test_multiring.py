"""Integration tests for the sharded multi-ring cluster (PR 8 tentpole).

Many independent Totem rings multiplexed on one scheduler over the same
shared simulated LANs: the tests pin ring isolation (LAN channels keep
co-located rings from merging), per-group total order, the merge-clock
pump, the sharded-KV application, fault masking on the shared media, and
the new multiring campaign scenario's byte-identical replay.
"""

from __future__ import annotations

import os

import pytest

from repro.app import ShardedKv
from repro.campaign import load_scenario, run_scenario
from repro.config import TotemConfig
from repro.errors import ConfigError
from repro.multiring import (
    MultiRingCluster,
    MultiRingConfig,
    group_addr,
    group_of,
)
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "..", "scenarios")


def small_cluster(num_rings: int = 4, num_nodes: int = 3,
                  seed: int = 7, **overrides) -> MultiRingCluster:
    config = MultiRingConfig(
        num_rings=num_rings, num_nodes=num_nodes, seed=seed,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2),
        **overrides)
    return MultiRingCluster(config)


class TestRingIsolation:
    def test_each_ring_forms_its_own_membership(self):
        cluster = small_cluster()
        cluster.start(markers=False)
        cluster.run_for(0.05)
        for group, view in cluster.groups.items():
            expected = tuple(sorted(view.nodes))
            for node in view.nodes.values():
                assert tuple(node.membership.members) == expected

    def test_rings_never_merge_across_channels(self):
        """Co-located rings share the media byte-for-byte but must never
        see each other's frames (the foreign-message rule would otherwise
        merge them into one big ring)."""
        cluster = small_cluster()
        cluster.start(markers=False)
        for group in cluster.groups:
            cluster.submit_to_group(group, b"only-mine", sender=1)
        cluster.run_for(0.2)
        for group, view in cluster.groups.items():
            for node in view.nodes.values():
                assert len(node.delivered) == 1
                message = node.delivered[0]
                assert group_of(message.sender) == group
                assert group_of(message.ring_id.representative) == group

    def test_per_group_total_order_holds(self):
        cluster = small_cluster()
        cluster.start(markers=False)
        for i in range(30):
            cluster.submit(b"key-%d" % i, b"value-%d" % i,
                           sender=1 + i % cluster.config.num_nodes)
        cluster.run_for(0.3)
        cluster.assert_total_order()
        assert cluster.total_delivered() > 0

    def test_sharding_spreads_load_and_is_stable(self):
        cluster = small_cluster()
        rings = {cluster.ring_for(b"key-%d" % i) for i in range(50)}
        assert rings == set(cluster.groups)
        assert cluster.ring_for(b"stable") == cluster.ring_for(b"stable")


class TestMergeClock:
    def test_markers_advance_rounds_everywhere(self):
        cluster = small_cluster(merge_interval=0.01)
        mergers = [cluster.add_merger(m) for m in (1, 2)]
        cluster.start()
        cluster.run_for(0.2)
        cluster.stop_markers()
        cluster.run_for(0.1)
        for merger in mergers:
            assert merger.rounds_emitted >= 5
        assert mergers[0].rounds_emitted == mergers[1].rounds_emitted

    def test_merged_logs_identical_across_subscribers(self):
        cluster = small_cluster(merge_interval=0.01)
        mergers = {m: cluster.add_merger(m)
                   for m in range(1, cluster.config.num_nodes + 1)}
        cluster.start()
        for i in range(40):
            cluster.submit(b"k%d" % i, b"v%d" % i, sender=1 + i % 3)
        cluster.run_for(0.4)
        cluster.stop_markers()
        cluster.run_for(0.2)
        logs = {m: merger.log_bytes() for m, merger in mergers.items()}
        reference = logs[1]
        assert reference  # messages actually crossed the merge clock
        assert all(log == reference for log in logs.values())

    def test_partial_subscription_sees_only_its_groups(self):
        cluster = small_cluster(merge_interval=0.01)
        partial = cluster.add_merger(1, groups=[0, 2])
        cluster.start()
        for group in cluster.groups:
            cluster.submit_to_group(group, b"g%d" % group)
        cluster.run_for(0.3)
        cluster.stop_markers()
        cluster.run_for(0.1)
        assert partial.groups == (0, 2)
        assert {e.group for e in partial.merged} == {0, 2}

    def test_stopping_markers_freezes_rounds(self):
        cluster = small_cluster(merge_interval=0.01)
        merger = cluster.add_merger(1)
        cluster.start()
        cluster.run_for(0.1)
        cluster.stop_markers()
        cluster.run_for(0.05)
        frozen = merger.rounds_emitted
        cluster.run_for(0.2)
        assert merger.rounds_emitted == frozen

    def test_add_merger_rejects_unknown_group(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError, match="unknown ring group"):
            cluster.add_merger(1, groups=[0, 99])


class TestShardedKv:
    def test_replicas_converge_and_reads_work(self):
        cluster = small_cluster()
        kv = ShardedKv(cluster)
        cluster.start(markers=False)
        for i in range(25):
            assert kv.set(b"user:%d" % i, b"v%d" % i, sender=1 + i % 3)
        kv.delete(b"user:0")
        cluster.run_for(0.4)
        assert kv.converged()
        assert kv.get(2, b"user:1") == b"v1"
        assert kv.get(3, b"user:0") is None
        assert kv.applied[1] == 26

    def test_audit_logs_byte_identical_under_shared_lan_loss(self):
        cluster = small_cluster(seed=5)
        kv = ShardedKv(cluster, audit_members=(1, 3))
        plan = (FaultPlan()
                .set_loss(at=0.02, network=0, rate=0.1)
                .set_loss(at=0.25, network=0, rate=0.0))
        cluster.apply_fault_plan(plan)
        cluster.start()
        for i in range(30):
            kv.set(b"acct:%d" % i, b"balance-%d" % i, sender=1 + i % 3)
        cluster.run_for(0.5)
        cluster.stop_markers()
        cluster.run_for(0.3)
        assert kv.converged()
        assert kv.audit_log(1)  # loss must not silence the audit stream
        assert kv.audit_log(1) == kv.audit_log(3)
        assert kv.audit_digest(1) == kv.audit_digest(3)

    def test_heal_cluster_clears_shared_media(self):
        cluster = small_cluster()
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=0,
                                                      rate=0.5))
        cluster.start(markers=False)
        cluster.run_for(0.05)
        cluster.heal_cluster()
        cluster.submit_to_group(0, b"after-heal")
        cluster.run_for(0.2)
        assert cluster.groups[0].delivered_count() == 3


class TestClusterSurface:
    def test_group_view_helpers(self):
        cluster = small_cluster()
        view = cluster.groups[2]
        assert view.node(1) is cluster.nodes[group_addr(2, 1)]
        assert view.representative is view.node(1)
        assert view.scheduler is cluster.scheduler
        assert view.now == cluster.now

    def test_run_until_condition_times_out(self):
        from repro.errors import SimulationError
        cluster = small_cluster()
        cluster.start(markers=False)
        with pytest.raises(SimulationError, match="condition not reached"):
            cluster.run_until_condition(lambda: False, timeout=0.05)

    def test_fault_plan_rejects_unknown_network(self):
        from repro.errors import SimulationError
        cluster = small_cluster()
        plan = FaultPlan().set_loss(at=0.0, network=9, rate=0.5)
        with pytest.raises(SimulationError, match="network 9"):
            cluster.apply_fault_plan(plan)


class TestMultiringCampaignScenario:
    def test_corpus_scenario_passes_and_replays_byte_identical(self):
        """The PR-8 campaign satellite: 8 rings under seeded loss on one
        shared LAN, replayed byte-identically in tier-1."""
        scenario = load_scenario(
            os.path.join(SCENARIO_DIR, "multiring_loss.json"))
        assert scenario.rings == 8
        first = run_scenario(scenario)
        assert first.ok, "\n".join(str(v) for v in first.violations)
        assert first.delivered_total > 0
        second = run_scenario(scenario)
        assert first.replay_text == second.replay_text
        assert "rings=8" in first.replay_text
        assert first.replay_text.endswith("verdict: PASS\n")
