"""Integration tests for active replication (paper §5) on the full stack."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import drain, make_cluster


class TestRedundantDelivery:
    def test_every_packet_travels_both_networks(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        for i in range(10):
            cluster.nodes[1].submit(f"m{i}".encode())
        drain(cluster)
        frames0 = cluster.lans[0].stats.frames_sent
        frames1 = cluster.lans[1].stats.frames_sent
        assert frames0 == pytest.approx(frames1, rel=0.05)
        # Each receiver sees each packet twice; the SRP filters one copy.
        dup = sum(n.srp.stats.duplicate_packets for n in cluster.nodes.values())
        assert dup > 0

    def test_requirement_a1_single_delivery(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        for i in range(25):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster)
        for node in cluster.nodes.values():
            assert len(node.log.payloads) == 25
            assert len(set(node.log.payloads)) == 25
        cluster.assert_total_order()


class TestLossMasking:
    def test_requirement_a2_loss_on_one_network_causes_no_retransmission(self):
        """A message lost on one network is masked by the copy on the other;
        no retransmission request may be raised (requirement A2)."""
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=7)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=0,
                                                      rate=0.10))
        cluster.start()
        for i in range(100):
            cluster.nodes[1 + i % 4].submit(f"m{i:03d}".encode())
        drain(cluster, timeout=20.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 100 for n in cluster.nodes.values())
        rtr = sum(n.srp.stats.retransmission_requests
                  for n in cluster.nodes.values())
        assert rtr == 0

    def test_loss_on_both_networks_recovered(self):
        """When all copies are lost, the SRP retransmission protocol takes
        over (§5: 'If all copies are lost, the Totem SRP retransmission
        protocol resolves the problem')."""
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=11)
        plan = (FaultPlan()
                .set_loss(at=0.0, network=0, rate=0.15)
                .set_loss(at=0.0, network=1, rate=0.15))
        cluster.apply_fault_plan(plan)
        cluster.start()
        for i in range(60):
            cluster.nodes[1 + i % 4].submit(f"m{i:03d}".encode())
        drain(cluster, timeout=30.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 60 for n in cluster.nodes.values())


class TestNetworkFailure:
    def test_total_failure_is_transparent(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.05, network=1))
        cluster.start()
        for burst in range(20):
            for node_id in cluster.nodes:
                cluster.nodes[node_id].submit(f"{node_id}-{burst}".encode())
            cluster.run_for(0.01)
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 80 for n in cluster.nodes.values())
        # Transparent: no membership change beyond the initial install.
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())

    def test_failure_detected_and_reported_by_all(self):
        """Requirement A5 + §3 fault reports."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.05, network=1))
        cluster.start()
        cluster.run_until_condition(
            lambda: all(1 in n.faulty_networks for n in cluster.nodes.values()),
            timeout=5.0)
        reports = cluster.all_fault_reports()
        assert {r.node for r in reports} == {1, 2, 3, 4}
        assert all(r.network == 1 for r in reports)

    def test_requirement_a6_sporadic_loss_never_marks_faulty(self):
        # 0.05% frame loss is already far above a healthy Ethernet; the
        # decay (5/s by default) must forgive it indefinitely.
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=13)
        cluster.apply_fault_plan(FaultPlan().set_loss(at=0.0, network=1,
                                                      rate=0.0005))
        cluster.start()
        for i in range(100):
            cluster.nodes[1 + i % 4].submit(b"x" * 200)
            cluster.run_for(0.005)
        cluster.run_for(1.0)
        assert all(n.faulty_networks == [] for n in cluster.nodes.values())

    def test_send_fault_on_one_node_is_masked(self):
        """§3 fault type 1: node 2 cannot send on network 0."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().sever_send(at=0.0, network=0,
                                                        node=2))
        cluster.start()
        for i in range(40):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 40 for n in cluster.nodes.values())
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())

    def test_recv_fault_on_one_node_is_masked(self):
        """§3 fault type 2: node 3 cannot receive on network 1."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().sever_recv(at=0.0, network=1,
                                                        node=3))
        cluster.start()
        for i in range(40):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 40 for n in cluster.nodes.values())

    def test_partition_of_one_network_is_masked(self):
        """§3 fault type 3: network 0 partitions; network 1 still connects
        everyone, so the ring must survive without membership change."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().partition(
            at=0.05, network=0, groups=[[1, 2], [3, 4]]))
        cluster.start()
        for i in range(40):
            cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
            cluster.run_for(0.005)
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 40 for n in cluster.nodes.values())
        assert all(n.srp.stats.membership_changes == 1
                   for n in cluster.nodes.values())

    def test_restore_returns_network_to_service(self):
        """Extension: administrative restore after repair."""
        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan()
                                 .fail_network(at=0.05, network=1)
                                 .restore_network(at=0.60, network=1))
        cluster.start()
        cluster.run_until_condition(
            lambda: all(1 in n.faulty_networks for n in cluster.nodes.values()),
            timeout=5.0)
        cluster.run_until(0.7)
        for node in cluster.nodes.values():
            assert node.clear_network_fault(1)
            assert node.faulty_networks == []
        for i in range(20):
            cluster.nodes[1 + i % 4].submit(f"post-{i}".encode())
        drain(cluster, timeout=10.0)
        cluster.assert_total_order()
        # Traffic flows on network 1 again.
        frames_before = cluster.lans[1].stats.frames_sent
        cluster.nodes[1].submit(b"final")
        drain(cluster)
        assert cluster.lans[1].stats.frames_sent > frames_before
