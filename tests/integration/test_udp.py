"""Integration tests for the asyncio UDP transport (real sockets).

The same sans-io engines run over loopback UDP; each redundant "network" is
a distinct socket per node.  These tests bind ephemeral-range ports on
127.0.0.1 and are skipped automatically if sockets are unavailable.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.api.asyncio_node import AsyncioTotemNode
from repro.config import TotemConfig
from repro.net.udp import UdpStack, local_address_map
from repro.errors import TransportError
from repro.types import ReplicationStyle


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:  # pragma: no cover - sandboxed environments
        return False


pytestmark = pytest.mark.skipif(not _loopback_available(),
                                reason="loopback UDP unavailable")


def quick_config(style=ReplicationStyle.ACTIVE, networks=2) -> TotemConfig:
    return TotemConfig(replication=style, num_networks=networks,
                       token_retransmit_interval=0.02,
                       token_loss_timeout=0.4)


async def _start_nodes(ids, config, base_port):
    addresses = local_address_map(ids, config.num_networks,
                                  base_port=base_port)
    nodes = {i: AsyncioTotemNode(i, config, addresses) for i in ids}
    for node in nodes.values():
        await node.start(initial_members=list(ids))
    return nodes


async def _settle(nodes, predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached over UDP")
        await asyncio.sleep(0.02)


class TestUdpDelivery:
    def test_total_order_over_real_sockets(self):
        async def scenario():
            nodes = await _start_nodes([1, 2, 3], quick_config(), 20100)
            try:
                for i in range(12):
                    nodes[1 + i % 3].submit(f"udp-{i}".encode())
                await _settle(nodes, lambda: all(
                    len(n.delivered) == 12 for n in nodes.values()))
                reference = [m.payload for m in nodes[1].delivered]
                for node in nodes.values():
                    assert [m.payload for m in node.delivered] == reference
            finally:
                for node in nodes.values():
                    node.close()
        asyncio.run(scenario())

    def test_passive_style_over_udp(self):
        async def scenario():
            config = quick_config(ReplicationStyle.PASSIVE)
            nodes = await _start_nodes([1, 2, 3], config, 20200)
            try:
                for i in range(9):
                    nodes[1 + i % 3].submit(f"p-{i}".encode())
                await _settle(nodes, lambda: all(
                    len(n.delivered) == 9 for n in nodes.values()))
            finally:
                for node in nodes.values():
                    node.close()
        asyncio.run(scenario())

    def test_large_message_fragmentation_over_udp(self):
        async def scenario():
            nodes = await _start_nodes([1, 2], quick_config(), 20300)
            try:
                big = bytes(range(256)) * 30  # 7680 B: several fragments
                nodes[1].submit(big)
                await _settle(nodes, lambda: all(
                    len(n.delivered) == 1 for n in nodes.values()))
                assert nodes[2].delivered[0].payload == big
            finally:
                for node in nodes.values():
                    node.close()
        asyncio.run(scenario())


class TestUdpStack:
    def test_address_map_validation(self):
        with pytest.raises(TransportError):
            UdpStack(9, {1: [("127.0.0.1", 20400)]})
        with pytest.raises(TransportError):
            UdpStack(1, {1: [("127.0.0.1", 20401)],
                         2: [("127.0.0.1", 20402), ("127.0.0.1", 20403)]})

    def test_send_before_open_rejected(self):
        stack = UdpStack(1, local_address_map([1, 2], 1, base_port=20500))
        with pytest.raises(TransportError):
            stack.unicast(0, 2, _dummy_packet())

    def test_garbage_datagram_counted_not_crashing(self):
        async def scenario():
            addresses = local_address_map([1], 1, base_port=20600)
            stack = UdpStack(1, addresses)
            stack.set_receive_handler(lambda p, n: None)
            await stack.open()
            try:
                probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                probe.sendto(b"not a totem packet", tuple(addresses[1][0]))
                probe.close()
                await asyncio.sleep(0.1)
                assert stack.decode_failures == 1
            finally:
                stack.close()
        asyncio.run(scenario())

    def test_local_address_map_shape(self):
        addresses = local_address_map([5, 9], 3, base_port=21000)
        assert set(addresses) == {5, 9}
        flat = [addr for addrs in addresses.values() for addr in addrs]
        assert len(set(flat)) == 6  # all distinct ports


def _dummy_packet():
    from repro.types import RingId
    from repro.wire.packets import Token
    return Token(ring_id=RingId(4, 1))
