"""SRP recovery-stage tests: token retransmission and membership timeouts.

These drive the under-covered timer stages of :mod:`repro.srp.engine`
end-to-end, but deterministically: instead of random loss rates, in-flight
regular tokens are destroyed surgically through the scheduler's explorer
hooks (``ready_entries`` / ``discard_entry`` — the same frame-loss model
``repro.check explore`` forks on), so every run exercises exactly the
recovery path under test:

* losing every wire copy of one token hand-off → the sender's
  retransmission timer recovers it without a membership change;
* sustained token destruction → token-loss timeout → gather → join
  resends → consensus → a new full ring, with EVS delivery intact;
* a crashed peer → token loss plus a consensus timeout that nobody
  answers → a reduced singleton ring.

The canonical state digests (:mod:`repro.check.digest`) double as the
oracle that the whole recovery chain is deterministic.
"""

from repro.check.digest import cluster_digest
from repro.net.simlan import SimLan
from repro.sim.scheduler import _ARGS, _CALLBACK, _WHEN
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle
from repro.wire.packets import Token

from conftest import drain, make_cluster


def _is_token_flight(entry) -> bool:
    callback = entry[_CALLBACK]
    owner = getattr(callback, "__self__", None)
    return (isinstance(owner, SimLan) and callback.__name__ == "_fanout"
            and isinstance(entry[_ARGS][1], Token))


def discard_token_flights(cluster, count: int, deadline: float = 1.0) -> None:
    """Step the scheduler, destroying the first ``count`` in-flight regular
    tokens (each wire copy counts once; commit tokens and joins pass)."""
    scheduler = cluster.scheduler
    discarded = 0
    while discarded < count:
        ready = scheduler.ready_entries()
        assert ready, "scheduler ran dry before a token flew"
        assert ready[0][_WHEN] <= deadline, "no token in flight in time"
        flights = [entry for entry in ready if _is_token_flight(entry)]
        if not flights:
            scheduler.fire_entry(ready[0])
            continue
        for entry in flights[:count - discarded]:
            scheduler.discard_entry(entry)
            discarded += 1


def discard_tokens_until(cluster, deadline: float) -> int:
    """Destroy every regular token put on a wire before ``deadline``."""
    scheduler = cluster.scheduler
    discarded = 0
    while True:
        ready = scheduler.ready_entries()
        if not ready or ready[0][_WHEN] >= deadline:
            return discarded
        flights = [entry for entry in ready if _is_token_flight(entry)]
        if flights:
            for entry in flights:
                scheduler.discard_entry(entry)
            discarded += len(flights)
        else:
            scheduler.fire_entry(ready[0])


def test_token_retransmission_recovers_lost_handoff():
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=2)
    cluster.start()
    # Both network copies of the next hand-off vanish on the wire.
    discard_token_flights(cluster, 2)
    cluster.run_until_condition(
        lambda: sum(node.srp.stats.token_retransmits
                    for node in cluster.nodes.values()) > 0,
        timeout=1.0)
    # The retransmission healed the ring below the membership layer.
    cluster.nodes[1].submit(b"after the loss")
    drain(cluster)
    for node in cluster.nodes.values():
        assert node.srp.state is SrpState.OPERATIONAL
        assert node.srp.stats.token_loss_events == 0
        assert node.srp.stats.gathers_entered == 0
        assert node.log.payloads == [b"after the loss"]


def test_sustained_token_loss_reforms_full_ring():
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=2)
    cluster.start()
    cluster.nodes[1].submit(b"survives the reform")
    seq_before = cluster.nodes[1].srp.ring_id.seq
    # Destroy every regular token past the token-loss timeout: both nodes
    # must give the ring up and renegotiate it from scratch.
    assert discard_tokens_until(cluster, deadline=0.12) > 0
    cluster.run_until_condition(
        lambda: all(node.srp.state is SrpState.OPERATIONAL
                    and tuple(node.membership.members) == (1, 2)
                    and node.srp.ring_id.seq > seq_before
                    for node in cluster.nodes.values()),
        timeout=5.0)
    drain(cluster)
    for node in cluster.nodes.values():
        assert node.srp.stats.token_loss_events >= 1
        assert node.srp.stats.gathers_entered >= 1
        assert node.srp.stats.membership_changes >= 1
        # EVS: the pre-reform submission survives onto the new ring.
        assert b"survives the reform" in node.log.payloads


def test_crashed_peer_reforms_singleton_via_consensus_timeout():
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=2)
    cluster.start()
    survivor = cluster.nodes[1]
    seq_before = survivor.srp.ring_id.seq
    cluster.crash_node(2)
    states_seen = set()

    def reformed():
        states_seen.add(survivor.srp.state)
        return (survivor.srp.state is SrpState.OPERATIONAL
                and tuple(survivor.membership.members) == (1,))

    cluster.run_until_condition(reformed, timeout=5.0)
    # The dead peer answered no join, so the reduced ring came out of the
    # gather stage's consensus timeout.
    assert SrpState.GATHER in states_seen
    stats = survivor.srp.stats
    assert stats.token_loss_events >= 1
    assert stats.gathers_entered >= 1
    assert stats.membership_changes >= 1
    assert survivor.srp.ring_id.seq > seq_before
    survivor.submit(b"alone but alive")
    drain(cluster)
    assert survivor.log.payloads[-1] == b"alone but alive"


def test_recovery_chain_is_digest_deterministic():
    """Same seed, same crash instant → byte-identical recovery, judged by
    the explorer's canonical cluster digest at both ends of the chain."""

    def run_once():
        cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=2)
        cluster.start()
        cluster.nodes[1].submit(b"before the crash")
        cluster.run_for(0.01)
        cluster.crash_node(2)
        mid = cluster_digest(cluster)
        cluster.run_for(0.6)  # token loss + gather + consensus + reform
        survivor = cluster.nodes[1]
        assert survivor.srp.state is SrpState.OPERATIONAL
        assert tuple(survivor.membership.members) == (1,)
        return mid, cluster_digest(cluster)

    first = run_once()
    second = run_once()
    assert first == second
    # ...and the digest actually observed the reform happening.
    assert first[0] != first[1]
