"""Property-based tests for packing/fragmentation and reassembly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.srp.packing import Packer, Reassembler
from repro.srp.send_queue import SendQueue
from repro.wire.packets import CHUNK_HEADER_BYTES

messages = st.lists(st.binary(max_size=4000), min_size=0, max_size=20)
payload_budgets = st.integers(min_value=32, max_value=1500)


def pack_everything(payloads, max_payload, enable_packing=True):
    queue = SendQueue(capacity=10_000)
    packer = Packer(queue, max_payload, enable_packing=enable_packing)
    for payload in payloads:
        queue.enqueue(payload)
    packets = []
    while packer.has_pending():
        chunks = packer.next_packet_chunks()
        assert chunks, "pending work must always produce chunks"
        packets.append(chunks)
    return packets


@given(payloads=messages, max_payload=payload_budgets)
@settings(max_examples=150)
def test_pack_reassemble_roundtrip(payloads, max_payload):
    """Whatever goes in comes out: same payloads, same order."""
    packets = pack_everything(payloads, max_payload)
    reassembler = Reassembler()
    out = []
    for chunks in packets:
        for chunk in chunks:
            done = reassembler.feed(1, chunk)
            if done is not None:
                out.append(done)
    assert out == payloads
    assert reassembler.pending_count() == 0


@given(payloads=messages, max_payload=payload_budgets)
@settings(max_examples=150)
def test_packets_respect_budget(payloads, max_payload):
    for chunks in pack_everything(payloads, max_payload):
        size = sum(c.wire_size() for c in chunks)
        assert size <= max_payload


@given(payloads=messages, max_payload=payload_budgets)
def test_fragments_are_consecutive_per_message(payloads, max_payload):
    packets = pack_everything(payloads, max_payload)
    open_msg = None
    for chunks in packets:
        for chunk in chunks:
            if open_msg is not None:
                assert chunk.msg_id == open_msg, \
                    "another message interleaved into an open fragmentation"
            if chunk.is_first and not chunk.is_last:
                open_msg = chunk.msg_id
            elif chunk.is_last:
                open_msg = None


@given(payloads=st.lists(st.binary(max_size=300), max_size=20),
       max_payload=st.integers(min_value=400, max_value=1500))
def test_packing_disabled_means_one_message_per_packet(payloads, max_payload):
    packets = pack_everything(payloads, max_payload, enable_packing=False)
    # every message here fits a packet alone, so counts must match
    assert len(packets) == len(payloads)
    for chunks in packets:
        assert len(chunks) == 1


@given(payloads=messages, max_payload=payload_budgets)
def test_backlog_reaches_zero(payloads, max_payload):
    queue = SendQueue(capacity=10_000)
    packer = Packer(queue, max_payload)
    for payload in payloads:
        queue.enqueue(payload)
    assert packer.backlog() == len(payloads)
    while packer.has_pending():
        packer.next_packet_chunks()
    assert packer.backlog() == 0
