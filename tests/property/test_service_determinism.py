"""Property tests: the service facade is deterministic (PR-9 acceptance).

The facade's contract is that a run is a pure function of (cluster seed,
workload seed, configuration): the same inputs reproduce the admit/shed
decision log and the delivered-op log *byte for byte*, on a single ring
and on a sharded 8-ring cluster alike.  Distinct seeds must genuinely
diverge, or the identity check would be vacuous.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workload import ClosedLoopWorkload
from repro.config import ClusterConfig, TotemConfig
from repro.api.cluster import SimCluster
from repro.multiring import MultiRingCluster, MultiRingConfig
from repro.obs.metrics import MetricRegistry
from repro.service import ServiceConfig, ServiceFacade
from repro.types import ReplicationStyle

#: Tight limits so the overload machinery (queueing, every shed type)
#: participates in the logs the property compares.
SERVICE = dict(rate=1500.0, burst=16, queue_capacity=48,
               per_client_limit=8, inflight_windows=2.0)


def build_cluster(kind: str, seed: int):
    if kind == "single":
        cluster = SimCluster(ClusterConfig(
            num_nodes=4, seed=seed,
            totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                              num_networks=2, enable_batching=True)))
    else:
        cluster = MultiRingCluster(MultiRingConfig(
            num_rings=8, num_nodes=3, seed=seed,
            totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                              num_networks=2, enable_batching=True)))
    cluster.start()
    return cluster


def service_trace(kind: str, seed: int, workload_seed: int,
                  num_clients: int = 80):
    """One closed-loop run; returns the facade's byte-stable ledgers."""
    cluster = build_cluster(kind, seed)
    facade = ServiceFacade(cluster, ServiceConfig(**SERVICE),
                           registry=MetricRegistry())
    workload = ClosedLoopWorkload(facade, num_clients=num_clients,
                                  think_mean=0.01, seed=workload_seed,
                                  ramp=0.02)
    workload.start()
    cluster.run_for(0.35)
    workload.stop()
    facade.quiesce(shed_remaining=True)
    gateway = facade.port.gateway
    return (facade.decision_log_text(),
            facade.applied_log_bytes(gateway),
            facade.decision_digest())


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kind=st.sampled_from(["single", "multi"]),
       seed=st.integers(min_value=0, max_value=1000),
       workload_seed=st.integers(min_value=0, max_value=1000))
def test_same_seed_and_schedule_reproduce_both_logs(kind, seed,
                                                    workload_seed):
    first = service_trace(kind, seed, workload_seed)
    second = service_trace(kind, seed, workload_seed)
    assert second == first
    decisions, applied, _digest = first
    assert decisions, "run produced no decisions"
    assert applied, "no operation reached the gateway replica"


def test_distinct_workload_seeds_diverge():
    """The identity check has teeth: the seed steers the client schedule,
    so different seeds must yield different decision logs."""
    logs = {s: service_trace("single", seed=3, workload_seed=s)[0]
            for s in (1, 2, 3)}
    assert len(set(logs.values())) > 1


def test_distinct_workload_seeds_diverge_on_multiring():
    # (The *cluster* seed alone does not steer a fault-free preformed
    # multi-ring run — determinism there is the point of PR-8 — so the
    # divergence lever is the client schedule.)
    logs = {s: service_trace("multi", seed=3, workload_seed=s)[0]
            for s in (1, 2)}
    assert len(set(logs.values())) > 1
