"""Property test: replicated state machines converge under random joins.

Random command schedules interleaved with a late joiner at a random moment:
every synced replica must end with the identical machine state, and the
joiner's state must equal the group's (nothing lost, nothing duplicated —
counters make duplicates visible).
"""

from __future__ import annotations

import os
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app import ReplicatedStateMachine
from repro.types import ReplicationStyle

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import make_cluster  # noqa: E402


class CounterMachine:
    """Counters keyed by small ints; duplicates/losses shift the totals."""

    def __init__(self):
        self.counters = {}

    def apply(self, command: bytes) -> None:
        key = command[0]
        self.counters[key] = self.counters.get(key, 0) + 1

    def snapshot(self) -> bytes:
        return bytes(v for kv in sorted(self.counters.items()) for v in kv)

    def restore(self, snapshot: bytes) -> None:
        pairs = zip(snapshot[::2], snapshot[1::2])
        self.counters = {k: v for k, v in pairs}


@given(commands=st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                                   st.integers(min_value=0, max_value=9)),
                         min_size=1, max_size=30),
       join_after=st.integers(min_value=0, max_value=25),
       seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_replicas_converge_with_random_join_timing(commands, join_after,
                                                   seed):
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4, seed=seed)
    rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid], CounterMachine(),
                                        initially_synced=(nid != 4))
            for nid in cluster.nodes}
    for nid in (1, 2, 3):
        cluster.nodes[nid].start([1, 2, 3])

    joined = False
    for i, (sender_offset, key) in enumerate(commands):
        if not joined and i >= join_after:
            cluster.nodes[4].start(None)
            joined = True
        rsms[1 + sender_offset].submit(bytes([key]))
        cluster.run_for(0.01)
    if not joined:
        cluster.nodes[4].start(None)

    cluster.run_until_condition(
        lambda: all(rsm.synced for rsm in rsms.values()), timeout=10.0)
    cluster.run_until_condition(
        lambda: all(len(cluster.nodes[n].srp.send_queue) == 0
                    for n in cluster.nodes),
        timeout=10.0)
    cluster.run_for(0.3)

    expected = {}
    for _, key in commands:
        expected[key] = expected.get(key, 0) + 1
    for nid, rsm in rsms.items():
        assert rsm.machine.counters == expected, f"node {nid} diverged"
