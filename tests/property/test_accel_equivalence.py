"""Pure vs compiled equivalence: the ISSUE-10 determinism bar.

The compiled core (``repro._fast._corec``) is admissible only if it is
*observationally invisible*: for any seed, loss rate, batching setting and
ring topology, a world run on the C implementations must produce

* byte-identical delivery logs on every node,
* byte-identical ``repro.obs`` JSONL exports,
* identical RNG stream states afterwards (same draws, same order), and
* byte-identical campaign-corpus replay text (tier-1 smoke below),

as the same world run on the pure-Python reference.  Both runs execute in
one process: :mod:`repro.core.accel` rebinds the implementation slots, so
each hypothesis example builds one world pure and one compiled and diffs
them field by field.

When the extension is not built (or ``REPRO_PURE=1``), the comparison is
impossible and the whole module skips — the pure implementations are then
the only implementations, which is vacuously equivalent.
"""

from __future__ import annotations

import dataclasses
import glob
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.cluster import SimCluster
from repro.app import ShardedKv
from repro.bench.runner import build_config
from repro.config import TotemConfig
from repro.core import accel
from repro.multiring import MultiRingCluster, MultiRingConfig
from repro.net.faults import FaultPlan
from repro.obs import samples_to_jsonl
from repro.types import ReplicationStyle, RingId
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.packets import (
    BATCH_MAX_PACKETS,
    BatchPacket,
    Chunk,
    ChunkKind,
    DataPacket,
)

pytestmark = pytest.mark.skipif(
    not accel.available(),
    reason="compiled core not built (run tools/build_accel.py; unset REPRO_PURE)")

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "..", "scenarios")


@pytest.fixture(autouse=True)
def _restore_accel_mode():
    """Every test flips modes; put the session default back afterwards."""
    before = accel.mode()
    yield
    if before == "compiled":
        accel.use_compiled()
    else:
        accel.use_pure()


def run_world(mode: str, style: ReplicationStyle, seed: int,
              loss_permille: int, enable_batching: bool, num_messages: int):
    """One complete cluster run in the given accel mode.

    Returns everything the determinism bar names: per-node delivery logs,
    the obs JSONL export, and the final state of every RNG stream (equal
    states == same draw count in the same order, since both worlds start
    from the same seeds).
    """
    if mode == "compiled":
        accel.use_compiled()
    else:
        accel.use_pure()
    config = build_config(style, 4, seed=seed,
                          enable_batching=enable_batching)
    config = dataclasses.replace(config, obs="full", obs_interval=0.01)
    cluster = SimCluster(config)
    if loss_permille:
        cluster.apply_fault_plan(
            FaultPlan()
            .set_loss(at=0.01, network=0, rate=loss_permille / 1000.0)
            .set_loss(at=0.15, network=0, rate=0.0))
    cluster.start()
    node_ids = sorted(cluster.nodes)
    for i in range(num_messages):
        sender = cluster.node(node_ids[i % len(node_ids)])
        sender.submit(b"%08d" % i + b"p" * 120)
    for _ in range(100):
        cluster.run_for(0.05)
        if all(len(cluster.delivered_payloads(n)) >= num_messages
               for n in node_ids):
            break
    logs = {n: [(m.sender, m.seq, m.payload, m.ring_id)
                for m in cluster.node(n).delivered]
            for n in node_ids}
    jsonl = samples_to_jsonl(cluster.obs.samples) if cluster.obs else ""
    rng_states = {name: rng.getstate()
                  for name, rng in sorted(cluster.rng._streams.items())}
    return logs, jsonl, rng_states


def run_multiring_world(seed: int, num_rings: int, loss_permille: int,
                        num_keys: int):
    """One sharded-KV multi-ring run; returns each auditor's merged log.

    Mirrors the PR-8 determinism property's workload so the compiled core
    is exercised across the cross-ring merge as well.
    """
    config = MultiRingConfig(
        num_rings=num_rings, num_nodes=3, seed=seed, merge_interval=0.01,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2))
    cluster = MultiRingCluster(config)
    audit_members = (1, 2, 3)
    kv = ShardedKv(cluster, audit_members=audit_members)
    if loss_permille:
        cluster.apply_fault_plan(
            FaultPlan()
            .set_loss(at=0.02, network=0, rate=loss_permille / 1000.0)
            .set_loss(at=0.2, network=0, rate=0.0))
    cluster.start()
    for i in range(num_keys):
        kv.set(b"key:%d" % i, b"val:%d" % i, sender=1 + i % 3)
    cluster.run_for(0.3)
    cluster.stop_markers()
    cluster.run_for(0.2)
    assert kv.converged()
    return {m: kv.audit_log(m) for m in audit_members}


node_ids = st.integers(min_value=0, max_value=2**32 - 1)
ring_ids = st.builds(RingId,
                     seq=st.integers(min_value=0, max_value=2**32 - 1),
                     representative=node_ids)
chunks = st.builds(
    Chunk,
    kind=st.sampled_from(list(ChunkKind)),
    msg_id=st.integers(min_value=0, max_value=2**32 - 1),
    flags=st.integers(min_value=0, max_value=3),
    data=st.binary(max_size=256))


@st.composite
def batch_packets(draw):
    """A well-formed frame train: one sender/ring, contiguous sequences."""
    sender = draw(node_ids)
    ring = draw(ring_ids)
    first_seq = draw(st.integers(min_value=1, max_value=2**62))
    chunk_lists = draw(st.lists(st.lists(chunks, max_size=4),
                                min_size=1, max_size=BATCH_MAX_PACKETS))
    return BatchPacket(packets=tuple(
        DataPacket(sender=sender, ring_id=ring, seq=first_seq + i,
                   chunks=tuple(chunk_list))
        for i, chunk_list in enumerate(chunk_lists)))


class TestPureCompiledEquivalence:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           style=st.sampled_from([ReplicationStyle.ACTIVE,
                                  ReplicationStyle.NONE]),
           loss_permille=st.sampled_from([0, 0, 40, 120]),
           enable_batching=st.booleans(),
           num_messages=st.integers(min_value=4, max_value=32))
    def test_single_ring_worlds_identical(self, seed, style, loss_permille,
                                          enable_batching, num_messages):
        pure = run_world("pure", style, seed, loss_permille,
                         enable_batching, num_messages)
        compiled = run_world("compiled", style, seed, loss_permille,
                             enable_batching, num_messages)
        assert compiled[0] == pure[0], "delivery logs diverged"
        assert compiled[1] == pure[1], "obs JSONL diverged"
        assert compiled[2] == pure[2], "RNG draw order diverged"

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           loss_permille=st.sampled_from([0, 50]),
           num_keys=st.integers(min_value=5, max_value=20))
    def test_multi_ring_worlds_identical(self, seed, loss_permille, num_keys):
        accel.use_pure()
        pure = run_multiring_world(seed, 3, loss_permille, num_keys)
        accel.use_compiled()
        compiled = run_multiring_world(seed, 3, loss_permille, num_keys)
        assert compiled == pure, "multi-ring merged logs diverged"


class TestCodecEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(batch=batch_packets())
    def test_encode_bytes_identical(self, batch):
        accel.use_pure()
        pure_batch = encode_packet(batch)
        pure_data = encode_packet(batch.packets[0])
        accel.use_compiled()
        assert encode_packet(batch) == pure_batch
        assert encode_packet(batch.packets[0]) == pure_data

    @settings(max_examples=40, deadline=None)
    @given(batch=batch_packets())
    def test_decode_objects_identical(self, batch):
        encoded = encode_packet(batch)
        accel.use_pure()
        pure_obj = decode_packet(encoded)
        accel.use_compiled()
        assert decode_packet(encoded) == pure_obj


class TestCorpusSmokeCompiled:
    """Tier-1 smoke: the pinned scenario corpus replays byte-identically
    under the compiled core (ISSUE-10 satellite)."""

    CORPUS = sorted(glob.glob(os.path.join(SCENARIO_DIR, "*.json")))

    @pytest.mark.parametrize(
        "path", CORPUS,
        ids=[os.path.splitext(os.path.basename(p))[0] for p in CORPUS])
    def test_scenario_replay_matches_pure(self, path):
        from repro.campaign import load_scenario, run_scenario
        scenario = load_scenario(path)
        accel.use_pure()
        pure = run_scenario(scenario)
        accel.use_compiled()
        compiled = run_scenario(scenario)
        assert pure.ok and compiled.ok
        assert compiled.replay_text == pure.replay_text
