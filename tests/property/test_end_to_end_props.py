"""End-to-end property tests: the group-communication guarantees hold for
randomized clusters, workloads and loss patterns.

Each example builds a small simulated cluster, injects i.i.d. frame loss,
submits a random message schedule, and checks Totem's core contract for a
stable membership:

* **validity** — every submitted message is delivered everywhere,
* **integrity** — no message is delivered twice or invented,
* **total order** — all nodes deliver the same sequence,
* **FIFO per sender** — a sender's messages appear in submission order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

import sys
import os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import drain, make_cluster  # noqa: E402

styles = st.sampled_from([ReplicationStyle.NONE, ReplicationStyle.ACTIVE,
                          ReplicationStyle.PASSIVE,
                          ReplicationStyle.ACTIVE_PASSIVE])

schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),   # sender index offset
              st.integers(min_value=0, max_value=600)),  # payload size
    min_size=1, max_size=40)


@given(style=styles,
       num_nodes=st.integers(min_value=2, max_value=4),
       loss_permille=st.integers(min_value=0, max_value=60),
       seed=st.integers(min_value=0, max_value=1000),
       schedule=schedules)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_group_communication_contract(style, num_nodes, loss_permille,
                                      seed, schedule):
    cluster = make_cluster(style, num_nodes=num_nodes, seed=seed)
    if loss_permille:
        plan = FaultPlan()
        for network in range(len(cluster.lans)):
            plan.set_loss(at=0.0, network=network,
                          rate=loss_permille / 1000.0)
        cluster.apply_fault_plan(plan)
    cluster.start()

    submitted = {node_id: [] for node_id in cluster.nodes}
    for i, (sender_offset, size) in enumerate(schedule):
        sender = 1 + (sender_offset + i) % num_nodes
        payload = f"{sender}:{i}:".encode() + b"x" * size
        cluster.nodes[sender].submit(payload)
        submitted[sender].append(payload)

    drain(cluster, timeout=60.0)
    cluster.run_for(0.05)

    total = sum(len(v) for v in submitted.values())
    reference = cluster.nodes[1].log.payloads
    # validity + integrity
    assert len(reference) == total
    assert sorted(reference) == sorted(
        p for msgs in submitted.values() for p in msgs)
    # total order
    cluster.assert_total_order()
    for node in cluster.nodes.values():
        assert node.log.payloads == reference
    # FIFO per sender
    for sender, msgs in submitted.items():
        delivered_from_sender = [p for p in reference
                                 if p.startswith(f"{sender}:".encode())]
        assert delivered_from_sender == msgs
    # membership never changed (loss is not a membership event)
    assert all(n.srp.stats.membership_changes == 1
               for n in cluster.nodes.values())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_determinism_is_total(seed):
    """Two runs with identical inputs are event-for-event identical."""
    def run():
        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=seed)
        cluster.apply_fault_plan(
            FaultPlan().set_loss(at=0.0, network=0, rate=0.03))
        cluster.start()
        for i in range(20):
            cluster.nodes[1 + i % 4].submit(f"d{i}".encode())
        cluster.run_until(0.3)
        return (cluster.scheduler.events_processed,
                tuple(tuple(n.log.payloads) for n in cluster.nodes.values()))
    assert run() == run()
