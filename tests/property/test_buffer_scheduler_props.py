"""Property-based tests: receive-buffer and scheduler invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.scheduler import EventScheduler
from repro.srp.ordering import ReceiveBuffer
from repro.types import RingId
from repro.wire.packets import DataPacket

RING = RingId(4, 1)


def packet(seq: int) -> DataPacket:
    return DataPacket(sender=1, ring_id=RING, seq=seq, chunks=())


@given(permutation=st.permutations(list(range(1, 26))))
def test_aru_invariants_under_any_arrival_order(permutation):
    buffer = ReceiveBuffer()
    seen = set()
    for seq in permutation:
        assert buffer.insert(packet(seq))
        seen.add(seq)
        # my_aru is the longest contiguous prefix of what has been seen.
        expected_aru = 0
        while expected_aru + 1 in seen:
            expected_aru += 1
        assert buffer.my_aru == expected_aru
        assert buffer.high_seq == max(seen)
        missing = set(buffer.missing_up_to(buffer.high_seq))
        assert missing == set(range(1, buffer.high_seq + 1)) - seen
    assert buffer.my_aru == 25


@given(permutation=st.permutations(list(range(1, 21))),
       gc_points=st.lists(st.integers(min_value=0, max_value=20), max_size=5))
def test_gc_never_loses_undelivered_suffix(permutation, gc_points):
    buffer = ReceiveBuffer()
    inserted = []
    gc_schedule = list(gc_points)
    for seq in permutation:
        buffer.insert(packet(seq))
        inserted.append(seq)
        if gc_schedule:
            point = gc_schedule.pop()
            buffer.gc_below(point)
            # everything above the gc floor and received stays retrievable
            for s in inserted:
                if s > buffer.gc_floor:
                    assert buffer.get(s) is not None
    # duplicates (even collected ones) are still recognised
    for s in range(1, 21):
        assert buffer.has(s)
        assert not buffer.insert(packet(s))


@given(delays=st.lists(st.floats(min_value=0, max_value=10,
                                 allow_nan=False), min_size=1, max_size=50))
def test_scheduler_fires_in_nondecreasing_time_order(delays):
    scheduler = EventScheduler()
    fired = []
    for delay in delays:
        scheduler.call_after(delay, lambda: fired.append(scheduler.now()))
    scheduler.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(groups=st.lists(st.integers(min_value=1, max_value=5),
                       min_size=1, max_size=10))
def test_scheduler_equal_times_fifo(groups):
    scheduler = EventScheduler()
    fired = []
    label = 0
    for group_size in groups:
        for _ in range(group_size):
            scheduler.call_at(1.0, fired.append, label)
            label += 1
    scheduler.run()
    assert fired == list(range(label))
