"""Property-based tests for the batch frame codec and batch semantics.

Three properties pin down the batch hot path:

* **roundtrip identity** — any well-formed frame train survives
  encode/decode exactly;
* **rejection** — any truncation or single-byte corruption of an encoded
  train is rejected with :class:`~repro.errors.CodecError` (the CRC spans
  the whole frame), never silently mis-decoded;
* **delivery equivalence** — under a fixed seed, a cluster running with
  batching enabled produces the same delivery log, byte for byte, as one
  running unbatched (batching is a transport optimisation, not a protocol
  change).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.errors import CodecError
from repro.types import ReplicationStyle, RingId
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.packets import (
    BATCH_MAX_PACKETS,
    BatchPacket,
    Chunk,
    ChunkKind,
    DataPacket,
)

node_ids = st.integers(min_value=0, max_value=2**32 - 1)
ring_ids = st.builds(RingId,
                     seq=st.integers(min_value=0, max_value=2**32 - 1),
                     representative=node_ids)

chunks = st.builds(
    Chunk,
    kind=st.sampled_from(list(ChunkKind)),
    msg_id=st.integers(min_value=0, max_value=2**32 - 1),
    flags=st.integers(min_value=0, max_value=3),
    data=st.binary(max_size=256))


@st.composite
def batch_packets(draw):
    """A well-formed frame train: one sender/ring, contiguous sequences."""
    sender = draw(node_ids)
    ring = draw(ring_ids)
    first_seq = draw(st.integers(min_value=1, max_value=2**62))
    chunk_lists = draw(st.lists(st.lists(chunks, max_size=4),
                                min_size=1, max_size=BATCH_MAX_PACKETS))
    return BatchPacket(packets=tuple(
        DataPacket(sender=sender, ring_id=ring, seq=first_seq + i,
                   chunks=tuple(chunk_list))
        for i, chunk_list in enumerate(chunk_lists)))


class TestBatchRoundtrip:
    @given(batch_packets())
    def test_encode_decode_identity(self, batch):
        decoded = decode_packet(encode_packet(batch))
        assert isinstance(decoded, BatchPacket)
        assert decoded == batch

    @given(batch_packets())
    def test_header_fields_survive(self, batch):
        decoded = decode_packet(encode_packet(batch))
        assert decoded.sender == batch.sender
        assert decoded.ring_id == batch.ring_id
        assert decoded.first_seq == batch.first_seq
        assert decoded.last_seq == batch.last_seq

    @given(batch_packets())
    def test_wire_size_matches_encoding(self, batch):
        # wire_size() drives medium occupancy and CPU cost accounting; it
        # must track the real encoding as overhead-free payload bytes do.
        assert batch.wire_size() <= len(encode_packet(batch))


class TestBatchRejection:
    @given(batch_packets(), st.data())
    def test_any_truncation_rejected(self, batch, data):
        encoded = encode_packet(batch)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        try:
            decode_packet(encoded[:cut])
        except CodecError:
            return
        raise AssertionError(f"truncation to {cut} bytes was accepted")

    @given(batch_packets(), st.data())
    def test_any_byte_flip_rejected(self, batch, data):
        encoded = bytearray(encode_packet(batch))
        index = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        encoded[index] ^= flip
        try:
            decode_packet(bytes(encoded))
        except CodecError:
            return
        raise AssertionError(f"corrupt byte at {index} was accepted")

    @given(batch_packets(), st.binary(min_size=1, max_size=16))
    def test_trailing_garbage_rejected(self, batch, tail):
        try:
            decode_packet(encode_packet(batch) + tail)
        except CodecError:
            return
        raise AssertionError("trailing bytes were accepted")


def _run_cluster(enable_batching: bool, seed: int, num_messages: int,
                 message_size: int):
    """Run a 4-node cluster to completion; return each node's delivery log."""
    config = build_config(ReplicationStyle.ACTIVE, 4, seed=seed,
                          enable_batching=enable_batching)
    cluster = SimCluster(config)
    cluster.start()
    node_ids = sorted(cluster.nodes)
    for i in range(num_messages):
        sender = cluster.node(node_ids[i % len(node_ids)])
        sender.submit(b"%08d" % i + b"x" * message_size)
    expected = num_messages
    for _ in range(200):
        cluster.run_for(0.05)
        if all(len(cluster.delivered_payloads(n)) >= expected
               for n in node_ids):
            break
    return {n: [(m.sender, m.seq, m.payload)
                for m in cluster.node(n).delivered]
            for n in node_ids}


class TestBatchedUnbatchedEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           num_messages=st.integers(min_value=4, max_value=40),
           message_size=st.integers(min_value=1, max_value=700))
    def test_delivery_logs_identical(self, seed, num_messages, message_size):
        batched = _run_cluster(True, seed, num_messages, message_size)
        unbatched = _run_cluster(False, seed, num_messages, message_size)
        assert batched == unbatched
        # And every node agrees on the one total order.
        logs = list(batched.values())
        assert all(log == logs[0] for log in logs[1:])
