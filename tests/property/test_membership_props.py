"""Property tests targeting the membership protocol's hard paths.

Crashes are injected at *random moments* — including mid-gather,
mid-commit and mid-recovery — and random full-cluster partitions come and
go.  Whatever happens, the surviving connected component must converge to
one operational ring and keep totally ordered delivery working.
"""

from __future__ import annotations

import os
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import make_cluster  # noqa: E402


@given(crash_delay_ms=st.integers(min_value=0, max_value=400),
       second_crash_delay_ms=st.integers(min_value=0, max_value=100),
       seed=st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_crash_at_random_moment_during_reconfiguration(
        crash_delay_ms, second_crash_delay_ms, seed):
    """Crash node 4, then crash node 3 at a random offset — often landing
    inside the gather/commit/recovery triggered by the first crash."""
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4, seed=seed)
    cluster.start()
    for i in range(20):
        cluster.nodes[1 + i % 4].submit(f"pre-{i}".encode())
    cluster.run_for(crash_delay_ms / 1000.0)
    cluster.crash_node(4)
    cluster.run_for(0.1 + second_crash_delay_ms / 1000.0)
    cluster.crash_node(3)

    cluster.run_until_condition(
        lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                    and tuple(cluster.nodes[n].membership.members) == (1, 2)
                    for n in (1, 2)),
        timeout=15.0)
    cluster.nodes[1].submit(b"post")
    cluster.run_until_condition(
        lambda: b"post" in cluster.nodes[2].log.payloads, timeout=5.0)
    cluster.assert_total_order(nodes=(1, 2))


@given(split=st.sampled_from([((1, 2), (3, 4)), ((1, 3), (2, 4)),
                              ((1,), (2, 3, 4)), ((1, 2, 3), (4,))]),
       partition_after_ms=st.integers(min_value=10, max_value=300),
       heal_after_ms=st.integers(min_value=300, max_value=800),
       seed=st.integers(min_value=0, max_value=300))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_partition_and_heal_always_reconverges(split, partition_after_ms,
                                               heal_after_ms, seed):
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4, seed=seed,
                           presence_interval=0.15)
    cluster.start()
    for i in range(12):
        cluster.nodes[1 + i % 4].submit(f"m{i}".encode())
    cluster.run_for(partition_after_ms / 1000.0)
    cluster.partition_cluster(split)
    cluster.run_for(heal_after_ms / 1000.0)
    # Each side must have re-formed among itself.
    for group in split:
        reference = tuple(sorted(group))
        cluster.run_until_condition(
            lambda reference=reference: all(
                cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                and tuple(cluster.nodes[n].membership.members) == reference
                for n in reference),
            timeout=10.0)
    cluster.heal_cluster()
    cluster.run_until_condition(
        lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                    and len(cluster.nodes[n].membership) == 4
                    for n in cluster.nodes),
        timeout=10.0)
    cluster.nodes[2].submit(b"after heal")
    cluster.run_until_condition(
        lambda: all(b"after heal" in n.log.payloads
                    for n in cluster.nodes.values()),
        timeout=5.0)
