"""Property test: SMR state transfer on a partition merge with an exact tie.

Split a four-node cluster into two halves of two, let both halves diverge,
then heal.  On the merge neither lineage holds a majority (2*t == n), so
``ReplicatedStateMachine._lineage_qualifies`` falls back to the
deterministic tiebreak: the lineage containing the smallest member id
provides the state.  Whatever the split, the half holding node 1 must win,
the losing half must discard its divergent state (``state_discards``) and
install the winner's snapshot, and every replica must converge on the
winning half's command history.
"""

from __future__ import annotations

import os
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app import ReplicatedStateMachine
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import make_cluster  # noqa: E402


class CounterMachine:
    def __init__(self):
        self.counters = {}

    def apply(self, command: bytes) -> None:
        key = command[0]
        self.counters[key] = self.counters.get(key, 0) + 1

    def snapshot(self) -> bytes:
        return bytes(v for kv in sorted(self.counters.items()) for v in kv)

    def restore(self, snapshot: bytes) -> None:
        pairs = zip(snapshot[::2], snapshot[1::2])
        self.counters = {k: v for k, v in pairs}


def ring_is(cluster, members) -> bool:
    return all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
               and tuple(cluster.nodes[n].membership.members) == tuple(members)
               for n in members)


@given(partner=st.sampled_from((2, 3, 4)),
       shared=st.lists(st.integers(min_value=0, max_value=3),
                       min_size=0, max_size=4),
       winner_cmds=st.lists(st.integers(min_value=0, max_value=3),
                            min_size=1, max_size=6),
       loser_cmds=st.lists(st.integers(min_value=0, max_value=3),
                           min_size=1, max_size=6),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_smallest_member_lineage_wins_exact_tie(partner, shared, winner_cmds,
                                                loser_cmds, seed):
    winners = sorted({1, partner})
    losers = sorted({2, 3, 4} - {partner})
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4, seed=seed,
                           presence_interval=0.1)
    rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid], CounterMachine(),
                                        initially_synced=True)
            for nid in cluster.nodes}
    cluster.start()
    cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                timeout=5.0)

    for key in shared:
        rsms[1].submit(bytes([key]))
    cluster.run_for(0.2)

    cluster.partition_cluster([winners, losers])
    cluster.run_until_condition(
        lambda: ring_is(cluster, tuple(winners))
        and ring_is(cluster, tuple(losers)), timeout=5.0)

    # Both halves diverge while they cannot see each other.
    for key in winner_cmds:
        rsms[winners[0]].submit(bytes([key]))
    for key in loser_cmds:
        rsms[losers[0]].submit(bytes([key + 10]))  # disjoint key space
    cluster.run_for(0.3)

    cluster.heal_cluster()
    cluster.run_until_condition(lambda: ring_is(cluster, (1, 2, 3, 4)),
                                timeout=5.0)
    cluster.run_until_condition(
        lambda: all(rsm.synced for rsm in rsms.values()), timeout=5.0)
    cluster.run_for(0.3)

    expected = {}
    for key in shared + winner_cmds:
        expected[key] = expected.get(key, 0) + 1
    for nid, rsm in rsms.items():
        assert rsm.machine.counters == expected, (
            f"node {nid} did not converge on the min-member lineage: "
            f"{rsm.machine.counters} != {expected}")
    # The losing half discarded exactly one divergent state each; the
    # winning half never discarded anything.
    for nid in losers:
        assert rsms[nid].stats.state_discards == 1, f"node {nid}"
        assert rsms[nid].stats.snapshots_installed == 1, f"node {nid}"
    for nid in winners:
        assert rsms[nid].stats.state_discards == 0, f"node {nid}"
