"""Property test: membership churn never corrupts the survivors' history.

Random schedules of crashes and restarts are applied to a loaded cluster;
afterwards the continuously-alive nodes must hold identical delivery
sequences and the cluster must converge back to one operational ring
containing every live node.
"""

from __future__ import annotations

import os
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import make_cluster  # noqa: E402

# A churn schedule: (victim offset, crash duration in ms, gap in ms).
churn_schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=50, max_value=400),
              st.integers(min_value=50, max_value=300)),
    min_size=1, max_size=3)


@given(schedule=churn_schedules,
       seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_churn_preserves_survivor_consistency(schedule, seed):
    cluster = make_cluster(ReplicationStyle.ACTIVE, num_nodes=4, seed=seed)
    cluster.start()
    # Node 1 never crashes: it is the reference observer.
    feeding = [0]

    def feed(count):
        for _ in range(count):
            cluster.nodes[1].try_submit(f"ref-{feeding[0]}".encode())
            feeding[0] += 1

    crashed = set()
    for victim_offset, crash_ms, gap_ms in schedule:
        victim = 2 + victim_offset  # nodes 2..4
        feed(5)
        cluster.run_for(gap_ms / 1000.0)
        if victim not in crashed:
            cluster.crash_node(victim)
            crashed.add(victim)
        feed(5)
        cluster.run_for(crash_ms / 1000.0)
        if victim in crashed:
            cluster.restart_node(victim)
            crashed.discard(victim)

    feed(5)
    # Converge: everyone alive, one ring with all four nodes.
    cluster.run_until_condition(
        lambda: all(node.srp.state is SrpState.OPERATIONAL
                    and len(node.membership) == 4
                    for node in cluster.nodes.values()),
        timeout=15.0)
    cluster.run_until_condition(
        lambda: len(cluster.nodes[1].srp.send_queue) == 0, timeout=15.0)
    cluster.run_for(0.3)

    # Node 1 delivered every one of its own messages, exactly once, in order.
    own = [p for p in cluster.nodes[1].log.payloads if p.startswith(b"ref-")]
    assert own == [f"ref-{i}".encode() for i in range(feeding[0])]
    # Any other node's history is consistent: its ref- messages form a
    # suffix-aligned subsequence (it may have missed a prefix while down,
    # and never sees a gap in the middle of a ring it was on).
    for node_id in (2, 3, 4):
        others = [p for p in cluster.nodes[node_id].log.payloads
                  if p.startswith(b"ref-")]
        assert others == [p for p in own if p in set(others)]
