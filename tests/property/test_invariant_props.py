"""Property tests: the protocol invariants hold under random fault plans.

Each example runs one :func:`repro.check.run_case` simulation — a random
fault script (loss, bursts, network failures, severed paths, partitions)
plus random traffic — with the checker in **strict** mode, for each of the
three replication styles.  Any invariant violation aborts the run and
fails the test; the final ledger validation must also balance.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import CheckMode, run_case
from repro.types import ReplicationStyle

redundant_styles = st.sampled_from([ReplicationStyle.ACTIVE,
                                    ReplicationStyle.PASSIVE,
                                    ReplicationStyle.ACTIVE_PASSIVE])


@given(style=redundant_styles,
       seed=st.integers(min_value=0, max_value=10_000),
       num_nodes=st.integers(min_value=2, max_value=5))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_fault_plans_preserve_invariants(style, seed, num_nodes):
    case = run_case(style, seed, num_nodes=num_nodes, duration=0.6,
                    mode=CheckMode.STRICT, messages=60)
    assert case.clean, (case.error
                        or "\n".join(str(v) for v in case.violations))


def test_one_long_case_per_style_stays_clean():
    """A fixed, longer soak per style (deterministic anchor for CI)."""
    for style in (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE,
                  ReplicationStyle.ACTIVE_PASSIVE):
        case = run_case(style, seed=7, num_nodes=4, duration=1.5,
                        mode=CheckMode.STRICT, messages=150)
        assert case.clean, (case.error
                            or "\n".join(str(v) for v in case.violations))
        assert case.delivered > 0
