"""Property tests: the cross-ring merge is deterministic (PR-8 acceptance).

For any seed, (a) every multi-group subscriber of the same subscription
sees the exact same merged byte log, and (b) re-running the whole cluster
with the same seed reproduces that log byte for byte — even under seeded
loss on a shared LAN.  Each hypothesis example builds two independent
clusters from one seed and compares every auditor's log.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app import ShardedKv
from repro.config import TotemConfig
from repro.multiring import MultiRingCluster, MultiRingConfig
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle


def run_audited_cluster(seed: int, num_rings: int, loss_permille: int,
                        num_keys: int):
    """One full sharded-KV run; returns each auditor's merged log."""
    config = MultiRingConfig(
        num_rings=num_rings, num_nodes=3, seed=seed, merge_interval=0.01,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2))
    cluster = MultiRingCluster(config)
    audit_members = (1, 2, 3)
    kv = ShardedKv(cluster, audit_members=audit_members)
    if loss_permille:
        cluster.apply_fault_plan(
            FaultPlan()
            .set_loss(at=0.02, network=0, rate=loss_permille / 1000.0)
            .set_loss(at=0.2, network=0, rate=0.0))
    cluster.start()
    for i in range(num_keys):
        kv.set(b"key:%d" % i, b"val:%d" % i, sender=1 + i % 3)
    cluster.run_for(0.3)
    cluster.stop_markers()
    cluster.run_for(0.2)
    assert kv.converged()
    logs = {m: kv.audit_log(m) for m in audit_members}
    assert logs[1], "no operation crossed the merge clock"
    return logs


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       num_rings=st.integers(min_value=2, max_value=5),
       loss_permille=st.integers(min_value=0, max_value=60),
       num_keys=st.integers(min_value=5, max_value=30))
def test_merged_logs_byte_identical_across_subscribers_and_runs(
        seed, num_rings, loss_permille, num_keys):
    first = run_audited_cluster(seed, num_rings, loss_permille, num_keys)
    # (a) every subscriber of the full subscription agrees byte for byte.
    assert first[2] == first[1]
    assert first[3] == first[1]
    # (b) the same seed reproduces the run byte for byte.
    second = run_audited_cluster(seed, num_rings, loss_permille, num_keys)
    assert second == first


def _staggered_log(seed: int) -> bytes:
    """A run whose round assignment is timing-sensitive: fine merge rounds,
    sustained loss, and submissions spread across the run."""
    config = MultiRingConfig(
        num_rings=3, num_nodes=3, seed=seed, merge_interval=0.002,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2))
    cluster = MultiRingCluster(config)
    kv = ShardedKv(cluster, audit_members=(1,))
    cluster.apply_fault_plan(
        FaultPlan().set_loss(at=0.0, network=0, rate=0.25))
    cluster.start()
    for i in range(30):
        cluster.scheduler.call_at(0.01 + 0.005 * i, kv.set,
                                  b"key:%d" % i, b"val:%d" % i, 1 + i % 3)
    cluster.run_for(0.3)
    cluster.stop_markers()
    cluster.run_for(0.3)
    return kv.audit_log(1)


def test_different_seeds_do_diverge():
    """The determinism check has teeth: seeds actually steer the timeline
    (loss draws shift deliveries between merge rounds)."""
    logs = {seed: _staggered_log(seed) for seed in (1, 2, 3, 4)}
    assert len(set(logs.values())) > 1
