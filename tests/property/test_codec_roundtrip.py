"""Strict codec round-trip and corruption properties (hypothesis).

Complements ``test_codec_props.py``: these properties are *strict* — every
packet type round-trips exactly, and any truncation or single-byte
corruption MUST raise :class:`ChecksumError`/:class:`CodecError`.  A decode
that silently returns a wrong packet would poison the ring (a corrupted
sequence number re-orders delivery cluster-wide), so "raises, always" is
the contract, not "usually survives".

Single-byte corruption is guaranteed detectable: CRC32 catches every error
burst of 32 bits or fewer, so there is no collision escape hatch for these
generators to find.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, CodecError
from repro.types import RingId
from repro.wire.codec import PackedPacketCache, decode_packet, encode_packet
from repro.wire.packets import (
    Chunk,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    Token,
)

node_ids = st.integers(min_value=0, max_value=2**32 - 1)
seqs = st.integers(min_value=0, max_value=2**63 - 1)
ring_ids = st.builds(RingId,
                     seq=st.integers(min_value=0, max_value=2**32 - 1),
                     representative=node_ids)

chunks = st.builds(
    Chunk,
    kind=st.sampled_from(list(ChunkKind)),
    msg_id=st.integers(min_value=0, max_value=2**32 - 1),
    flags=st.integers(min_value=0, max_value=3),
    data=st.binary(max_size=256))

data_packets = st.builds(
    DataPacket,
    sender=node_ids,
    ring_id=ring_ids,
    seq=seqs,
    chunks=st.lists(chunks, max_size=6).map(tuple))

tokens = st.builds(
    Token,
    ring_id=ring_ids,
    seq=seqs,
    aru=seqs,
    aru_id=node_ids,
    fcc=st.integers(min_value=0, max_value=2**32 - 1),
    backlog=st.integers(min_value=0, max_value=2**32 - 1),
    rotation=st.integers(min_value=0, max_value=2**32 - 1),
    rtr=st.lists(seqs, max_size=12),
    done_count=st.integers(min_value=0, max_value=2**32 - 1))

joins = st.builds(
    JoinMessage,
    sender=node_ids,
    proc_set=st.frozensets(node_ids, max_size=12),
    fail_set=st.frozensets(node_ids, max_size=12),
    ring_seq=st.integers(min_value=0, max_value=2**32 - 1))

member_infos = st.builds(MemberInfo, old_ring_id=ring_ids,
                         my_aru=seqs, high_seq=seqs)

commit_tokens = st.builds(
    CommitToken,
    ring_id=ring_ids,
    members=st.lists(node_ids, min_size=1, max_size=10,
                     unique=True).map(tuple),
    info=st.dictionaries(node_ids, member_infos, max_size=10),
    rotation=st.integers(min_value=0, max_value=3))

any_packet = st.one_of(data_packets, tokens, joins, commit_tokens)


class TestRoundTripEveryType:
    """decode(encode(p)) is the identity for each of the four wire types."""

    @given(packet=data_packets)
    def test_data(self, packet):
        decoded = decode_packet(encode_packet(packet))
        assert type(decoded) is DataPacket
        assert decoded == packet

    @given(packet=tokens)
    def test_token(self, packet):
        decoded = decode_packet(encode_packet(packet))
        assert type(decoded) is Token
        assert decoded == packet

    @given(packet=joins)
    def test_join(self, packet):
        decoded = decode_packet(encode_packet(packet))
        assert type(decoded) is JoinMessage
        assert decoded == packet

    @given(packet=commit_tokens)
    def test_commit_token(self, packet):
        decoded = decode_packet(encode_packet(packet))
        assert type(decoded) is CommitToken
        assert decoded == packet

    @given(packet=any_packet)
    def test_encode_is_deterministic(self, packet):
        """The shared encode buffer must not leak state between packets."""
        first = encode_packet(packet)
        second = encode_packet(packet)
        assert first == second

    @given(first=any_packet, second=any_packet)
    def test_back_to_back_encodes_do_not_interfere(self, first, second):
        """Interleaving encodes through the reused buffer changes nothing."""
        alone = encode_packet(first)
        encode_packet(second)
        assert encode_packet(first) == alone


class TestCorruptionAlwaysRaises:
    """Damaged bytes must raise — never silently mis-decode."""

    @given(packet=any_packet,
           position=st.integers(min_value=0, max_value=10_000),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=200)
    def test_bit_flip_always_raises(self, packet, position, flip):
        blob = bytearray(encode_packet(packet))
        blob[position % len(blob)] ^= flip
        with pytest.raises((ChecksumError, CodecError)):
            decode_packet(bytes(blob))

    @given(packet=any_packet, cut=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=200)
    def test_truncation_always_raises(self, packet, cut):
        blob = encode_packet(packet)
        truncated = blob[:len(blob) - 1 - (cut % len(blob))]
        with pytest.raises((ChecksumError, CodecError)):
            decode_packet(truncated)

    @given(packet=any_packet, extra=st.binary(min_size=1, max_size=32))
    def test_trailing_garbage_always_raises(self, packet, extra):
        with pytest.raises((ChecksumError, CodecError)):
            decode_packet(encode_packet(packet) + extra)


class TestPackedPacketCache:
    @given(packet=st.one_of(data_packets, joins))
    def test_cached_bytes_match_fresh_encoding(self, packet):
        cache = PackedPacketCache()
        assert cache.encode(packet) == encode_packet(packet)
        # Second call is a hit and must return identical bytes.
        assert cache.encode(packet) == encode_packet(packet)
        assert cache.hits >= 1

    @given(packet=tokens)
    def test_mutable_tokens_are_never_cached(self, packet):
        cache = PackedPacketCache()
        before = cache.encode(packet)
        packet.seq += 1
        after = cache.encode(packet)
        assert cache.hits == 0
        assert decode_packet(after).seq == packet.seq
        assert before != after
