"""Property-based tests for the wire codec (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, TotemError
from repro.types import RingId
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.packets import (
    Chunk,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    Token,
)

node_ids = st.integers(min_value=0, max_value=2**32 - 1)
seqs = st.integers(min_value=0, max_value=2**63 - 1)
ring_ids = st.builds(RingId,
                     seq=st.integers(min_value=0, max_value=2**32 - 1),
                     representative=node_ids)

chunks = st.builds(
    Chunk,
    kind=st.sampled_from(list(ChunkKind)),
    msg_id=st.integers(min_value=0, max_value=2**32 - 1),
    flags=st.integers(min_value=0, max_value=3),
    data=st.binary(max_size=512))

data_packets = st.builds(
    DataPacket,
    sender=node_ids,
    ring_id=ring_ids,
    seq=seqs,
    chunks=st.lists(chunks, max_size=8).map(tuple))

tokens = st.builds(
    Token,
    ring_id=ring_ids,
    seq=seqs,
    aru=seqs,
    aru_id=node_ids,
    fcc=st.integers(min_value=0, max_value=2**32 - 1),
    backlog=st.integers(min_value=0, max_value=2**32 - 1),
    rotation=st.integers(min_value=0, max_value=2**32 - 1),
    rtr=st.lists(seqs, max_size=16),
    done_count=st.integers(min_value=0, max_value=2**32 - 1))

joins = st.builds(
    JoinMessage,
    sender=node_ids,
    proc_set=st.frozensets(node_ids, max_size=16),
    fail_set=st.frozensets(node_ids, max_size=16),
    ring_seq=st.integers(min_value=0, max_value=2**32 - 1))

member_infos = st.builds(MemberInfo, old_ring_id=ring_ids,
                         my_aru=seqs, high_seq=seqs)

commit_tokens = st.builds(
    CommitToken,
    ring_id=ring_ids,
    members=st.lists(node_ids, min_size=1, max_size=12,
                     unique=True).map(tuple),
    info=st.dictionaries(node_ids, member_infos, max_size=12),
    rotation=st.integers(min_value=0, max_value=3))

any_packet = st.one_of(data_packets, tokens, joins, commit_tokens)


@given(packet=any_packet)
def test_roundtrip_is_identity(packet):
    assert decode_packet(encode_packet(packet)) == packet


@given(packet=data_packets)
def test_data_wire_size_tracks_encoding(packet):
    """For data packets — the type that dominates bandwidth — the
    simulator's wire_size() accounting must stay within the 94-byte
    fixed-header budget of the real encoding."""
    encoded = len(encode_packet(packet))
    assert packet.wire_size() <= encoded + 94
    assert encoded <= packet.wire_size() + 94


@given(packet=any_packet)
def test_wire_size_sane_for_all_types(packet):
    """Control packets use deliberately conservative synthetic sizes; they
    must stay positive and the same order of magnitude as the encoding."""
    encoded = len(encode_packet(packet))
    assert packet.wire_size() >= 0  # an empty data packet occupies 0 payload
    assert packet.wire_size() <= 2 * encoded + 128


@given(data=st.binary(max_size=256))
def test_decode_garbage_raises_codec_error_only(data):
    try:
        decode_packet(data)
    except CodecError:
        pass  # the only acceptable failure mode
    # (Decoding random bytes may also accidentally succeed: a CRC collision
    # is possible in principle; any non-CodecError exception is a bug.)


@given(packet=any_packet,
       position=st.integers(min_value=0, max_value=10_000),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=200)
def test_single_byte_corruption_never_crashes(packet, position, flip):
    blob = bytearray(encode_packet(packet))
    blob[position % len(blob)] ^= flip
    try:
        decode_packet(bytes(blob))
    except TotemError:
        pass  # ChecksumError or CodecError are both fine


@given(packet=any_packet, cut=st.integers(min_value=0, max_value=10_000))
def test_truncation_never_crashes(packet, cut):
    blob = encode_packet(packet)
    try:
        decode_packet(blob[:cut % (len(blob) + 1)])
    except TotemError:
        pass
