"""Stage-level unit tests for the decomposed token pipeline.

``TotemSrp.on_token`` is a fixed pipeline of named stages (see its
docstring); these tests drive each stage in isolation with a fake
transport, plus the batch receive path (``on_batch`` and its posted
micro-events).  The integration suites cover the composed pipeline; here
each stage's contract is pinned down one rule at a time.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.config import TotemConfig
from repro.sim.runtime import SimRuntime
from repro.sim.scheduler import EventScheduler
from repro.srp.engine import SrpState, TotemSrp
from repro.types import DeliveryLog, ReplicationStyle, RingId
from repro.wire.packets import (
    BATCH_MAX_PACKETS,
    TOKEN_MAX_RTR,
    BatchPacket,
    Chunk,
    DataPacket,
    Token,
)


class FakeTransport:
    """Records everything the SRP sends, including batch frame trains."""

    def __init__(self) -> None:
        self.data: List[DataPacket] = []
        self.batches: List[BatchPacket] = []
        self.tokens: List[Tuple[Token, int]] = []
        self.joins: List[object] = []
        self.commits: List[Tuple[object, int]] = []

    def broadcast_data(self, packet):
        self.data.append(packet)

    def broadcast_batch(self, batch):
        self.batches.append(batch)

    def send_token(self, token, dest):
        self.tokens.append((token, dest))

    def broadcast_join(self, join):
        self.joins.append(join)

    def send_commit_token(self, commit, dest):
        self.commits.append((commit, dest))


def make_srp(node_id: int = 1, members=(1, 2, 3), **overrides):
    scheduler = EventScheduler()
    config = TotemConfig(replication=ReplicationStyle.NONE, num_networks=1,
                         **overrides)
    transport = FakeTransport()
    log = DeliveryLog()
    srp = TotemSrp(node_id, config, SimRuntime(scheduler), transport,
                   on_deliver=log.on_deliver,
                   on_config_change=log.on_config_change)
    srp.start(members)
    scheduler.run_until(0.0)
    return scheduler, srp, transport, log


def data_packet(seq: int, ring: RingId, sender: int = 2,
                payload: bytes = b"m") -> DataPacket:
    return DataPacket(sender=sender, ring_id=ring, seq=seq,
                      chunks=(Chunk.whole(seq, payload),))


def fresh_token(srp: TotemSrp, **fields) -> Token:
    fields.setdefault("ring_id", srp.ring_id)
    fields.setdefault("rotation", 5)
    return Token(**fields)


class TestStageTokenReceive:
    def test_foreign_ring_rejected(self):
        _, srp, _, _ = make_srp(node_id=2)
        foreign = Token(ring_id=RingId(seq=99, representative=9))
        assert srp.stage_token_receive(foreign) is None
        assert srp.stats.tokens_accepted == 0

    def test_wrong_state_rejected(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp.state = SrpState.GATHER
        assert srp.stage_token_receive(fresh_token(srp)) is None

    def test_duplicate_stamp_rejected_and_counted(self):
        _, srp, _, _ = make_srp(node_id=2)
        token = fresh_token(srp, seq=4)
        assert srp.stage_token_receive(token) is not None
        dupes = srp.stats.duplicate_tokens
        assert srp.stage_token_receive(token.copy()) is None
        assert srp.stats.duplicate_tokens == dupes + 1

    def test_accept_returns_private_copy(self):
        _, srp, _, _ = make_srp(node_id=2)
        token = fresh_token(srp, seq=7)
        working = srp.stage_token_receive(token)
        assert working is not None and working is not token
        working.seq = 8
        assert token.seq == 7

    def test_accept_cancels_retransmit_timer(self):
        # Node 1 (representative) sent the initial token, so its
        # retransmit timer is armed; accepting a returning token cancels it.
        _, srp, _, _ = make_srp(node_id=1)
        assert srp._token_retrans_timer is not None
        assert srp.stage_token_receive(fresh_token(srp)) is not None
        assert srp._token_retrans_timer is None

    def test_rotation_time_recorded_between_accepts(self):
        scheduler, srp, _, _ = make_srp(node_id=2)
        srp.stage_token_receive(fresh_token(srp, rotation=1))
        scheduler.run_until(0.25)
        srp.stage_token_receive(fresh_token(srp, rotation=2))
        assert srp.stats.rotation_count == 1
        assert srp.stats.rotation_time_max == pytest.approx(0.25)


class TestStageRetransmitServe:
    def test_empty_rtr_is_noop(self):
        _, srp, transport, _ = make_srp(node_id=2)
        token = fresh_token(srp)
        srp.stage_retransmit_serve(token)
        assert transport.data == []

    def test_serves_held_packet_and_removes_request(self):
        _, srp, transport, _ = make_srp(node_id=2)
        packet = data_packet(1, srp.ring_id, sender=3)
        srp.recv_buffer.insert(packet)
        token = fresh_token(srp, seq=1, rtr=[1])
        srp.stage_retransmit_serve(token)
        assert transport.data == [packet]
        assert token.rtr == []
        assert srp.stats.retransmissions_served == 1

    def test_unheld_request_stays_on_token(self):
        _, srp, transport, _ = make_srp(node_id=2)
        token = fresh_token(srp, seq=5, rtr=[4])
        srp.stage_retransmit_serve(token)
        assert token.rtr == [4]
        assert transport.data == []

    def test_stale_request_below_stable_dropped(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp._stable_seq = 10
        token = fresh_token(srp, seq=12, rtr=[3])
        srp.stage_retransmit_serve(token)
        assert token.rtr == []
        assert srp.stats.retransmissions_served == 0


class TestStageAruUpdate:
    def test_lower_aru_takes_over_consensus(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp.recv_buffer.insert(data_packet(1, srp.ring_id))
        token = fresh_token(srp, seq=5, aru=4, aru_id=3)
        srp.stage_aru_update(token)
        assert token.aru == 1
        assert token.aru_id == 2

    def test_own_aru_id_refreshes_value(self):
        _, srp, _, _ = make_srp(node_id=2)
        for seq in (1, 2, 3):
            srp.recv_buffer.insert(data_packet(seq, srp.ring_id))
        token = fresh_token(srp, seq=5, aru=1, aru_id=2)
        srp.stage_aru_update(token)
        assert token.aru == 3

    def test_aru_clamped_to_token_seq(self):
        _, srp, _, _ = make_srp(node_id=2)
        for seq in (1, 2, 3):
            srp.recv_buffer.insert(data_packet(seq, srp.ring_id))
        token = fresh_token(srp, seq=2, aru=1, aru_id=2)
        srp.stage_aru_update(token)
        assert token.aru == 2

    def test_higher_peer_aru_untouched(self):
        _, srp, _, _ = make_srp(node_id=2)
        for seq in (1, 2):
            srp.recv_buffer.insert(data_packet(seq, srp.ring_id))
        token = fresh_token(srp, seq=5, aru=1, aru_id=3)
        srp.stage_aru_update(token)
        assert token.aru == 1
        assert token.aru_id == 3


class TestStageRetransmitRequest:
    def test_no_gaps_is_noop(self):
        _, srp, _, _ = make_srp(node_id=2)
        token = fresh_token(srp, seq=0)
        srp.stage_retransmit_request(token)
        assert token.rtr == []

    def test_gaps_appended_without_duplicates(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp.recv_buffer.insert(data_packet(3, srp.ring_id))
        token = fresh_token(srp, seq=3, rtr=[2])
        srp.stage_retransmit_request(token)
        assert token.rtr == [2, 1]
        assert srp.stats.retransmission_requests == 1

    def test_rtr_capped(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp.recv_buffer.insert(data_packet(TOKEN_MAX_RTR + 10, srp.ring_id))
        token = fresh_token(srp, seq=TOKEN_MAX_RTR + 10)
        srp.stage_retransmit_request(token)
        assert len(token.rtr) == TOKEN_MAX_RTR


class TestStageDequeuePack:
    def test_unbatched_sends_plain_frames(self):
        _, srp, transport, _ = make_srp(node_id=2, enable_packing=False)
        for i in range(3):
            srp.submit(b"m%d" % i)
        token = fresh_token(srp, seq=0)
        srp.stage_dequeue_pack(token)
        assert len(transport.data) == 3
        assert transport.batches == []
        assert token.seq == 3

    def test_batched_sends_one_frame_train(self):
        _, srp, transport, _ = make_srp(node_id=2, enable_packing=False,
                                        enable_batching=True)
        for i in range(3):
            srp.submit(b"m%d" % i)
        token = fresh_token(srp, seq=0)
        srp.stage_dequeue_pack(token)
        assert transport.data == []
        assert len(transport.batches) == 1
        train = transport.batches[0]
        assert [p.seq for p in train.packets] == [1, 2, 3]
        assert token.seq == 3
        # Every packet was self-inserted before broadcast.
        assert srp.recv_buffer.has(1) and srp.recv_buffer.has(3)

    def test_batched_single_packet_falls_back_to_plain_frame(self):
        _, srp, transport, _ = make_srp(node_id=2, enable_packing=False,
                                        enable_batching=True)
        srp.submit(b"only")
        srp.stage_dequeue_pack(fresh_token(srp, seq=0))
        assert len(transport.data) == 1
        assert transport.batches == []

    def test_batched_respects_flow_allowance(self):
        _, srp, transport, _ = make_srp(
            node_id=2, enable_packing=False, enable_batching=True,
            max_messages_per_token=2)
        for i in range(5):
            srp.submit(b"m%d" % i)
        srp.stage_dequeue_pack(fresh_token(srp, seq=0))
        assert len(transport.batches) == 1
        assert len(transport.batches[0].packets) == 2

    def test_batch_train_capped_at_max_packets(self):
        _, srp, transport, _ = make_srp(
            node_id=2, enable_packing=False, enable_batching=True,
            window_size=1024, max_messages_per_token=1024,
            send_queue_capacity=2 * BATCH_MAX_PACKETS)
        for i in range(BATCH_MAX_PACKETS + 5):
            srp.submit(b"m%d" % i)
        srp.stage_dequeue_pack(fresh_token(srp, seq=0))
        assert transport.batches
        assert all(len(t.packets) <= BATCH_MAX_PACKETS
                   for t in transport.batches)

    def test_empty_queue_sends_nothing(self):
        _, srp, transport, _ = make_srp(node_id=2, enable_batching=True)
        srp.stage_dequeue_pack(fresh_token(srp, seq=0))
        assert transport.data == [] and transport.batches == []

    def test_own_broadcast_is_self_delivered(self):
        _, srp, _, log = make_srp(node_id=2, enable_packing=False,
                                  enable_batching=True)
        srp.submit(b"a")
        srp.submit(b"b")
        token = fresh_token(srp, seq=0, aru=0, aru_id=2)
        srp.stage_dequeue_pack(token)
        assert [m.payload for m in log.messages] == [b"a", b"b"]


class TestStageStabilityUpdate:
    def test_stable_advances_on_two_rotation_minimum(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp._prev_token_aru = 3
        srp.stage_stability_update(fresh_token(srp, seq=5, aru=4))
        assert srp.stable_seq == 3
        assert srp._prev_token_aru == 4

    def test_stable_never_regresses(self):
        _, srp, _, _ = make_srp(node_id=2)
        srp._stable_seq = 7
        srp._prev_token_aru = 2
        srp.stage_stability_update(fresh_token(srp, seq=5, aru=2))
        assert srp.stable_seq == 7

    def test_collects_only_delivered_and_stable(self):
        _, srp, _, log = make_srp(node_id=2)
        for seq in (1, 2):
            srp.recv_buffer.insert(data_packet(seq, srp.ring_id))
        srp.stage_deliver()
        assert len(log.messages) == 2
        srp._prev_token_aru = 2
        srp.stage_stability_update(fresh_token(srp, seq=2, aru=2))
        assert srp.stable_seq == 2
        assert srp.recv_buffer.gc_floor == 2


class TestStageTokenForward:
    def test_sends_to_successor_and_arms_timers(self):
        _, srp, transport, _ = make_srp(node_id=2, members=(1, 2, 3))
        token = fresh_token(srp, seq=9)
        srp.stage_token_forward(token)
        sent, dest = transport.tokens[-1]
        assert sent is token and dest == 3
        assert srp._last_token is token
        assert srp._token_retrans_timer is not None
        assert srp._token_loss_timer is not None

    def test_last_member_wraps_to_first(self):
        _, srp, transport, _ = make_srp(node_id=3, members=(1, 2, 3))
        srp.stage_token_forward(fresh_token(srp))
        assert transport.tokens[-1][1] == 1


class TestStageDeliver:
    def test_delivers_contiguous_prefix_only(self):
        _, srp, _, log = make_srp(node_id=2)
        srp.recv_buffer.insert(data_packet(1, srp.ring_id, payload=b"one"))
        srp.recv_buffer.insert(data_packet(3, srp.ring_id, payload=b"three"))
        srp.stage_deliver()
        assert [m.payload for m in log.messages] == [b"one"]
        srp.recv_buffer.insert(data_packet(2, srp.ring_id, payload=b"two"))
        srp.stage_deliver()
        assert [m.payload for m in log.messages] == [b"one", b"two", b"three"]


class TestOnBatch:
    def make_batch(self, srp, seqs, sender=3):
        return BatchPacket(packets=tuple(
            data_packet(seq, srp.ring_id, sender=sender, payload=b"p%d" % seq)
            for seq in seqs))

    def test_applies_are_posted_not_inline(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        srp.on_batch(self.make_batch(srp, (1, 2)))
        assert log.messages == []  # nothing applied inside on_batch itself
        scheduler.run_until(scheduler.now())
        assert [m.payload for m in log.messages] == [b"p1", b"p2"]
        assert srp.recv_buffer.my_aru == 2

    def test_matches_per_packet_on_data(self):
        scheduler_a, srp_a, _, log_a = make_srp(node_id=2)
        scheduler_b, srp_b, _, log_b = make_srp(node_id=2)
        srp_a.on_batch(self.make_batch(srp_a, (1, 2, 3)))
        scheduler_a.run_until(scheduler_a.now())
        for seq in (1, 2, 3):
            srp_b.on_data(data_packet(seq, srp_b.ring_id, sender=3,
                                      payload=b"p%d" % seq))
        assert [(m.sender, m.seq, m.payload) for m in log_a.messages] \
            == [(m.sender, m.seq, m.payload) for m in log_b.messages]

    def test_redundant_copy_in_same_window_posts_once(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        batch = self.make_batch(srp, (1, 2))
        srp.on_batch(batch, network=0)
        # The redundant network's copy lands before the posted applies run.
        assert srp.is_duplicate_batch(batch)
        srp.on_batch(batch, network=1)
        scheduler.run_until(scheduler.now())
        assert len(log.messages) == 2
        assert srp.stats.duplicate_packets == 0

    def test_second_delivery_of_applied_batch_is_duplicate(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        batch = self.make_batch(srp, (1, 2))
        srp.on_batch(batch)
        scheduler.run_until(scheduler.now())
        srp.on_batch(batch)
        scheduler.run_until(scheduler.now())
        assert len(log.messages) == 2
        assert srp.stats.duplicate_packets == 2

    def test_is_duplicate_batch_partial_train_is_fresh(self):
        scheduler, srp, _, _ = make_srp(node_id=2)
        srp.on_batch(self.make_batch(srp, (1, 2)))
        scheduler.run_until(scheduler.now())
        assert not srp.is_duplicate_batch(self.make_batch(srp, (2, 3)))

    def test_is_duplicate_batch_foreign_ring_is_fresh(self):
        _, srp, _, _ = make_srp(node_id=2)
        foreign = BatchPacket(packets=(
            data_packet(1, RingId(seq=42, representative=9), sender=9),))
        assert not srp.is_duplicate_batch(foreign)

    def test_stopped_engine_ignores_posted_applies(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        srp.on_batch(self.make_batch(srp, (1, 2)))
        srp.stop()
        scheduler.run_until(scheduler.now())
        assert log.messages == []
        assert not srp.recv_buffer.has(1)

    def test_batch_seq_above_last_token_cancels_retrans_timer(self):
        # Seeing newer-than-token traffic is evidence the successor got the
        # token (paper §2) — the batch path must preserve that rule.
        scheduler, srp, _, _ = make_srp(node_id=1)
        assert srp._token_retrans_timer is not None
        assert srp._last_token.seq == 0
        srp.on_batch(self.make_batch(srp, (1,)))
        scheduler.run_until(scheduler.now())
        assert srp._token_retrans_timer is None


class TestSubmitMany:
    def test_accepts_all_when_room(self):
        _, srp, _, _ = make_srp(node_id=2)
        assert srp.submit_many([b"a", b"b", b"c"]) == 3
        assert len(srp.send_queue) == 3

    def test_partial_when_queue_fills(self):
        _, srp, _, _ = make_srp(node_id=2, send_queue_capacity=2)
        assert srp.submit_many([b"a", b"b", b"c", b"d"]) == 2
        assert len(srp.send_queue) == 2

    def test_empty_sequence(self):
        _, srp, _, _ = make_srp(node_id=2)
        assert srp.submit_many([]) == 0
