"""Unit tests for the node CPU model and the network stack."""

from __future__ import annotations

import random

import pytest

from repro.config import LanConfig
from repro.errors import TransportError
from repro.net.simlan import SimLan
from repro.net.stack import NetworkStack, NodeCpu
from repro.sim.scheduler import EventScheduler
from repro.types import RingId
from repro.wire.packets import Chunk, DataPacket

RING = RingId(4, 1)


def packet(seq: int = 1) -> DataPacket:
    return DataPacket(sender=1, ring_id=RING, seq=seq,
                      chunks=(Chunk.whole(1, b"x" * 64),))


class TestNodeCpu:
    def test_serialises_jobs(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        done = []
        cpu.submit(0.010, lambda: done.append(("a", scheduler.now())))
        cpu.submit(0.005, lambda: done.append(("b", scheduler.now())))
        scheduler.run()
        assert done[0] == ("a", pytest.approx(0.010))
        assert done[1] == ("b", pytest.approx(0.015))

    def test_fifo_even_with_zero_cost(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        order = []
        for label in "abc":
            cpu.submit(0.0, order.append, label)
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_callable_cost_evaluated_at_start(self):
        """The cost of a queued job may depend on the effects of earlier
        jobs (this is how duplicate receives get the cheap rate)."""
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        state = {"seen": False}
        costs = []

        def first():
            state["seen"] = True

        def dynamic_cost():
            cost = 0.001 if state["seen"] else 0.100
            costs.append(cost)
            return cost
        cpu.submit(0.010, first)
        cpu.submit(dynamic_cost, lambda: None)
        scheduler.run()
        assert costs == [0.001]

    def test_negative_cost_rejected(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        # The queue is idle, so the job starts (and validates) synchronously.
        with pytest.raises(TransportError):
            cpu.submit(-1.0, lambda: None)

    def test_busy_time_accumulates(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        cpu.submit(0.010, lambda: None)
        cpu.submit(0.020, lambda: None)
        scheduler.run()
        assert cpu.stats.busy_time == pytest.approx(0.030)
        assert cpu.stats.operations == 2

    def test_jobs_submitted_from_jobs_run_after(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        order = []

        def outer():
            order.append("outer")
            cpu.submit(0.001, order.append, "inner")
        cpu.submit(0.001, outer)
        cpu.submit(0.001, order.append, "next")
        scheduler.run()
        assert order == ["outer", "next", "inner"]

    def test_idle_gap_then_new_work(self):
        scheduler = EventScheduler()
        cpu = NodeCpu(scheduler)
        done = []
        cpu.submit(0.001, lambda: done.append(scheduler.now()))
        scheduler.run()
        # The clock is at 0.001 after the first job; the new work arrives
        # 1.0s later and costs 0.002.
        scheduler.call_after(1.0, lambda: cpu.submit(
            0.002, lambda: done.append(scheduler.now())))
        scheduler.run()
        assert done[1] == pytest.approx(1.003)


class TestNetworkStack:
    def _build(self):
        scheduler = EventScheduler()
        lan_config = LanConfig()
        lan = SimLan(scheduler, lan_config, random.Random(1))
        cpu = NodeCpu(scheduler)
        stack = NetworkStack(1, cpu, lan_config)
        stack.add_port(lan.attach(1, stack.make_deliver_fn(0)))
        return scheduler, lan, cpu, stack

    def test_broadcast_goes_through_cpu_then_wire(self):
        scheduler, lan, cpu, stack = self._build()
        got = []
        lan.attach(2, lambda src, p: got.append(p))
        stack.broadcast(0, packet())
        scheduler.run()
        assert len(got) == 1
        assert cpu.stats.operations == 1

    def test_unicast(self):
        scheduler, lan, cpu, stack = self._build()
        got2, got3 = [], []
        lan.attach(2, lambda src, p: got2.append(p))
        lan.attach(3, lambda src, p: got3.append(p))
        stack.unicast(0, 2, packet())
        scheduler.run()
        assert len(got2) == 1 and got3 == []

    def test_bad_network_index(self):
        _, _, _, stack = self._build()
        with pytest.raises(TransportError):
            stack.broadcast(5, packet())

    def test_receive_dispatches_with_network_index(self):
        scheduler, lan, cpu, stack = self._build()
        received = []
        stack.set_receive_handler(lambda p, net: received.append((p.seq, net)))
        lan.attach(2, lambda src, p: None)
        lan.transmit(2, packet(9))
        scheduler.run()
        assert received == [(9, 0)]

    def test_receive_without_handler_counts_undelivered(self):
        scheduler, lan, _, stack = self._build()
        lan.attach(2, lambda src, p: None)
        lan.transmit(2, packet())
        scheduler.run()
        assert stack.undelivered == 1

    def test_recv_cost_fn_applied(self):
        scheduler, lan, cpu, stack = self._build()
        stack.set_receive_handler(lambda p, net: None)
        stack.set_recv_cost_fn(lambda p: 0.5)
        lan.attach(2, lambda src, p: None)
        lan.transmit(2, packet())
        scheduler.run()
        assert cpu.stats.busy_time == pytest.approx(0.5)

    def test_send_cost_includes_per_byte_term(self):
        scheduler = EventScheduler()
        lan_config = LanConfig(cpu_per_send=1e-6, cpu_per_byte_send=1e-6)
        lan = SimLan(scheduler, lan_config, random.Random(1))
        cpu = NodeCpu(scheduler)
        stack = NetworkStack(1, cpu, lan_config)
        stack.add_port(lan.attach(1, stack.make_deliver_fn(0)))
        pkt = packet()
        stack.broadcast(0, pkt)
        scheduler.run()
        assert cpu.stats.busy_time == pytest.approx(
            1e-6 + 1e-6 * pkt.wire_size())

    def test_num_networks(self):
        _, _, _, stack = self._build()
        assert stack.num_networks == 1
