"""Unit tests for the protocol flight recorder."""

from __future__ import annotations

import pytest

from repro.trace import TraceEvent, Tracer


class TestTracer:
    def test_emit_records_time_and_fields(self):
        clock = [1.5]
        tracer = Tracer(lambda: clock[0])
        tracer.emit(1, "membership", "gather", "token loss")
        clock[0] = 2.0
        tracer.emit(2, "fault", "marked")
        events = tracer.events()
        assert events[0] == TraceEvent(1.5, 1, "membership", "gather",
                                       "token loss")
        assert events[1].time == 2.0
        assert len(tracer) == 2

    def test_filters(self):
        tracer = Tracer(lambda: 0.0)
        tracer.emit(1, "a", "x")
        tracer.emit(2, "a", "y")
        tracer.emit(1, "b", "x")
        assert len(tracer.events(category="a")) == 2
        assert len(tracer.events(node=1)) == 2
        assert len(tracer.events(event="x")) == 2
        assert len(tracer.events(category="a", node=1)) == 1

    def test_bounded_capacity(self):
        tracer = Tracer(lambda: 0.0, capacity=10)
        for i in range(25):
            tracer.emit(1, "c", f"e{i}")
        assert len(tracer) == 10
        assert tracer.dropped == 15
        assert tracer.events()[0].event == "e15"

    def test_accounting_invariant(self):
        """emitted == buffered + dropped, across eviction and disabling."""
        tracer = Tracer(lambda: 0.0, capacity=4)
        for i in range(3):
            tracer.emit(1, "c", f"e{i}")
        assert (tracer.emitted, tracer.dropped, len(tracer)) == (3, 0, 3)
        for i in range(7):  # overflow: 6 evictions
            tracer.emit(1, "c", f"f{i}")
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert tracer.emitted == len(tracer) + tracer.dropped
        tracer.enabled = False
        tracer.emit(1, "c", "ignored")
        tracer.enabled = True
        tracer.emit(1, "c", "counted")
        assert tracer.suppressed == 1
        assert tracer.emitted == 11
        assert tracer.emitted == len(tracer) + tracer.dropped

    def test_capacity_one_and_validation(self):
        tracer = Tracer(lambda: 0.0, capacity=1)
        assert tracer.capacity == 1
        tracer.emit(1, "c", "a")
        tracer.emit(1, "c", "b")
        assert [e.event for e in tracer.events()] == ["b"]
        assert tracer.dropped == 1
        assert tracer.emitted == 2
        with pytest.raises(ValueError):
            Tracer(lambda: 0.0, capacity=0)

    def test_clear_counts_as_dropped(self):
        tracer = Tracer(lambda: 0.0, capacity=10)
        for i in range(5):
            tracer.emit(1, "c", f"e{i}")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 5
        assert tracer.emitted == len(tracer) + tracer.dropped

    def test_disabled(self):
        tracer = Tracer(lambda: 0.0)
        tracer.enabled = False
        tracer.emit(1, "c", "e")
        assert len(tracer) == 0
        assert tracer.suppressed == 1
        assert tracer.emitted == 0

    def test_bind(self):
        tracer = Tracer(lambda: 0.0)
        emit = tracer.bind(7, "membership")
        emit("gather", "why")
        assert tracer.events()[0].node == 7
        assert tracer.events()[0].category == "membership"

    def test_format(self):
        tracer = Tracer(lambda: 0.25)
        assert tracer.format() == "(no events)"
        tracer.emit(3, "membership", "ring-installed", "ring 8")
        text = tracer.format()
        assert "node 3" in text
        assert "ring-installed" in text
        assert "t=0.25" in text


class TestClusterTracing:
    def test_membership_milestones_recorded(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import make_cluster
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.05)
        installs = cluster.tracer.events(event="ring-installed")
        assert len(installs) == 4  # one per node at boot
        cluster.crash_node(2)
        cluster.run_for(1.0)
        assert cluster.tracer.events(event="token-loss")
        assert cluster.tracer.events(event="gather")
        assert cluster.tracer.events(event="form-ring")
        final_installs = cluster.tracer.events(event="ring-installed")
        assert any("members [1, 3, 4]" in e.detail for e in final_installs)

    def test_restart_traced(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import make_cluster
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.start()
        cluster.run_for(0.02)
        cluster.crash_node(4)
        cluster.run_for(0.5)
        cluster.restart_node(4)
        cluster.run_for(0.5)
        assert cluster.tracer.events(event="restart", node=4)
