"""Unit tests for campaign batch generation (repro.campaign.generate)."""

from repro.campaign.generate import BATCH_STYLES, random_scenario
from repro.campaign.scenario import STYLE_NETWORKS, Scenario
from repro.types import ReplicationStyle


class TestRandomScenario:
    def test_deterministic_per_seed(self):
        assert random_scenario(7) == random_scenario(7)
        assert random_scenario(7).to_json() == random_scenario(7).to_json()

    def test_different_seeds_differ(self):
        assert random_scenario(1) != random_scenario(2)

    def test_style_cycles_with_seed(self):
        styles = {random_scenario(s).style for s in range(len(BATCH_STYLES))}
        assert styles == set(BATCH_STYLES)

    def test_explicit_style_respected(self):
        sc = random_scenario(3, style=ReplicationStyle.ACTIVE_PASSIVE)
        assert sc.style is ReplicationStyle.ACTIVE_PASSIVE
        assert sc.num_networks == STYLE_NETWORKS[ReplicationStyle.ACTIVE_PASSIVE]

    def test_batch_members_are_valid_scenarios(self):
        # Scenario.__post_init__ validates the whole timeline; a generator
        # bug (out-of-range node, orphaned restart, event past duration)
        # would raise here.
        for seed in range(40):
            sc = random_scenario(seed)
            assert isinstance(sc, Scenario)
            assert sc.workload_events, "every scenario needs a workload"
            # Every draw schedules a final cleanup so the settle phase
            # measures convergence, not a still-degraded system.
            heals = [e for e in sc.events if e.kind == "heal_all"]
            assert heals and heals[-1].at == round(sc.duration * 0.85, 4)

    def test_round_trips_through_case_file_format(self):
        for seed in (0, 5, 11):
            sc = random_scenario(seed)
            assert Scenario.from_json(sc.to_json()) == sc

    def test_within_budget_draws_protect_one_network(self):
        # The no-churn regime must stay maskable so the transparency
        # oracle arms; verify both regimes occur over a modest seed range.
        budgets = {random_scenario(s).within_redundancy_budget()
                   for s in range(30)}
        assert budgets == {True, False}

    def test_churn_scenarios_settle_longer(self):
        for seed in range(30):
            sc = random_scenario(seed)
            has_churn = any(e.kind in ("crash", "restart", "partition_all")
                            for e in sc.events)
            if has_churn:
                assert sc.settle >= 1.0
