"""Unit tests for the receive buffer and the flow controller."""

from __future__ import annotations

import pytest

from repro.srp.flow import FlowController
from repro.srp.ordering import ReceiveBuffer
from repro.types import RingId
from repro.wire.packets import DataPacket, Token

RING = RingId(seq=4, representative=1)


def packet(seq: int) -> DataPacket:
    return DataPacket(sender=1, ring_id=RING, seq=seq, chunks=())


class TestReceiveBuffer:
    def test_contiguous_inserts_advance_aru(self):
        buffer = ReceiveBuffer()
        for seq in (1, 2, 3):
            assert buffer.insert(packet(seq))
        assert buffer.my_aru == 3
        assert buffer.high_seq == 3

    def test_gap_freezes_aru(self):
        buffer = ReceiveBuffer()
        buffer.insert(packet(1))
        buffer.insert(packet(3))
        assert buffer.my_aru == 1
        assert buffer.high_seq == 3
        assert list(buffer.missing_up_to(3)) == [2]
        assert buffer.has_gaps_up_to(3)
        assert not buffer.has_gaps_up_to(1)

    def test_gap_fill_jumps_aru(self):
        buffer = ReceiveBuffer()
        for seq in (1, 3, 4, 5):
            buffer.insert(packet(seq))
        buffer.insert(packet(2))
        assert buffer.my_aru == 5

    def test_duplicate_rejected(self):
        buffer = ReceiveBuffer()
        assert buffer.insert(packet(1))
        assert not buffer.insert(packet(1))

    def test_has_gaps_relative_to_token_seq(self):
        """The passive algorithm's anyMessagesMissing() semantics: gaps are
        judged against the token's seq, not only received data."""
        buffer = ReceiveBuffer()
        buffer.insert(packet(1))
        assert buffer.has_gaps_up_to(2)  # token says 2 exists; we lack it

    def test_gc_below(self):
        buffer = ReceiveBuffer()
        for seq in range(1, 6):
            buffer.insert(packet(seq))
        assert buffer.gc_below(3) == 3
        assert buffer.get(2) is None
        assert buffer.get(4) is not None
        assert buffer.my_aru == 5
        assert buffer.has(2)  # remembered as received though collected

    def test_gc_is_capped_at_aru(self):
        buffer = ReceiveBuffer()
        buffer.insert(packet(1))
        buffer.insert(packet(3))
        assert buffer.gc_below(3) == 1  # only seq 1 (aru) may go
        assert buffer.get(3) is not None

    def test_gc_idempotent(self):
        buffer = ReceiveBuffer()
        buffer.insert(packet(1))
        buffer.gc_below(1)
        assert buffer.gc_below(1) == 0

    def test_insert_below_gc_floor_is_duplicate(self):
        buffer = ReceiveBuffer()
        for seq in (1, 2, 3):
            buffer.insert(packet(seq))
        buffer.gc_below(2)
        assert not buffer.insert(packet(1))

    def test_len_counts_retained(self):
        buffer = ReceiveBuffer()
        for seq in (1, 2, 3):
            buffer.insert(packet(seq))
        buffer.gc_below(1)
        assert len(buffer) == 2


class TestFlowController:
    def _token(self, fcc=0, backlog=0) -> Token:
        return Token(ring_id=RING, fcc=fcc, backlog=backlog)

    def test_allowance_capped_by_per_visit_limit(self):
        flow = FlowController(window_size=100, max_messages_per_token=10)
        assert flow.allowance(self._token(fcc=0)) == 10

    def test_allowance_respects_window(self):
        flow = FlowController(window_size=20, max_messages_per_token=30)
        token = self._token(fcc=15)  # others already used 15 of 20
        assert flow.allowance(token) == 5

    def test_own_previous_contribution_not_double_counted(self):
        flow = FlowController(window_size=20, max_messages_per_token=30)
        token = self._token(fcc=0)
        flow.update(token, sent=8, backlog=0)
        assert token.fcc == 8
        # Next rotation: fcc still contains our 8; they do not reduce us.
        assert flow.allowance(token) == 20

    def test_window_fully_used_blocks_sending(self):
        flow = FlowController(window_size=10, max_messages_per_token=10)
        token = self._token(fcc=10)
        assert flow.allowance(token) == 0

    def test_update_folds_backlog(self):
        flow = FlowController(window_size=10, max_messages_per_token=10)
        token = self._token()
        flow.update(token, sent=2, backlog=7)
        assert token.backlog == 7
        flow.update(token, sent=1, backlog=3)
        assert token.backlog == 3

    def test_reset(self):
        flow = FlowController(window_size=10, max_messages_per_token=10)
        token = self._token()
        flow.update(token, sent=5, backlog=5)
        flow.reset()
        fresh = self._token(fcc=5)
        # After reset our old contribution is forgotten: others' 5 count.
        assert flow.allowance(fresh) == 5

    def test_fcc_never_negative(self):
        flow = FlowController(window_size=10, max_messages_per_token=10)
        token = self._token(fcc=0)
        flow.update(token, sent=4, backlog=0)
        token.fcc = 0  # token reset by a new ring elsewhere
        flow.update(token, sent=0, backlog=0)
        assert token.fcc >= 0
