"""Unit tests for the campaign CLI (repro.campaign.cli).

Exit-code contract: 0 = all scenarios conformant, 1 = violations found,
2 = usage / bad input.  Scenario execution is monkeypatched so these
tests pin the CLI surface, not the simulator.
"""

import json

import pytest

from repro.campaign import cli
from repro.campaign.runner import CampaignResult
from repro.campaign.scenario import Scenario, TimelineEvent, save_scenario


def fake_result(scenario, violations=()):
    from repro.campaign.oracles import OracleViolation
    vs = [OracleViolation("agreement", v) for v in violations]
    result = CampaignResult(
        scenario=scenario, violations=vs, submitted=10, accepted=10,
        delivered_total=40, delivered_uids={}, within_budget=True,
        twin_checked=True)
    result.replay_text = (f"campaign scenario {scenario.name!r}\n"
                          f"  verdict: {'PASS' if result.ok else 'FAIL'}\n")
    return result


@pytest.fixture
def case_file(tmp_path):
    sc = Scenario(name="unit-case", duration=0.5, events=(
        TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2}),))
    path = tmp_path / "case.json"
    save_scenario(sc, str(path))
    return str(path)


class TestRunCommand:
    def test_passing_case_exits_zero(self, case_file, monkeypatch, capsys):
        monkeypatch.setattr(cli, "run_scenario", fake_result)
        assert cli.main(["run", case_file]) == 0
        assert "PASS: all scenarios conformant" in capsys.readouterr().out

    def test_failing_case_exits_one(self, case_file, monkeypatch, capsys):
        monkeypatch.setattr(
            cli, "run_scenario",
            lambda sc: fake_result(sc, violations=("nodes diverged",)))
        assert cli.main(["run", case_file]) == 1
        out = capsys.readouterr().out
        assert "FAIL: 1/1 scenario(s)" in out

    def test_no_input_exits_two(self, capsys):
        assert cli.main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_missing_file_exits_two(self, capsys):
        assert cli.main(["run", "/nonexistent/case.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_case_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "name": "x", "turbo": true}')
        assert cli.main(["run", str(path)]) == 2
        assert "unknown scenario field" in capsys.readouterr().err

    def test_batch_runs_generated_scenarios(self, monkeypatch, capsys):
        seen = []

        def record(sc):
            seen.append(sc)
            return fake_result(sc)

        monkeypatch.setattr(cli, "run_scenario", record)
        assert cli.main(["run", "--batch", "3", "--seed", "5"]) == 0
        assert len(seen) == 3
        assert seen[0].seed == 5 and seen[2].seed == 7

    def test_quick_implies_one_batch_member(self, monkeypatch):
        seen = []
        monkeypatch.setattr(cli, "run_scenario",
                            lambda sc: (seen.append(sc), fake_result(sc))[1])
        assert cli.main(["run", "--quick", "--quiet"]) == 0
        assert len(seen) == 1

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "--batch", "0"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "--batch", "-3"])
        assert exc.value.code == 2

    def test_bad_style_rejected(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "--batch", "1", "--style", "quantum"])
        assert exc.value.code == 2

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["explode"])
        assert exc.value.code == 2

    def test_minimize_on_failure_writes_case(self, case_file, tmp_path,
                                             monkeypatch, capsys):
        from repro.campaign.minimize import MinimizeResult
        from repro.campaign.scenario import load_scenario
        failing = lambda sc, **kw: fake_result(sc, violations=("diverged",))
        monkeypatch.setattr(cli, "run_scenario", failing)

        def fake_minimize(scenario):
            minimized = scenario.with_events(
                scenario.fault_events[:1], name=f"{scenario.name}::min")
            return MinimizeResult(scenario=minimized, original_events=1,
                                  minimized_events=1, runs=3)

        monkeypatch.setattr(cli, "minimize_scenario", fake_minimize)
        monkeypatch.setattr(cli, "_write_forensics",
                            lambda sc, out: str(tmp_path / "x.obs.json"))
        out_dir = tmp_path / "cases"
        assert cli.main(["run", case_file, "--minimize-on-failure",
                         "--out-dir", str(out_dir)]) == 1
        written = load_scenario(str(out_dir / "unit-case__min.min.json"))
        assert written.name == "unit-case::min"


class TestReplayCommand:
    def test_replay_prints_replay_text(self, case_file, monkeypatch, capsys):
        monkeypatch.setattr(cli, "run_scenario", fake_result)
        assert cli.main(["replay", case_file]) == 0
        out = capsys.readouterr().out
        assert "campaign scenario 'unit-case'" in out
        assert out.endswith("verdict: PASS\n")

    def test_replay_failing_exits_one(self, case_file, monkeypatch):
        monkeypatch.setattr(
            cli, "run_scenario",
            lambda sc: fake_result(sc, violations=("boom",)))
        assert cli.main(["replay", case_file]) == 1

    def test_replay_requires_file(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["replay"])
        assert exc.value.code == 2


class TestMinimizeCommand:
    def test_minimize_passing_scenario_exits_two(self, case_file,
                                                 monkeypatch, capsys):
        def refuse(scenario):
            raise ValueError("scenario does not fail; nothing to minimize")

        monkeypatch.setattr(cli, "minimize_scenario", refuse)
        assert cli.main(["minimize", case_file]) == 2
        assert "does not fail" in capsys.readouterr().err
