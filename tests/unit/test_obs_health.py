"""Unit tests for the ring-health hysteresis model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs.health import (
    DEGRADED,
    FAILED,
    HEALTHY,
    HealthInput,
    RingHealthModel,
)

CLEAN = HealthInput()
DEAD = HealthInput(fault_fraction=1.0)


class TestHealthInput:
    def test_clean_window_targets_one(self):
        assert CLEAN.target() == 1.0

    def test_full_fault_targets_zero(self):
        assert DEAD.target() == 0.0

    def test_terms_clamped(self):
        wild = HealthInput(problem_pressure=50.0, skew_pressure=-3.0,
                           loss_fraction=2.0, fault_fraction=0.0)
        assert 0.0 <= wild.target() <= 1.0

    def test_partial_loss_is_graded(self):
        mild = HealthInput(loss_fraction=0.1)
        assert 0.0 < mild.target() < 1.0


class TestValidation:
    def test_needs_a_network(self):
        with pytest.raises(ConfigError):
            RingHealthModel(0)

    def test_gain_bounds(self):
        with pytest.raises(ConfigError):
            RingHealthModel(1, gain_down=0.0)
        with pytest.raises(ConfigError):
            RingHealthModel(1, gain_up=1.5)

    def test_threshold_ordering(self):
        with pytest.raises(ConfigError):
            RingHealthModel(1, failed_below=0.5, recovered_above=0.4)

    def test_update_arity_checked(self):
        model = RingHealthModel(2)
        with pytest.raises(ConfigError):
            model.update(0.0, [CLEAN])


class TestHysteresis:
    def test_total_failure_fails_within_a_few_samples(self):
        model = RingHealthModel(1)
        for step in range(6):
            model.update(step * 0.01, [DEAD])
        assert model.state(0) == FAILED
        assert model.score(0) < 0.25

    def test_recovery_is_slow_and_staged(self):
        model = RingHealthModel(1)
        for step in range(6):
            model.update(step * 0.01, [DEAD])
        assert model.state(0) == FAILED
        # One clean window must not flip the state back.
        model.update(0.06, [CLEAN])
        assert model.state(0) == FAILED
        # Sustained clean windows recover through DEGRADED to HEALTHY.
        states = set()
        for step in range(80):
            model.update(0.07 + step * 0.01, [CLEAN])
            states.add(model.state(0))
        assert model.state(0) == HEALTHY
        assert DEGRADED in states  # passed through the intermediate stage

    def test_single_lossy_window_barely_moves_the_score(self):
        model = RingHealthModel(1)
        model.update(0.0, [HealthInput(loss_fraction=0.3)])
        assert model.score(0) > 0.6
        assert model.state(0) == HEALTHY

    def test_transitions_recorded_in_order(self):
        model = RingHealthModel(1)
        for step in range(200):
            window = DEAD if step < 10 else CLEAN
            model.update(step * 0.01, [window])
        kinds = [(t.old_state, t.new_state) for t in model.transitions]
        assert kinds == [(HEALTHY, DEGRADED), (DEGRADED, FAILED),
                         (FAILED, DEGRADED), (DEGRADED, HEALTHY)]
        times = [t.time for t in model.transitions]
        assert times == sorted(times)

    def test_networks_independent(self):
        model = RingHealthModel(2)
        for step in range(6):
            model.update(step * 0.01, [DEAD, CLEAN])
        assert model.state(0) == FAILED
        assert model.state(1) == HEALTHY
        assert model.scores()[1] == 1.0
