"""Unit tests for attachment generations and rotation-time statistics."""

from __future__ import annotations

import random

import pytest

from repro.config import LanConfig
from repro.net.simlan import SimLan
from repro.sim.scheduler import EventScheduler
from repro.types import RingId
from repro.wire.packets import Chunk, DataPacket


def packet(seq=1):
    return DataPacket(sender=1, ring_id=RingId(4, 1), seq=seq,
                      chunks=(Chunk.whole(1, b"x"),))


class TestAttachmentGenerations:
    def _lan(self):
        scheduler = EventScheduler()
        return scheduler, SimLan(scheduler, LanConfig(), random.Random(1))

    def test_stale_port_transmits_nothing(self):
        scheduler, lan = self._lan()
        got = []
        old_port = lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        lan.detach(1)
        fresh_port = lan.attach(1, lambda src, p: None)
        old_port.broadcast(packet())
        scheduler.run()
        assert got == []
        assert lan.stats.frames_blocked == 1
        fresh_port.broadcast(packet(2))
        scheduler.run()
        assert len(got) == 1

    def test_direct_transmit_without_generation_still_works(self):
        scheduler, lan = self._lan()
        got = []
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        lan.transmit(1, packet())
        scheduler.run()
        assert len(got) == 1

    def test_generation_counts_per_node(self):
        scheduler, lan = self._lan()
        port1 = lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: None)
        lan.detach(1)
        port1b = lan.attach(1, lambda src, p: None)
        # Node 2's original port is unaffected by node 1's churn.
        got = []
        lan.attach(3, lambda src, p: got.append(p))
        port1b.broadcast(packet())
        scheduler.run()
        assert len(got) == 1


class TestRotationStats:
    def test_rotation_time_accumulates(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import make_cluster
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.NONE)
        cluster.start()
        cluster.run_for(0.1)
        stats = cluster.nodes[2].srp.stats
        assert stats.rotation_count > 50
        assert 0 < stats.rotation_time_mean < 0.002
        assert stats.rotation_time_max >= stats.rotation_time_mean

    def test_no_rotations_no_mean(self):
        from repro.srp.engine import SrpStats
        assert SrpStats().rotation_time_mean == 0.0
