"""Unit tests for the three replication engines, driven with fakes.

These tests exercise the Figure 2 / Figure 4 / §7 algorithms directly:
which networks carry each send, when tokens are merged/buffered/delivered,
and how the token timers and monitors react — with a scripted SRP above and
a recording stack below.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.config import LanConfig, TotemConfig
from repro.core.active import ActiveReplication
from repro.core.active_passive import ActivePassiveReplication
from repro.core.base import SingleNetwork
from repro.core.factory import make_replication_engine
from repro.core.passive import PassiveReplication
from repro.errors import ConfigError
from repro.sim.runtime import SimRuntime
from repro.sim.scheduler import EventScheduler
from repro.types import ReplicationStyle, RingId
from repro.wire.packets import Chunk, CommitToken, DataPacket, JoinMessage, Token

RING = RingId(seq=4, representative=1)


class FakeStack:
    """Records sends; exposes the NetworkStack interface the engines use."""

    def __init__(self, num_networks: int) -> None:
        self.num_networks = num_networks
        self.broadcasts: List[Tuple[int, object]] = []
        self.unicasts: List[Tuple[int, int, object]] = []
        self.handler = None
        self._lan_config = LanConfig()

    def set_receive_handler(self, handler) -> None:
        self.handler = handler

    def set_recv_cost_fn(self, fn) -> None:
        self.recv_cost_fn = fn

    def broadcast(self, network: int, packet: object) -> None:
        self.broadcasts.append((network, packet))

    def unicast(self, network: int, dest: int, packet: object) -> None:
        self.unicasts.append((network, dest, packet))


class FakeSrp:
    """Scripted SRP: records deliveries, answers gap queries from a knob."""

    def __init__(self) -> None:
        self.ring_id = RING
        self.data: List[Tuple[DataPacket, int]] = []
        self.tokens: List[Token] = []
        self.joins: List[JoinMessage] = []
        self.commits: List[CommitToken] = []
        self.my_aru = 0

    def on_data(self, packet, network=0):
        self.data.append((packet, network))

    def on_token(self, token, network=0):
        self.tokens.append(token)

    def on_join(self, join, network=0):
        self.joins.append(join)

    def on_commit_token(self, commit, network=0):
        self.commits.append(commit)

    def has_gaps_up_to(self, seq):
        return self.my_aru < seq

    def is_duplicate_data(self, packet):
        return False


def build(style: ReplicationStyle, num_networks: Optional[int] = None,
          **overrides):
    if num_networks is None:
        num_networks = {ReplicationStyle.NONE: 1, ReplicationStyle.ACTIVE: 2,
                        ReplicationStyle.PASSIVE: 2,
                        ReplicationStyle.ACTIVE_PASSIVE: 3}[style]
    scheduler = EventScheduler()
    config = TotemConfig(replication=style, num_networks=num_networks,
                         **overrides)
    stack = FakeStack(num_networks)
    reports = []
    engine = make_replication_engine(1, config, SimRuntime(scheduler), stack,
                                     on_fault_report=reports.append)
    srp = FakeSrp()
    engine.bind(srp)
    return scheduler, engine, stack, srp, reports


def data_packet(seq: int) -> DataPacket:
    return DataPacket(sender=2, ring_id=RING, seq=seq,
                      chunks=(Chunk.whole(1, b"x"),))


def token(seq: int, rotation: int = 0) -> Token:
    return Token(ring_id=RING, seq=seq, rotation=rotation)


class TestFactory:
    @pytest.mark.parametrize("style,cls", [
        (ReplicationStyle.NONE, SingleNetwork),
        (ReplicationStyle.ACTIVE, ActiveReplication),
        (ReplicationStyle.PASSIVE, PassiveReplication),
        (ReplicationStyle.ACTIVE_PASSIVE, ActivePassiveReplication),
    ])
    def test_builds_right_engine(self, style, cls):
        _, engine, _, _, _ = build(style)
        assert isinstance(engine, cls)

    def test_network_count_mismatch_rejected(self):
        scheduler = EventScheduler()
        config = TotemConfig(replication=ReplicationStyle.ACTIVE,
                             num_networks=2)
        with pytest.raises(ConfigError):
            make_replication_engine(1, config, SimRuntime(scheduler),
                                    FakeStack(3))


class TestSingleNetwork:
    def test_passthrough_both_ways(self):
        _, engine, stack, srp, _ = build(ReplicationStyle.NONE)
        engine.broadcast_data(data_packet(1))
        engine.send_token(token(1), dest=2)
        assert stack.broadcasts == [(0, data_packet(1))]
        assert stack.unicasts[0][:2] == (0, 2)
        engine.on_packet(data_packet(2), 0)
        engine.on_packet(token(2), 0)
        assert len(srp.data) == 1
        assert len(srp.tokens) == 1


class TestActiveReplication:
    def test_sends_on_all_networks_in_order(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE)
        engine.broadcast_data(data_packet(1))
        assert [net for net, _ in stack.broadcasts] == [0, 1]
        engine.send_token(token(1), dest=2)
        assert [(net, dest) for net, dest, _ in stack.unicasts] == [(0, 2), (1, 2)]

    def test_skips_faulty_networks_when_sending(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE, num_networks=3)
        engine.faults.mark_faulty(1)
        engine.broadcast_data(data_packet(1))
        assert [net for net, _ in stack.broadcasts] == [0, 2]

    def test_data_passes_straight_up_even_duplicates(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_data(data_packet(1), 0)
        engine.recv_data(data_packet(1), 1)
        assert len(srp.data) == 2  # SRP's own filter destroys the duplicate

    def test_token_waits_for_all_networks(self):
        """Requirement A2/A3: deliver only when every non-faulty network
        has delivered its copy."""
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        assert srp.tokens == []
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1

    def test_faulty_network_not_waited_for(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE, num_networks=3)
        engine.faults.mark_faulty(2)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1

    def test_late_copy_ignored_after_delivery(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        engine.recv_token(token(5), 0)  # predecessor retransmission
        assert len(srp.tokens) == 1
        assert engine.stats.late_token_copies == 1

    def test_timer_delivers_when_copy_lost(self):
        """Requirement A4: progress despite token loss on one network."""
        scheduler, engine, _, srp, _ = build(ReplicationStyle.ACTIVE,
                                             active_token_timeout=0.002)
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)
        assert len(srp.tokens) == 1
        assert engine.stats.token_timer_expiries == 1

    def test_timer_increments_problem_counter_of_silent_network(self):
        scheduler, engine, _, _, _ = build(ReplicationStyle.ACTIVE,
                                           active_token_timeout=0.002)
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)
        assert engine.monitor.counters == [0, 1]

    def test_repeated_expiries_mark_network_faulty_and_report(self):
        """Requirement A5 end-to-end at the unit level."""
        scheduler, engine, _, _, reports = build(
            ReplicationStyle.ACTIVE, active_token_timeout=0.002,
            problem_counter_threshold=3)
        for seq in range(1, 5):
            engine.recv_token(token(seq), 0)
            scheduler.run_until(scheduler.now() + 0.01)
        assert engine.faults.is_faulty(1)
        assert len(reports) == 1

    def test_decay_runs_periodically(self):
        """Requirement A6: counters decay over time."""
        scheduler, engine, _, _, _ = build(
            ReplicationStyle.ACTIVE, active_token_timeout=0.002,
            problem_counter_decay_interval=0.05)
        engine.start()
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)
        assert engine.monitor.counters[1] == 1
        scheduler.run_until(0.2)
        assert engine.monitor.counters[1] == 0

    def test_older_token_ignored(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        engine.recv_token(token(4), 0)  # stale
        assert len(srp.tokens) == 1

    def test_new_ring_token_treated_as_new(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        # The SRP installs the new ring (during recovery preparation)
        # before the new ring's regular tokens circulate, so the engine
        # sees the ring change through srp.ring_id first.
        srp.ring_id = RingId(8, 1)
        other = Token(ring_id=RingId(8, 1), seq=0)
        engine.recv_token(other, 0)
        engine.recv_token(other, 1)
        assert len(srp.tokens) == 2

    def test_foreign_ring_token_dropped(self):
        """A delayed token from a previous ring must not clobber the merge
        state of the current ring's token (the S1 regression)."""
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        stray = Token(ring_id=RingId(0, 1), seq=9)
        engine.recv_token(stray, 0)
        assert engine.stats.foreign_ring_tokens == 1
        assert srp.tokens == []  # merge state intact, still waiting
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1

    def test_join_and_commit_pass_through_on_all_networks(self):
        _, engine, stack, srp, _ = build(ReplicationStyle.ACTIVE)
        join = JoinMessage(1, frozenset({1}), frozenset(), 0)
        engine.broadcast_join(join)
        assert [net for net, _ in stack.broadcasts] == [0, 1]
        engine.on_packet(join, 0)
        assert srp.joins == [join]
        commit = CommitToken(ring_id=RING, members=(1, 2))
        engine.send_commit_token(commit, dest=2)
        assert len(stack.unicasts) == 2
        engine.on_packet(commit, 1)
        assert srp.commits == [commit]


class TestPassiveReplication:
    def test_round_robin_message_assignment(self):
        _, engine, stack, _, _ = build(ReplicationStyle.PASSIVE)
        for seq in range(4):
            engine.broadcast_data(data_packet(seq))
        assert [net for net, _ in stack.broadcasts] == [0, 1, 0, 1]

    def test_round_robin_token_assignment_independent(self):
        _, engine, stack, _, _ = build(ReplicationStyle.PASSIVE)
        engine.broadcast_data(data_packet(1))
        engine.send_token(token(1), dest=2)
        engine.send_token(token(2), dest=2)
        assert [net for net, _, _ in stack.unicasts] == [0, 1]

    def test_round_robin_skips_faulty(self):
        _, engine, stack, _, _ = build(ReplicationStyle.PASSIVE, num_networks=3)
        engine.faults.mark_faulty(1)
        for seq in range(4):
            engine.broadcast_data(data_packet(seq))
        assert [net for net, _ in stack.broadcasts] == [0, 2, 0, 2]

    def test_token_with_no_gaps_delivered_immediately(self):
        _, engine, _, srp, _ = build(ReplicationStyle.PASSIVE)
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        assert len(srp.tokens) == 1
        assert engine.stats.tokens_buffered == 0

    def test_token_buffered_while_messages_missing(self):
        """Requirement P1: a delayed message must not trigger an rtr."""
        _, engine, _, srp, _ = build(ReplicationStyle.PASSIVE)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        assert srp.tokens == []
        assert engine.stats.tokens_buffered == 1

    def test_buffered_token_released_by_message_arrival(self):
        """The §6 latency optimisation."""
        _, engine, _, srp, _ = build(ReplicationStyle.PASSIVE)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        srp.my_aru = 5  # message arrivals closed the gap
        engine.recv_data(data_packet(5), 1)
        assert len(srp.tokens) == 1

    def test_buffered_token_released_by_timer(self):
        """Requirement P3: progress when the message was really lost."""
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.01)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.05)
        assert len(srp.tokens) == 1
        assert engine.stats.token_timer_expiries == 1

    def test_foreign_ring_token_not_buffered(self):
        _, engine, _, srp, _ = build(ReplicationStyle.PASSIVE)
        srp.my_aru = 0
        foreign = Token(ring_id=RingId(8, 2), seq=9)
        engine.recv_token(foreign, 0)
        assert srp.tokens == [foreign]

    def test_message_monitor_per_origin(self):
        _, engine, _, _, _ = build(ReplicationStyle.PASSIVE)
        engine.recv_data(data_packet(1), 0)
        other = DataPacket(sender=9, ring_id=RING, seq=2, chunks=())
        engine.recv_data(other, 1)
        assert engine.message_monitors[2].recv_count == [1, 0]
        assert engine.message_monitors[9].recv_count == [0, 1]

    def test_token_monitor_counts(self):
        _, engine, _, srp, _ = build(ReplicationStyle.PASSIVE)
        srp.my_aru = 10
        engine.recv_token(token(1), 1)
        assert engine.token_monitor.recv_count == [0, 1]

    def test_monitor_lag_marks_faulty(self):
        """Requirement P4 at the engine level: messages from one origin
        arriving only on one network condemn the other."""
        _, engine, _, _, reports = build(ReplicationStyle.PASSIVE,
                                         recv_count_threshold=10)
        for seq in range(12):
            engine.recv_data(data_packet(seq), 0)
        assert engine.faults.is_faulty(1)
        assert reports

    def test_topup_timer_runs(self):
        scheduler, engine, _, _, _ = build(ReplicationStyle.PASSIVE,
                                           recv_count_topup_interval=0.05)
        engine.start()
        engine.recv_data(data_packet(1), 0)
        assert engine.message_monitors[2].recv_count == [1, 0]
        scheduler.run_until(0.06)
        assert engine.message_monitors[2].recv_count == [1, 1]


class TestActivePassiveReplication:
    def test_k_copies_per_message(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        engine.broadcast_data(data_packet(1))
        assert len(stack.broadcasts) == 2  # K=2

    def test_window_advances_round_robin(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        engine.broadcast_data(data_packet(1))
        engine.broadcast_data(data_packet(2))
        engine.broadcast_data(data_packet(3))
        nets = [net for net, _ in stack.broadcasts]
        # N=3, K=2, stride K: windows cycle {0,1}, {2,0}, {1,2}.
        assert nets == [0, 1, 2, 0, 1, 2]

    def test_all_networks_used_over_time(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE_PASSIVE,
                                       num_networks=4)
        for seq in range(6):
            engine.broadcast_data(data_packet(seq))
        assert {net for net, _ in stack.broadcasts} == {0, 1, 2, 3}

    def test_faulty_network_excluded_from_window(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        engine.faults.mark_faulty(1)
        for seq in range(4):
            engine.broadcast_data(data_packet(seq))
        assert 1 not in {net for net, _ in stack.broadcasts}
        assert len(stack.broadcasts) == 8  # still K=2 copies each

    def test_effective_k_capped_by_operational(self):
        _, engine, _, _, _ = build(ReplicationStyle.ACTIVE_PASSIVE,
                                   num_networks=4, active_passive_k=3)
        assert engine.effective_k() == 3
        engine.faults.mark_faulty(0)
        engine.faults.mark_faulty(1)
        assert engine.effective_k() == 2

    def test_token_delivered_after_k_copies(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        assert srp.tokens == []
        engine.recv_token(token(5), 2)
        assert len(srp.tokens) == 1

    def test_token_timer_delivers_single_copy(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE,
                                             active_token_timeout=0.002)
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)
        assert len(srp.tokens) == 1

    def test_assembled_token_still_respects_gap_check(self):
        """Our documented addition: K token copies do not prove message
        arrival when the windows are disjoint, so the passive buffering
        applies after assembly."""
        scheduler, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE,
                                             passive_token_timeout=0.01)
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert srp.tokens == []  # buffered on the gap
        srp.my_aru = 5
        engine.recv_data(data_packet(5), 2)
        assert len(srp.tokens) == 1

    def test_monitors_observe_all_traffic(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        srp.my_aru = 9
        engine.recv_data(data_packet(1), 0)
        engine.recv_token(token(1), 2)
        assert engine.message_monitors[2].recv_count == [1, 0, 0]
        assert engine.token_monitor.recv_count == [0, 0, 1]
