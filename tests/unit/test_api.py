"""Unit tests for the public API layer (TotemNode, SimCluster, stats)."""

from __future__ import annotations

import pytest

from repro.api.cluster import SimCluster
from repro.api.stats import summarize
from repro.config import ClusterConfig, LanConfig, TotemConfig
from repro.errors import ConfigError, SimulationError
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle


def small_cluster(**kwargs) -> SimCluster:
    totem = TotemConfig(replication=ReplicationStyle.ACTIVE, num_networks=2)
    return SimCluster(ClusterConfig(num_nodes=3, totem=totem, **kwargs))


class TestSimClusterConstruction:
    def test_builds_nodes_and_lans(self):
        cluster = small_cluster()
        assert sorted(cluster.nodes) == [1, 2, 3]
        assert len(cluster.lans) == 2
        assert cluster.now == 0.0

    def test_node_accessor(self):
        cluster = small_cluster()
        assert cluster.node(2) is cluster.nodes[2]

    def test_node_network_count_must_match(self):
        from repro.api.node import TotemNode
        cluster = small_cluster()
        config = TotemConfig(replication=ReplicationStyle.ACTIVE,
                             num_networks=2)
        with pytest.raises(ConfigError):
            TotemNode(9, config, cluster.scheduler, cluster.lans[:1])

    def test_fault_plan_network_bounds_checked(self):
        cluster = small_cluster()
        with pytest.raises(SimulationError):
            cluster.apply_fault_plan(FaultPlan().fail_network(at=1.0,
                                                              network=7))


class TestRunHelpers:
    def test_run_until_and_run_for(self):
        cluster = small_cluster()
        cluster.start()
        cluster.run_until(0.1)
        assert cluster.now == pytest.approx(0.1)
        cluster.run_for(0.05)
        assert cluster.now == pytest.approx(0.15)

    def test_run_until_condition_times_out_loudly(self):
        cluster = small_cluster()
        cluster.start()
        with pytest.raises(SimulationError):
            cluster.run_until_condition(lambda: False, timeout=0.05)

    def test_run_until_condition_returns_promptly(self):
        cluster = small_cluster()
        cluster.start()
        cluster.run_until_condition(
            lambda: cluster.nodes[1].srp.stats.tokens_accepted > 3,
            timeout=2.0)
        assert cluster.now < 2.0


class TestAssertTotalOrder:
    def test_passes_on_clean_run(self):
        cluster = small_cluster()
        cluster.start()
        cluster.nodes[1].submit(b"a")
        cluster.run_for(0.05)
        cluster.assert_total_order()

    def test_detects_forged_divergence(self):
        cluster = small_cluster()
        cluster.start()
        cluster.nodes[1].submit(b"a")
        cluster.nodes[2].submit(b"b")
        cluster.run_for(0.05)
        # Forge a divergent history on one node.
        cluster.nodes[3].log.messages[0], cluster.nodes[3].log.messages[1] = \
            cluster.nodes[3].log.messages[1], cluster.nodes[3].log.messages[0]
        with pytest.raises(AssertionError):
            cluster.assert_total_order()


class TestNodeApi:
    def test_user_callbacks_fan_out(self):
        cluster = small_cluster()
        delivered = []
        cluster.nodes[2]._user_deliver = delivered.append
        cluster.start()
        cluster.nodes[1].submit(b"x")
        cluster.run_for(0.05)
        assert [m.payload for m in delivered] == [b"x"]
        assert cluster.nodes[2].log.payloads == [b"x"]

    def test_membership_property(self):
        cluster = small_cluster()
        cluster.start()
        cluster.run_for(0.01)
        assert tuple(cluster.nodes[1].membership.members) == (1, 2, 3)

    def test_try_submit_backpressure(self):
        cluster = small_cluster()
        cluster.start()
        node = cluster.nodes[1]
        accepted = 0
        while node.try_submit(b"spam"):
            accepted += 1
        assert accepted == node.config.send_queue_capacity

    def test_clear_network_fault_noop_when_healthy(self):
        cluster = small_cluster()
        cluster.start()
        assert not cluster.nodes[1].clear_network_fault(0)


class TestCrashNode:
    def test_crashed_node_is_silent(self):
        cluster = small_cluster()
        cluster.start()
        cluster.run_for(0.02)
        cluster.crash_node(3)
        before = len(cluster.nodes[3].delivered)
        cluster.nodes[1].submit(b"post-crash")
        cluster.run_for(0.3)
        assert len(cluster.nodes[3].delivered) == before


class TestSummary:
    def test_summary_shape_and_format(self):
        cluster = small_cluster()
        cluster.start()
        for i in range(10):
            cluster.nodes[1 + i % 3].submit(b"s" * 100)
        cluster.run_for(0.2)
        summary = cluster.summary()
        assert set(summary.nodes) == {1, 2, 3}
        assert len(summary.lans) == 2
        assert summary.total_delivered == 30
        assert summary.aggregate_msgs_per_sec > 0
        text = summary.format()
        assert "node 1" in text and "net0" in text

    def test_summary_counts_faults(self):
        cluster = small_cluster()
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.01, network=1))
        cluster.start()
        cluster.run_for(0.5)
        summary = cluster.summary()
        assert any(node.faulty_networks == [1]
                   for node in summary.nodes.values())
        assert sum(node.fault_reports for node in summary.nodes.values()) >= 3

    def test_empty_cluster_summary_rates(self):
        cluster = small_cluster()
        summary = summarize(cluster)
        assert summary.aggregate_msgs_per_sec == 0.0
