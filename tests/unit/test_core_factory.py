"""Unit tests for the replication-engine factory (repro.core.factory)."""

from types import SimpleNamespace

import pytest

from repro.api.cluster import SimCluster
from repro.config import ClusterConfig, TotemConfig
from repro.core.active import ActiveReplication
from repro.core.active_passive import ActivePassiveReplication
from repro.core.base import SingleNetwork
from repro.core.factory import make_replication_engine
from repro.core.passive import PassiveReplication
from repro.errors import ConfigError
from repro.types import ReplicationStyle

STYLE_ENGINES = [
    (ReplicationStyle.NONE, 1, SingleNetwork),
    (ReplicationStyle.ACTIVE, 2, ActiveReplication),
    (ReplicationStyle.PASSIVE, 2, PassiveReplication),
    (ReplicationStyle.ACTIVE_PASSIVE, 3, ActivePassiveReplication),
]


@pytest.mark.parametrize("style,networks,engine_cls", STYLE_ENGINES)
def test_factory_builds_the_configured_engine(style, networks, engine_cls):
    config = ClusterConfig(
        num_nodes=2,
        totem=TotemConfig(replication=style, num_networks=networks))
    cluster = SimCluster(config)
    for node in cluster.nodes.values():
        assert isinstance(node.rrp, engine_cls)


def test_network_count_mismatch_raises():
    stack = SimpleNamespace(num_networks=1)
    config = TotemConfig(replication=ReplicationStyle.ACTIVE,
                         num_networks=2)
    with pytest.raises(ConfigError, match="networks"):
        make_replication_engine(1, config, runtime=None, stack=stack)
