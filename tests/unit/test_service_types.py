"""Unit tests for the service wire envelope and typed responses."""

import pytest

from repro.errors import CodecError
from repro.service.types import (
    ENVELOPE_LEN,
    OP_DEL,
    OP_PUB,
    OP_SET,
    Admitted,
    Overload,
    ReadResult,
    Request,
    Shed,
    ShedReason,
    decode_body,
    decode_envelope,
    encode_delete,
    encode_envelope,
    encode_publish,
    encode_set,
)


class TestEnvelope:
    def test_round_trip(self):
        payload = encode_envelope(7, 123456789, b"body-bytes")
        assert decode_envelope(payload) == (7, 123456789, b"body-bytes")

    def test_foreign_payload_returns_none(self):
        # Non-service traffic on the same ring must be ignored, not raise.
        assert decode_envelope(b"CP01whatever") is None
        assert decode_envelope(b"") is None

    def test_truncated_envelope_raises(self):
        payload = encode_envelope(1, 1, b"x")[:ENVELOPE_LEN - 2]
        with pytest.raises(CodecError, match="truncated"):
            decode_envelope(payload)

    @pytest.mark.parametrize("client,uid", [(-1, 0), (2**32, 0), (0, -1),
                                            (0, 2**64)])
    def test_out_of_range_ids_raise(self, client, uid):
        with pytest.raises(CodecError):
            encode_envelope(client, uid, b"")

    def test_limits_are_encodable(self):
        payload = encode_envelope(2**32 - 1, 2**64 - 1, b"")
        assert decode_envelope(payload) == (2**32 - 1, 2**64 - 1, b"")


class TestBody:
    def test_set_round_trip(self):
        assert decode_body(encode_set(b"k", b"v")) == (OP_SET, b"k", b"v")

    def test_delete_round_trip(self):
        assert decode_body(encode_delete(b"key")) == (OP_DEL, b"key", b"")

    def test_publish_round_trip(self):
        assert decode_body(encode_publish(b"topic", b"data")) == (
            OP_PUB, b"topic", b"data")

    def test_empty_key_and_value(self):
        assert decode_body(encode_set(b"", b"")) == (OP_SET, b"", b"")

    def test_key_too_long_raises(self):
        with pytest.raises(CodecError, match="key too long"):
            encode_set(b"x" * 0x10000, b"v")

    def test_unknown_op_raises(self):
        with pytest.raises(CodecError, match="unknown service op"):
            decode_body(b"Z\x00\x01k")

    @pytest.mark.parametrize("body", [b"", b"S", b"S\x00"])
    def test_truncated_header_raises(self, body):
        with pytest.raises(CodecError, match="truncated"):
            decode_body(body)

    def test_truncated_key_raises(self):
        with pytest.raises(CodecError, match="truncated"):
            decode_body(b"S\x00\x09shortkey")


class TestResponses:
    def test_overload_is_a_shed(self):
        response = Overload(1, 2, reason=ShedReason.BACKPRESSURE,
                            retry_after=0.01)
        assert isinstance(response, Shed)
        assert response.reason is ShedReason.BACKPRESSURE

    def test_plain_shed_is_not_overload(self):
        response = Shed(1, 2, reason=ShedReason.DEADLINE_EXPIRED)
        assert not isinstance(response, Overload)

    def test_admitted_is_not_a_shed(self):
        assert not isinstance(Admitted(1, 2), Shed)

    def test_shed_reasons_have_stable_wire_values(self):
        # The decision log and metric labels embed these strings.
        assert ShedReason.RATE_LIMITED.value == "rate-limited"
        assert ShedReason.QUEUE_FULL.value == "queue-full"
        assert ShedReason.DEADLINE_EXPIRED.value == "deadline-expired"
        assert ShedReason.BACKPRESSURE.value == "backpressure"
        assert ShedReason.CIRCUIT_OPEN.value == "circuit-open"
        assert ShedReason.UNAVAILABLE.value == "unavailable"

    def test_request_arrival_not_part_of_identity(self):
        a = Request(client=1, uid=1, key=b"k", body=b"b", arrival=0.5)
        b = Request(client=1, uid=1, key=b"k", body=b"b", arrival=0.9)
        assert a == b

    def test_read_result_ok_property(self):
        assert ReadResult(b"k", b"v", "ok").ok
        assert not ReadResult(b"k", b"v", "degraded").ok
        assert not ReadResult(b"k", None, "deadline-expired").ok
