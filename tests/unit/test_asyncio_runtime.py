"""Unit tests for the asyncio runtime adapter."""

from __future__ import annotations

import asyncio

import pytest

from repro.api.asyncio_node import AsyncioRuntime
from repro.sim.runtime import Runtime


class TestAsyncioRuntime:
    def test_implements_runtime_protocol(self):
        async def scenario():
            runtime = AsyncioRuntime(asyncio.get_running_loop())
            assert isinstance(runtime, Runtime)
        asyncio.run(scenario())

    def test_now_is_loop_time(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            runtime = AsyncioRuntime(loop)
            assert runtime.now() == pytest.approx(loop.time(), abs=0.05)
        asyncio.run(scenario())

    def test_timer_fires_with_args(self):
        async def scenario():
            runtime = AsyncioRuntime(asyncio.get_running_loop())
            got = []
            runtime.set_timer(0.01, lambda a, b: got.append((a, b)), 1, 2)
            await asyncio.sleep(0.05)
            assert got == [(1, 2)]
        asyncio.run(scenario())

    def test_timer_cancel(self):
        async def scenario():
            runtime = AsyncioRuntime(asyncio.get_running_loop())
            got = []
            timer = runtime.set_timer(0.01, got.append, "x")
            assert timer.active
            timer.cancel()
            assert not timer.active
            await asyncio.sleep(0.05)
            assert got == []
        asyncio.run(scenario())

    def test_timer_inactive_after_firing(self):
        async def scenario():
            runtime = AsyncioRuntime(asyncio.get_running_loop())
            timer = runtime.set_timer(0.01, lambda: None)
            await asyncio.sleep(0.05)
            assert not timer.active
        asyncio.run(scenario())
