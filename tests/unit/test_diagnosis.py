"""Unit tests for the §3 fault-report diagnosis."""

from __future__ import annotations

import pytest

from repro.core.diagnosis import (
    Diagnosis,
    FaultHypothesis,
    diagnose,
    format_diagnoses,
)
from repro.types import FaultKind, FaultReport

NODES = [1, 2, 3, 4]


def report(node, network, time, detail="", kind=FaultKind.NETWORK_FAILED):
    return FaultReport(node=node, network=network, kind=kind, time=time,
                       detail=detail)


class TestTotalFailure:
    def test_all_nodes_same_network(self):
        reports = [report(n, 1, 0.5 + 0.01 * n,
                          detail="problem counter reached 10")
                   for n in NODES]
        result = diagnose(reports, NODES)
        assert len(result) == 1
        assert result[0].hypothesis is FaultHypothesis.TOTAL_NETWORK_FAILURE
        assert result[0].network == 1
        assert result[0].node is None
        assert result[0].confidence == 1.0

    def test_token_lag_reports_also_total(self):
        reports = [report(n, 0, 0.5, detail="token: reception lag 51")
                   for n in NODES]
        result = diagnose(reports, NODES)
        assert result[0].hypothesis is FaultHypothesis.TOTAL_NETWORK_FAILURE


class TestNodePathFaults:
    def test_receive_fault_signature(self):
        """Victim starves first, others then cite the victim."""
        reports = [report(2, 0, 0.50, detail="token: reception lag 51")]
        reports += [report(n, 0, 0.80, detail="messages from 2: reception lag 51")
                    for n in (1, 3, 4)]
        result = diagnose(reports, NODES)
        assert len(result) == 1
        assert result[0].hypothesis is FaultHypothesis.NODE_RECEIVE_FAULT
        assert result[0].node == 2
        assert result[0].network == 0
        assert result[0].confidence == 1.0

    def test_send_fault_signature(self):
        """Others cite the victim; the victim itself never reports."""
        reports = [report(n, 0, 0.3, detail="messages from 3: reception lag 51")
                   for n in (1, 2, 4)]
        result = diagnose(reports, NODES)
        assert result[0].hypothesis is FaultHypothesis.NODE_SEND_FAULT
        assert result[0].node == 3
        assert result[0].confidence == 1.0

    def test_partial_corroboration_lowers_confidence(self):
        reports = [report(1, 0, 0.3, detail="messages from 3: reception lag 51"),
                   report(2, 0, 0.4, detail="messages from 3: reception lag 51")]
        result = diagnose(reports, NODES)
        assert result[0].hypothesis is FaultHypothesis.NODE_SEND_FAULT
        assert result[0].confidence == pytest.approx(2 / 3)


class TestSporadicAndRestore:
    def test_single_uncorroborated_report(self):
        result = diagnose([report(4, 1, 0.2, detail="problem counter")], NODES)
        assert result[0].hypothesis is FaultHypothesis.SPORADIC_DEGRADATION
        assert result[0].confidence == pytest.approx(1 / 4)

    def test_restore_clears_failure(self):
        reports = [report(n, 1, 0.5, detail="problem counter") for n in NODES]
        reports += [report(n, 1, 1.0, kind=FaultKind.NETWORK_RESTORED)
                    for n in NODES]
        assert diagnose(reports, NODES) == []

    def test_restore_then_refailure_diagnosed(self):
        reports = [report(1, 1, 0.5), report(1, 1, 1.0,
                                             kind=FaultKind.NETWORK_RESTORED),
                   report(1, 1, 2.0, detail="problem counter")]
        result = diagnose(reports, NODES)
        assert len(result) == 1
        assert result[0].reports[0].time == 2.0


class TestMultipleNetworks:
    def test_independent_diagnoses_ordered_by_time(self):
        reports = [report(n, 1, 2.0) for n in NODES]
        reports += [report(n, 0, 1.0) for n in NODES]
        result = diagnose(reports, NODES)
        assert [d.network for d in result] == [0, 1]


class TestFormatting:
    def test_empty(self):
        assert format_diagnoses([]) == "no faults diagnosed"

    def test_str_mentions_essentials(self):
        reports = [report(n, 0, 0.3, detail="messages from 3: reception lag 51")
                   for n in (1, 2, 4)]
        text = format_diagnoses(diagnose(reports, NODES))
        assert "send-path" in text
        assert "node 3" in text
        assert "network 0" in text


class TestEndToEndIntegration:
    """Each of the four hypotheses, inferred from a real simulated fault.

    The unit tests above feed hand-written reports; these run the actual
    protocol against a scripted physical fault and check the reports it
    emits diagnose back to that fault.
    """

    @staticmethod
    def _conftest():
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        import conftest
        return conftest

    def test_diagnosis_of_simulated_total_failure(self):
        make_cluster = self._conftest().make_cluster
        from repro.net.faults import FaultPlan
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE)
        cluster.apply_fault_plan(FaultPlan().fail_network(at=0.05, network=1))
        cluster.start()
        cluster.run_until_condition(
            lambda: len(cluster.all_fault_reports()) >= 4, timeout=5.0)
        diagnoses = cluster.diagnose_faults()
        assert len(diagnoses) == 1
        assert diagnoses[0].hypothesis is FaultHypothesis.TOTAL_NETWORK_FAILURE
        assert diagnoses[0].network == 1

    def test_diagnosis_of_simulated_receive_fault(self):
        """Dead RX path at one node, §3 propagation does the rest.

        The signature needs the victim to starve via its *token* monitor
        (citing no origin) while its own send stream, rerouted after it
        marks the network, makes at least one peer cite "messages from
        <victim>" — hence the victim-heavy workload.
        """
        make_cluster = self._conftest().make_cluster
        from repro.net.faults import FaultPlan
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.apply_fault_plan(
            FaultPlan().sever_recv(at=0.1, network=0, node=2))
        cluster.start()
        for _ in range(700):
            cluster.nodes[2].submit(b"v" * 300)
            cluster.run_for(0.002)
        cluster.run_for(0.5)
        reports = cluster.all_fault_reports()
        assert reports[0].node == 2          # the victim knows first
        assert reports[0].network == 0
        diagnoses = cluster.diagnose_faults()
        assert len(diagnoses) == 1
        assert diagnoses[0].hypothesis is FaultHypothesis.NODE_RECEIVE_FAULT
        assert diagnoses[0].node == 2
        assert diagnoses[0].network == 0

    def test_diagnosis_of_simulated_send_fault(self):
        """Dead TX path: peers stop hearing the victim, the victim itself
        receives fine — so within a tight window it never reports."""
        make_cluster = self._conftest().make_cluster
        from repro.bench.workload import SaturatingWorkload
        from repro.net.faults import FaultPlan
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.apply_fault_plan(
            FaultPlan().sever_send(at=0.1, network=0, node=3))
        cluster.start()
        workload = SaturatingWorkload(cluster, 512)
        workload.start()
        cluster.run_for(1.0)
        workload.stop()
        # The tight window isolates the initial alarm burst from the §3
        # propagation echo (the victim later starves for its peers'
        # messages once *they* abandon the network).
        diagnoses = diagnose(cluster.all_fault_reports(),
                             sorted(cluster.nodes), window=0.05)
        assert diagnoses[0].hypothesis is FaultHypothesis.NODE_SEND_FAULT
        assert diagnoses[0].node == 3
        assert diagnoses[0].network == 0
        assert diagnoses[0].confidence == 1.0

    def test_diagnosis_of_simulated_sporadic_degradation(self):
        """An alarm only one node raised (run cut before propagation)."""
        make_cluster = self._conftest().make_cluster
        from repro.net.faults import FaultPlan
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.PASSIVE)
        cluster.apply_fault_plan(
            FaultPlan().sever_recv(at=0.1, network=0, node=2))
        cluster.start()
        cluster.run_until_condition(
            lambda: len(cluster.all_fault_reports()) >= 1, timeout=5.0)
        reports = cluster.all_fault_reports()
        assert {r.node for r in reports} == {2}
        diagnoses = diagnose(reports, sorted(cluster.nodes))
        assert len(diagnoses) == 1
        assert diagnoses[0].hypothesis is FaultHypothesis.SPORADIC_DEGRADATION
        assert diagnoses[0].network == 0
        assert diagnoses[0].confidence == pytest.approx(1 / 4)
