"""Unit tests for baseline discovery via the embedded ``recorded`` stamp.

A fresh ``git checkout`` gives every ``BENCH_*.json`` the same mtime, so
"newest file wins" used to be whatever the filesystem wrote last — the
BENCH_pr7 vs BENCH_pr7_rebase ambiguity.  Discovery now orders by the
document's own ``recorded`` Unix timestamp (with the basename as a
deterministic tiebreak) and only falls back to mtime for documents that
predate the field.
"""

import json
import os

from repro.bench.gate import (
    SCHEMA_VERSION,
    _baseline_sort_key,
    find_baseline,
    write_result,
)


def write_doc(path, recorded=None, mtime=None):
    document = {"schema": SCHEMA_VERSION, "workloads": {}}
    if recorded is not None:
        document["recorded"] = recorded
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return str(path)


class TestWriteResult:
    def test_stamps_recorded(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_result({"schema": SCHEMA_VERSION, "workloads": {}}, str(path))
        document = json.loads(path.read_text())
        assert isinstance(document["recorded"], int)
        assert document["recorded"] > 1_700_000_000

    def test_keeps_existing_recorded(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_result({"schema": SCHEMA_VERSION, "workloads": {},
                      "recorded": 123}, str(path))
        assert json.loads(path.read_text())["recorded"] == 123


class TestSortKey:
    def test_recorded_beats_mtime(self, tmp_path):
        path = write_doc(tmp_path / "BENCH_a.json", recorded=500,
                         mtime=9_999_999)
        assert _baseline_sort_key(path) == (500.0, "BENCH_a.json")

    def test_mtime_fallback_without_recorded(self, tmp_path):
        path = write_doc(tmp_path / "BENCH_a.json", mtime=777)
        assert _baseline_sort_key(path) == (777.0, "BENCH_a.json")

    def test_malformed_json_falls_back_to_mtime(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        os.utime(path, (555, 555))
        assert _baseline_sort_key(str(path)) == (555.0, "BENCH_bad.json")

    def test_boolean_recorded_is_ignored(self, tmp_path):
        # JSON `true` is a Python bool — not a timestamp.
        path = write_doc(tmp_path / "BENCH_a.json", recorded=True, mtime=42)
        assert _baseline_sort_key(path) == (42.0, "BENCH_a.json")


class TestFindBaseline:
    def test_pr7_rebase_ambiguity_resolved_by_recorded(self, tmp_path):
        # The motivating case: identical mtimes (fresh checkout), with the
        # rebase document recorded *before* the post-rebase re-measurement.
        write_doc(tmp_path / "BENCH_pr7.json", recorded=2000, mtime=100)
        write_doc(tmp_path / "BENCH_pr7_rebase.json", recorded=1000,
                  mtime=100)
        assert find_baseline(str(tmp_path),
                             str(tmp_path / "BENCH_pr9.json")) == str(
            tmp_path / "BENCH_pr7.json")

    def test_recorded_overrides_newer_mtime(self, tmp_path):
        write_doc(tmp_path / "BENCH_old.json", recorded=1000, mtime=9000)
        write_doc(tmp_path / "BENCH_new.json", recorded=2000, mtime=1000)
        assert find_baseline(str(tmp_path), "BENCH_out.json").endswith(
            "BENCH_new.json")

    def test_equal_recorded_breaks_tie_by_basename(self, tmp_path):
        write_doc(tmp_path / "BENCH_a.json", recorded=1000)
        write_doc(tmp_path / "BENCH_b.json", recorded=1000)
        assert find_baseline(str(tmp_path), "BENCH_out.json").endswith(
            "BENCH_b.json")

    def test_output_file_excluded(self, tmp_path):
        write_doc(tmp_path / "BENCH_old.json", recorded=1000)
        output = write_doc(tmp_path / "BENCH_new.json", recorded=2000)
        assert find_baseline(str(tmp_path), output).endswith(
            "BENCH_old.json")

    def test_no_candidates(self, tmp_path):
        assert find_baseline(str(tmp_path), "BENCH_out.json") is None

    def test_committed_bench_documents_are_stamped(self):
        # The retrofitted corpus must keep discovery deterministic.
        import glob
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        assert paths, "committed BENCH_*.json corpus went missing"
        stamps = {}
        for path in paths:
            with open(path, encoding="utf-8") as fh:
                stamps[path] = json.load(fh).get("recorded")
        assert all(isinstance(v, int) for v in stamps.values()), stamps
        assert len(set(stamps.values())) == len(stamps), (
            "recorded stamps must be unique so ordering is total")
