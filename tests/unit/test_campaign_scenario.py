"""Unit tests for the campaign scenario DSL (repro.campaign.scenario)."""

import pytest

from repro.campaign.scenario import (
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    TimelineEvent,
    load_scenario,
    ordered_events,
    save_scenario,
)
from repro.errors import ConfigError
from repro.types import ReplicationStyle


class TestTimelineEvent:
    def test_param_attribute_access(self):
        e = TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2})
        assert e.network == 0
        assert e.rate == 0.2

    def test_optional_defaults_applied(self):
        e = TimelineEvent(0.0, "burst", {"node": 1, "count": 5, "size": 10})
        assert e.gap == 0.001
        e2 = TimelineEvent(0.0, "burst_loss",
                           {"network": 0, "p_good_to_bad": 0.01,
                            "p_bad_to_good": 0.3})
        assert e2.bad_loss == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown timeline event kind"):
            TimelineEvent(0.0, "meteor_strike", {})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ConfigError, match="missing parameter"):
            TimelineEvent(0.0, "loss", {"network": 0})

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            TimelineEvent(0.0, "crash", {"node": 1, "speed": 3})

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError, match="must be >= 0"):
            TimelineEvent(-0.5, "heal_all", {})

    def test_missing_attribute_raises(self):
        e = TimelineEvent(0.0, "heal_all", {})
        with pytest.raises(AttributeError):
            e.network

    def test_structural_equality_and_hash(self):
        a = TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2})
        b = TimelineEvent(0.1, "loss", {"rate": 0.2, "network": 0})
        c = TimelineEvent(0.1, "loss", {"network": 1, "rate": 0.2})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_groups_normalised_to_tuples(self):
        e = TimelineEvent(0.0, "partition_all", {"groups": [[1, 2], [3]]})
        assert e.groups == ((1, 2), (3,))
        assert hash(e)  # hashable despite list input

    def test_round_trip_via_dict(self):
        e = TimelineEvent(0.2, "sever_pair", {"network": 1, "src": 1, "dst": 3})
        again = TimelineEvent.from_dict(e.to_dict())
        assert again == e

    def test_groups_round_trip_json_friendly(self):
        e = TimelineEvent(0.0, "partition_all", {"groups": [[1], [2, 3]]})
        d = e.to_dict()
        assert d["groups"] == [[1], [2, 3]]  # lists, not tuples
        assert TimelineEvent.from_dict(d) == e

    def test_from_dict_missing_keys(self):
        with pytest.raises(ConfigError, match="missing 'at'"):
            TimelineEvent.from_dict({"kind": "heal_all"})
        with pytest.raises(ConfigError, match="missing 'kind'"):
            TimelineEvent.from_dict({"at": 0.1})


class TestScenarioValidation:
    def test_defaults_num_networks_by_style(self):
        assert Scenario(name="x").num_networks == 2
        assert Scenario(
            name="x",
            style=ReplicationStyle.ACTIVE_PASSIVE).num_networks == 3

    def test_event_past_duration_rejected(self):
        with pytest.raises(ConfigError, match="past the scenario duration"):
            Scenario(name="x", duration=0.5,
                     events=(TimelineEvent(0.9, "heal_all", {}),))

    def test_network_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="references network"):
            Scenario(name="x", events=(
                TimelineEvent(0.1, "loss", {"network": 5, "rate": 0.1}),))

    def test_node_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="references node"):
            Scenario(name="x", num_nodes=3,
                     events=(TimelineEvent(0.1, "crash", {"node": 9}),))

    def test_overlapping_partition_groups_rejected(self):
        with pytest.raises(ConfigError, match="overlapping groups"):
            Scenario(name="x", events=(
                TimelineEvent(0.1, "partition_all",
                              {"groups": [[1, 2], [2, 3]]}),))

    def test_restart_without_crash_rejected(self):
        with pytest.raises(ConfigError, match="never crashed"):
            Scenario(name="x",
                     events=(TimelineEvent(0.2, "restart", {"node": 1}),))

    def test_crash_then_restart_accepted(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.1, "crash", {"node": 2}),
            TimelineEvent(0.4, "restart", {"node": 2}),
        ))
        assert len(sc.fault_events) == 2

    def test_strict_invariants_rejected(self):
        with pytest.raises(ConfigError, match="'off' or"):
            Scenario(name="x", invariants="strict")


class TestBudgetAnalysis:
    def test_no_faults_is_within_budget(self):
        assert Scenario(name="x").within_redundancy_budget()

    def test_one_clean_network_is_within_budget(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2}),
            TimelineEvent(0.2, "fail_network", {"network": 0}),
            TimelineEvent(0.5, "restore_network", {"network": 0}),
        ))
        assert sc.within_redundancy_budget()

    def test_all_networks_touched_is_beyond_budget(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2}),
            TimelineEvent(0.2, "loss", {"network": 1, "rate": 0.2}),
        ))
        assert not sc.within_redundancy_budget()

    def test_churn_is_beyond_budget(self):
        sc = Scenario(name="x",
                      events=(TimelineEvent(0.1, "crash", {"node": 1}),))
        assert not sc.within_redundancy_budget()

    def test_partition_is_beyond_budget(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.1, "partition_all", {"groups": [[1, 2], [3, 4]]}),
        ))
        assert not sc.within_redundancy_budget()

    def test_restorative_events_do_not_count(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2}),
            TimelineEvent(0.3, "restore_network", {"network": 1}),
            TimelineEvent(0.5, "heal_all", {}),
        ))
        assert sc.within_redundancy_budget()


class TestTwinAndSerialisation:
    def _scenario(self):
        return Scenario(
            name="case", style=ReplicationStyle.PASSIVE, seed=9,
            duration=0.8, settle=0.3,
            events=(
                TimelineEvent(0.05, "burst",
                              {"node": 1, "count": 10, "size": 64}),
                TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.2}),
                TimelineEvent(0.2, "partition_all",
                              {"groups": [[1, 2], [3, 4]]}),
            ),
            notes="unit fixture")

    def test_fault_free_twin_keeps_workload_only(self):
        twin = self._scenario().fault_free_twin()
        assert twin.name == "case::twin"
        assert all(e.kind == "burst" for e in twin.events)
        assert len(twin.events) == 1
        assert twin.seed == 9  # same seed: same workload draw

    def test_json_round_trip(self):
        sc = self._scenario()
        again = Scenario.from_json(sc.to_json())
        assert again == sc

    def test_save_and_load(self, tmp_path):
        sc = self._scenario()
        path = tmp_path / "case.json"
        save_scenario(sc, str(path))
        assert load_scenario(str(path)) == sc

    def test_schema_mismatch_rejected(self):
        bad = self._scenario().to_dict()
        bad["schema"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError, match="unsupported scenario schema"):
            Scenario.from_dict(bad)

    def test_unknown_field_rejected(self):
        bad = self._scenario().to_dict()
        bad["turbo"] = True
        with pytest.raises(ConfigError, match="unknown scenario field"):
            Scenario.from_dict(bad)

    def test_totem_overrides_round_trip(self):
        sc = Scenario(name="batched", totem={"enable_batching": True},
                      events=())
        again = Scenario.from_json(sc.to_json())
        assert again.totem == {"enable_batching": True}
        assert again == sc

    def test_totem_override_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown totem override"):
            Scenario(name="bad", totem={"warp_drive": True})

    def test_totem_override_scenario_owned_key_rejected(self):
        # replication/num_networks belong to the scenario's own fields.
        with pytest.raises(ConfigError, match="unknown totem override"):
            Scenario(name="bad", totem={"num_networks": 3})

    def test_missing_name_rejected(self):
        bad = self._scenario().to_dict()
        del bad["name"]
        with pytest.raises(ConfigError, match="missing its 'name'"):
            Scenario.from_dict(bad)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            Scenario.from_json("{nope")
        with pytest.raises(ConfigError, match="one JSON object"):
            Scenario.from_json("[1, 2]")

    def test_ordered_events_is_stable(self):
        sc = Scenario(name="x", events=(
            TimelineEvent(0.2, "heal_all", {}),
            TimelineEvent(0.1, "loss", {"network": 0, "rate": 0.1}),
            TimelineEvent(0.1, "fail_network", {"network": 0}),
        ))
        kinds = [e.kind for e in ordered_events(sc)]
        # Same-time ties keep file order: loss before fail_network.
        assert kinds == ["loss", "fail_network", "heal_all"]
