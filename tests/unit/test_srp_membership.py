"""Unit tests for the SRP membership machinery, driven with fakes."""

from __future__ import annotations

import pytest

from repro.srp.engine import SrpState
from repro.types import RingId
from repro.wire.packets import CommitToken, JoinMessage, MemberInfo, Token

from test_srp_engine import FakeTransport, data_packet, make_srp


def join(sender, proc, fail=(), ring_seq=0) -> JoinMessage:
    return JoinMessage(sender=sender, proc_set=frozenset(proc),
                       fail_set=frozenset(fail), ring_seq=ring_seq)


class TestJoinHandling:
    def test_foreign_join_triggers_gather(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        assert srp.state is SrpState.OPERATIONAL
        srp.on_join(join(9, {1, 2, 3, 9}, ring_seq=0))
        assert srp.state is SrpState.GATHER
        assert transport.joins
        assert 9 in srp._proc_set

    def test_stale_own_ring_join_ignored(self):
        """A late duplicate of the join that formed the current ring must
        not destabilise it."""
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_join(join(1, {1, 2, 3}, ring_seq=0))  # ring.seq is 4
        assert srp.state is SrpState.OPERATIONAL

    def test_member_join_with_current_seq_triggers_gather(self):
        """A member broadcasting joins at the current ring seq lost the
        token: the ring has to re-form."""
        scheduler, srp, _, _ = make_srp(node_id=2)
        srp.on_join(join(3, {1, 2, 3}, ring_seq=srp.ring_id.seq))
        assert srp.state is SrpState.GATHER

    def test_join_merge_grows_sets_and_rebroadcasts(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_join(join(9, {2, 9}, ring_seq=0))
        sent = len(transport.joins)
        srp.on_join(join(8, {2, 8}, fail={7}, ring_seq=0))
        assert len(transport.joins) > sent
        assert {8, 9} <= srp._proc_set
        assert 7 in srp._fail_set

    def test_own_id_never_adopted_into_fail_set(self):
        scheduler, srp, _, _ = make_srp(node_id=2)
        srp.on_join(join(9, {2, 9}, fail={2}, ring_seq=0))
        assert 2 not in srp._fail_set

    def test_highest_ring_seq_tracked(self):
        scheduler, srp, _, _ = make_srp(node_id=2)
        srp.on_join(join(9, {1, 2, 3, 9}, ring_seq=400))
        assert srp._highest_ring_seq == 400


class TestMutualAccusation:
    def test_accuser_is_failed_not_believed(self):
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2, 3))
        srp._enter_gather("test")
        srp.on_join(join(9, {2, 9}, fail={2, 3}, ring_seq=0))
        # The accuser lands in our fail set; its accusation of node 3 is
        # NOT adopted (a deaf node accuses everyone).
        assert 9 in srp._fail_set
        assert 3 not in srp._fail_set

    def test_accuser_quarantined_while_operational(self):
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2, 3))
        srp.on_join(join(9, {2, 9}, fail={2}, ring_seq=0))
        assert srp.state is SrpState.OPERATIONAL  # no gather triggered
        assert srp._quarantine.get(9, 0) > 0
        # Its later "innocent" join is also ignored while quarantined.
        srp.on_join(join(9, {1, 2, 3, 9}, ring_seq=0))
        assert srp.state is SrpState.OPERATIONAL

    def test_quarantine_expires(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, members=(1, 2, 3), rejoin_quarantine=0.05)
        srp.on_join(join(9, {2, 9}, fail={2}, ring_seq=0))
        scheduler.run_until(scheduler.now() + 0.1)
        srp.on_join(join(9, {1, 2, 3, 9}, ring_seq=0))
        assert srp.state is SrpState.GATHER

    def test_member_accusation_triggers_gather(self):
        """A current member that cannot hear us must be excluded, so its
        accusation does start a reconfiguration."""
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2, 3))
        srp.on_join(join(3, {1, 2, 3}, fail={2}, ring_seq=4))
        assert srp.state is SrpState.GATHER
        assert 3 in srp._fail_set

    def test_accusation_during_commit_aborts_formation(self):
        scheduler, srp, transport, _ = make_srp(node_id=1, members=(1, 2))
        srp._enter_gather("test")
        srp.on_join(join(2, {1, 2}, ring_seq=4))
        assert srp.state is SrpState.COMMIT
        # Node 2, a member of the pending ring, now says it cannot hear us.
        srp.on_join(join(2, {1, 2}, fail={1}, ring_seq=8))
        assert srp.state in (SrpState.GATHER, SrpState.COMMIT)
        assert 2 in srp._fail_set


class TestPresenceBeacon:
    def test_representative_beacons_periodically(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=1, members=(1, 2), presence_interval=0.1,
            token_loss_timeout=10.0)
        baseline = len(transport.joins)
        scheduler.run_until(0.35)
        beacons = transport.joins[baseline:]
        assert len(beacons) >= 3
        assert all(b.ring_seq == srp.ring_id.seq - 1 for b in beacons)

    def test_non_representative_does_not_beacon(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, members=(1, 2), presence_interval=0.1,
            token_loss_timeout=10.0)
        scheduler.run_until(0.35)
        assert transport.joins == []

    def test_beacon_disabled(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=1, members=(1, 2), presence_interval=0.0,
            token_loss_timeout=10.0)
        scheduler.run_until(0.35)
        assert transport.joins == []

    def test_own_beacon_is_stale_to_members(self):
        """A member receiving its representative's beacon must not gather."""
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2))
        beacon = join(1, {1, 2}, ring_seq=srp.ring_id.seq - 1)
        srp.on_join(beacon)
        assert srp.state is SrpState.OPERATIONAL


class TestConsensusAndFormation:
    def test_representative_forms_ring_on_consensus(self):
        scheduler, srp, transport, _ = make_srp(node_id=1, members=(1, 2))
        # Token loss pushes us into gather.
        srp._enter_gather("test")
        # Node 2 echoes exactly our sets: consensus; we are the smallest id.
        srp.on_join(join(2, {1, 2}, ring_seq=4))
        assert srp.state is SrpState.COMMIT
        assert transport.commits
        commit, dest = transport.commits[-1]
        assert commit.members == (1, 2)
        assert dest == 2
        assert commit.ring_id.seq > 4
        assert commit.info[1].old_ring_id == RingId(4, 1)

    def test_non_representative_waits_in_gather(self):
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2))
        srp._enter_gather("test")
        srp.on_join(join(1, {1, 2}, ring_seq=4))
        assert srp.state is SrpState.GATHER
        assert not transport.commits

    def test_mismatched_views_block_consensus(self):
        scheduler, srp, transport, _ = make_srp(node_id=1, members=(1, 2))
        srp._enter_gather("test")
        srp.on_join(join(2, {1, 2, 9}, ring_seq=4))  # 2 knows about 9
        # Our set grew; 2's view no longer equals ours: no commit yet.
        assert srp.state is SrpState.GATHER

    def test_silent_node_moved_to_fail_set_by_timer(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=1, members=(1, 2, 3), consensus_timeout=0.05)
        srp._enter_gather("test")
        srp.on_join(join(2, {1, 2, 3}, ring_seq=4))
        # Node 3 never joins; two consensus periods pass.
        scheduler.run_until(scheduler.now() + 0.12)
        assert 3 in srp._fail_set

    def test_singleton_forms_ring_alone(self):
        scheduler, srp, transport, _ = make_srp(start=False,
                                                consensus_timeout=0.02)
        srp.start(None)
        scheduler.run_until(0.1)
        # The commit token to self travels via the transport.
        assert transport.commits
        assert transport.commits[0][1] == 1


class TestCommitTokenHandling:
    def _gathered(self, node_id=2, members=(1, 2)):
        scheduler, srp, transport, log = make_srp(node_id=node_id,
                                                  members=members)
        srp._enter_gather("test")
        return scheduler, srp, transport, log

    def _commit(self, ring_seq=8, members=(1, 2), rotation=0, info=None):
        return CommitToken(ring_id=RingId(ring_seq, min(members)),
                           members=tuple(members), rotation=rotation,
                           info=dict(info or {}))

    def test_first_pass_fills_info_and_forwards(self):
        scheduler, srp, transport, _ = self._gathered()
        commit = self._commit(info={1: MemberInfo(RingId(4, 1), 0, 0)})
        srp.on_commit_token(commit)
        assert srp.state is SrpState.COMMIT
        forwarded, dest = transport.commits[-1]
        assert 2 in forwarded.info
        assert dest == 1  # successor of 2 on the (1, 2) ring

    def test_non_member_ignores(self):
        scheduler, srp, transport, _ = self._gathered()
        srp.on_commit_token(self._commit(members=(1, 3)))
        assert srp.state is SrpState.GATHER

    def test_stale_ring_seq_ignored(self):
        scheduler, srp, transport, _ = self._gathered()
        srp.on_commit_token(self._commit(ring_seq=0))
        assert srp.state is SrpState.GATHER

    def test_duplicate_commit_token_ignored(self):
        scheduler, srp, transport, _ = self._gathered()
        commit = self._commit(info={1: MemberInfo(RingId(4, 1), 0, 0)})
        srp.on_commit_token(commit)
        sent = len(transport.commits)
        srp.on_commit_token(commit.copy())
        assert len(transport.commits) == sent

    def test_second_pass_enters_recovery(self):
        scheduler, srp, transport, _ = self._gathered()
        info = {1: MemberInfo(RingId(4, 1), my_aru=0, high_seq=0),
                2: MemberInfo(RingId(4, 1), my_aru=0, high_seq=0)}
        srp.on_commit_token(self._commit(rotation=1, info=info))
        assert srp.state is SrpState.RECOVERY
        assert srp.ring_id.seq == 8
        # Forwarded the rotation-1 token onwards.
        assert transport.commits[-1][0].rotation == 1


class TestRecoveryPlanning:
    def test_designated_retransmitter_is_lowest_holder(self):
        """For each missing old-ring seq, the smallest node id whose aru
        covers it rebroadcasts (it provably holds the packet)."""
        scheduler, srp, transport, _ = make_srp(node_id=2, members=(1, 2, 3))
        old_ring = srp.ring_id
        for seq in (1, 2, 3, 4):
            srp.on_data(data_packet(seq, old_ring))
        srp._enter_gather("test")
        info = {1: MemberInfo(old_ring, my_aru=1, high_seq=4),
                2: MemberInfo(old_ring, my_aru=4, high_seq=4),
                3: MemberInfo(old_ring, my_aru=2, high_seq=4)}
        commit = CommitToken(ring_id=RingId(8, 1), members=(1, 2, 3),
                             rotation=1, info=info)
        srp.on_commit_token(commit)
        assert srp.state is SrpState.RECOVERY
        # low = 1 (min aru); seqs 2..4 need recovery.  Node 3 covers seq 2
        # (ids: 3's aru=2 but 2's aru=4 and 2<3 -> node 2 designated for 2,
        # 3, 4)... node 2 is the smallest id with aru >= seq for all three.
        pending_seqs = [p.seq for p in srp._recovery_pending]
        assert pending_seqs == [2, 3, 4]

    def test_not_designated_when_lower_id_holds(self):
        scheduler, srp, transport, _ = make_srp(node_id=3, members=(1, 2, 3))
        old_ring = srp.ring_id
        for seq in (1, 2, 3):
            srp.on_data(data_packet(seq, old_ring))
        srp._enter_gather("test")
        info = {1: MemberInfo(old_ring, my_aru=3, high_seq=3),
                2: MemberInfo(old_ring, my_aru=1, high_seq=3),
                3: MemberInfo(old_ring, my_aru=3, high_seq=3)}
        commit = CommitToken(ring_id=RingId(8, 1), members=(1, 2, 3),
                             rotation=1, info=info)
        srp.on_commit_token(commit)
        # Node 1 (smaller id, same coverage) is designated, not us.
        assert srp._recovery_pending == []

    def test_recovery_token_broadcasts_encapsulated_and_completes(self):
        scheduler, srp, transport, log = make_srp(node_id=1, members=(1, 2))
        old_ring = srp.ring_id
        srp.on_data(data_packet(1, old_ring, payload=b"old"))
        srp._enter_gather("test")
        info = {1: MemberInfo(old_ring, my_aru=1, high_seq=1),
                2: MemberInfo(old_ring, my_aru=0, high_seq=1)}
        new_ring = RingId(8, 1)
        commit = CommitToken(ring_id=new_ring, members=(1, 2),
                             rotation=1, info=info)
        srp.on_commit_token(commit)
        assert [p.seq for p in srp._recovery_pending] == [1]
        # Regular token of the new ring arrives: we broadcast the
        # encapsulated old packet.
        srp.on_token(Token(ring_id=new_ring, seq=0, rotation=0))
        encap = [p for p in transport.data if p.ring_id == new_ring]
        assert encap
        # Second visit: nothing pending, caught up -> our done vote.
        token2 = Token(ring_id=new_ring, seq=transport.tokens[-1][0].seq,
                       rotation=1, done_count=1)
        srp.on_token(token2)
        assert srp.state is SrpState.OPERATIONAL
        # Transitional + regular config changes delivered.
        assert [c.transitional for c in log.config_changes][-2:] == [True, False]
