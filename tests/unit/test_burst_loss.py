"""Unit tests for the Gilbert-Elliott burst-loss model."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.net.faults import FaultPlan, GilbertElliottLoss, NetworkFaultModel


class TestGilbertElliottLoss:
    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            GilbertElliottLoss(1.5, 0.1)
        with pytest.raises(ConfigError):
            GilbertElliottLoss(0.1, -0.1)
        with pytest.raises(ConfigError):
            GilbertElliottLoss(0.1, 0.1, bad_loss=2.0)

    def test_never_bad_means_no_loss(self):
        model = GilbertElliottLoss(0.0, 0.5)
        rng = random.Random(1)
        assert not any(model.frame_lost(rng) for _ in range(1000))
        assert model.average_loss == 0.0

    def test_always_bad_loses_everything(self):
        model = GilbertElliottLoss(1.0, 0.0, bad_loss=1.0)
        rng = random.Random(1)
        model.frame_lost(rng)  # enter bad state
        assert all(model.frame_lost(rng) for _ in range(100))
        assert model.average_loss == 1.0

    def test_average_loss_matches_stationary_rate(self):
        model = GilbertElliottLoss(0.01, 0.2, bad_loss=1.0)
        rng = random.Random(7)
        losses = sum(model.frame_lost(rng) for _ in range(200_000))
        assert losses / 200_000 == pytest.approx(model.average_loss, rel=0.15)

    def test_losses_are_bursty(self):
        """Loss runs must be much longer than i.i.d. loss would produce."""
        model = GilbertElliottLoss(0.002, 0.1, bad_loss=1.0)
        rng = random.Random(3)
        outcomes = [model.frame_lost(rng) for _ in range(100_000)]
        runs, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        assert mean_run > 3.0  # i.i.d. loss at the same rate gives ~1.02
        assert model.bursts == pytest.approx(len(runs), abs=len(runs) * 0.2 + 2)


class TestFaultPlanBurstLoss:
    def test_plan_installs_model(self):
        plan = FaultPlan().set_burst_loss(at=1.0, network=0,
                                          p_good_to_bad=0.01,
                                          p_bad_to_good=0.2)
        model = NetworkFaultModel()
        plan.events[0].apply(model)
        assert model.burst_loss is not None
        assert model.burst_loss.average_loss > 0

    def test_plan_can_disable(self):
        model = NetworkFaultModel()
        FaultPlan().set_burst_loss(at=0.0, network=0, p_good_to_bad=0.01,
                                   p_bad_to_good=0.2).events[0].apply(model)
        FaultPlan().set_burst_loss(at=0.0, network=0, p_good_to_bad=0.0,
                                   p_bad_to_good=0.2).events[0].apply(model)
        assert model.burst_loss is None

    def test_heal_clears_burst_model(self):
        model = NetworkFaultModel()
        model.burst_loss = GilbertElliottLoss(0.01, 0.2)
        model.heal()
        assert model.burst_loss is None


class TestEndToEndBurstLoss:
    def test_ring_survives_bursty_network(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import drain, make_cluster
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE, seed=9)
        cluster.apply_fault_plan(FaultPlan().set_burst_loss(
            at=0.0, network=0, p_good_to_bad=0.01, p_bad_to_good=0.15))
        cluster.start()
        for i in range(80):
            cluster.nodes[1 + i % 4].submit(f"b{i:03d}".encode())
        drain(cluster, timeout=30.0)
        cluster.assert_total_order()
        assert all(len(n.log.payloads) == 80 for n in cluster.nodes.values())
        assert cluster.lans[0].stats.frames_lost > 0
        # A burst on ONE of two active networks is masked: no rtr needed.
        assert sum(n.srp.stats.retransmission_requests
                   for n in cluster.nodes.values()) == 0