"""Unit tests for the wire packet dataclasses."""

from __future__ import annotations

import pytest

from repro.types import RingId
from repro.wire.packets import (
    CHUNK_HEADER_BYTES,
    Chunk,
    ChunkFlags,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    PacketType,
    Token,
    packet_type_of,
)

RING = RingId(seq=4, representative=1)


class TestChunk:
    def test_whole_sets_both_flags(self):
        chunk = Chunk.whole(5, b"abc")
        assert chunk.is_first and chunk.is_last
        assert chunk.kind is ChunkKind.APP

    def test_fragment_flags(self):
        first = Chunk(ChunkKind.APP, 1, int(ChunkFlags.FIRST), b"a")
        middle = Chunk(ChunkKind.APP, 1, 0, b"b")
        last = Chunk(ChunkKind.APP, 1, int(ChunkFlags.LAST), b"c")
        assert first.is_first and not first.is_last
        assert not middle.is_first and not middle.is_last
        assert last.is_last and not last.is_first

    def test_wire_size_includes_header(self):
        assert Chunk.whole(1, b"x" * 10).wire_size() == CHUNK_HEADER_BYTES + 10


class TestDataPacket:
    def test_wire_size_sums_chunks(self):
        packet = DataPacket(sender=1, ring_id=RING, seq=1,
                            chunks=(Chunk.whole(1, b"x" * 10),
                                    Chunk.whole(2, b"y" * 20)))
        assert packet.wire_size() == 2 * CHUNK_HEADER_BYTES + 30

    def test_packet_type(self):
        packet = DataPacket(sender=1, ring_id=RING, seq=1, chunks=())
        assert packet_type_of(packet) is PacketType.DATA


class TestToken:
    def test_stamp_orders_by_seq_then_rotation(self):
        ring = RING
        assert Token(ring, seq=5, rotation=0).stamp < Token(ring, seq=6, rotation=0).stamp
        assert Token(ring, seq=5, rotation=0).stamp < Token(ring, seq=5, rotation=1).stamp

    def test_copy_is_deep_for_rtr(self):
        token = Token(RING, seq=5, rtr=[1, 2])
        clone = token.copy()
        clone.rtr.append(3)
        assert token.rtr == [1, 2]

    def test_wire_size_grows_with_rtr(self):
        empty = Token(RING).wire_size()
        loaded = Token(RING, rtr=[1, 2, 3]).wire_size()
        assert loaded > empty

    def test_packet_type(self):
        assert packet_type_of(Token(RING)) is PacketType.TOKEN


class TestJoinMessage:
    def test_wire_size_scales_with_sets(self):
        small = JoinMessage(1, frozenset({1}), frozenset(), 0)
        large = JoinMessage(1, frozenset(range(10)), frozenset(range(5)), 0)
        assert large.wire_size() > small.wire_size()

    def test_packet_type(self):
        join = JoinMessage(1, frozenset({1}), frozenset(), 0)
        assert packet_type_of(join) is PacketType.JOIN


class TestCommitToken:
    def test_successor_wraps(self):
        commit = CommitToken(ring_id=RING, members=(1, 2, 3))
        assert commit.successor_of(3) == 1

    def test_copy_is_deep_for_info(self):
        commit = CommitToken(ring_id=RING, members=(1, 2),
                             info={1: MemberInfo(RING, 0, 0)})
        clone = commit.copy()
        clone.info[2] = MemberInfo(RING, 1, 1)
        assert 2 not in commit.info

    def test_packet_type(self):
        commit = CommitToken(ring_id=RING, members=(1,))
        assert packet_type_of(commit) is PacketType.COMMIT_TOKEN


def test_packet_type_of_rejects_non_packet():
    with pytest.raises(TypeError):
        packet_type_of(object())
