"""Unit tests for core value types."""

from __future__ import annotations

import pytest

from repro.types import (
    ConfigurationChange,
    DeliveredMessage,
    DeliveryLog,
    FaultKind,
    FaultReport,
    Membership,
    RingId,
)


class TestRingId:
    def test_ordering_by_seq_then_representative(self):
        assert RingId(4, 1) < RingId(8, 1)
        assert RingId(4, 1) < RingId(4, 2)

    def test_successor_advances_by_stride(self):
        ring = RingId(4, 1)
        nxt = ring.successor(representative=3)
        assert nxt.seq == 8
        assert nxt.representative == 3
        assert nxt > ring

    def test_hashable(self):
        assert len({RingId(4, 1), RingId(4, 1), RingId(8, 1)}) == 2


class TestMembership:
    def test_successor_wraps_around(self):
        members = Membership(RingId(4, 1), (1, 3, 5))
        assert members.successor_of(1) == 3
        assert members.successor_of(3) == 5
        assert members.successor_of(5) == 1

    def test_singleton_successor_is_self(self):
        members = Membership(RingId(4, 1), (7,))
        assert members.successor_of(7) == 7

    def test_representative_is_smallest(self):
        assert Membership(RingId(4, 2), (9, 2, 5)).representative == 2

    def test_contains_and_len(self):
        members = Membership(RingId(4, 1), (1, 2))
        assert 1 in members
        assert 3 not in members
        assert len(members) == 2

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            Membership(RingId(4, 1), (1, 1, 2))

    def test_successor_of_nonmember_raises(self):
        members = Membership(RingId(4, 1), (1, 2))
        with pytest.raises(ValueError):
            members.successor_of(3)


class TestFaultReport:
    def test_str_contains_essentials(self):
        report = FaultReport(node=2, network=1, kind=FaultKind.NETWORK_FAILED,
                             time=1.25, detail="threshold")
        text = str(report)
        assert "node 2" in text
        assert "network 1" in text
        assert "network_failed" in text
        assert "threshold" in text


class TestDeliveryLog:
    def _message(self, seq: int) -> DeliveredMessage:
        return DeliveredMessage(sender=1, seq=seq, payload=b"p",
                                ring_id=RingId(4, 1))

    def test_records_everything(self):
        log = DeliveryLog()
        log.on_deliver(self._message(1))
        log.on_config_change(ConfigurationChange(
            Membership(RingId(4, 1), (1,)), transitional=True))
        log.on_fault_report(FaultReport(1, 0, FaultKind.NETWORK_FAILED, 0.0))
        assert len(log.messages) == 1
        assert len(log.config_changes) == 1
        assert len(log.fault_reports) == 1
        assert log.payloads == [b"p"]

    def test_last_regular_membership_skips_transitional(self):
        log = DeliveryLog()
        regular = Membership(RingId(4, 1), (1, 2))
        log.on_config_change(ConfigurationChange(regular, transitional=False))
        log.on_config_change(ConfigurationChange(
            Membership(RingId(8, 1), (1,)), transitional=True))
        assert log.last_regular_membership() == regular

    def test_last_regular_membership_empty(self):
        assert DeliveryLog().last_regular_membership() is None
