"""Unit tests for the send queue, packer and reassembler."""

from __future__ import annotations

import pytest

from repro.errors import SendQueueFullError
from repro.srp.packing import Packer, Reassembler
from repro.srp.send_queue import SendQueue
from repro.wire.packets import CHUNK_HEADER_BYTES, ChunkKind


class TestSendQueue:
    def test_fifo(self):
        queue = SendQueue(capacity=10)
        queue.enqueue(b"a")
        queue.enqueue(b"b")
        assert queue.dequeue() == b"a"
        assert queue.dequeue() == b"b"
        assert queue.dequeue() is None

    def test_capacity_enforced(self):
        queue = SendQueue(capacity=2)
        queue.enqueue(b"a")
        queue.enqueue(b"b")
        assert queue.full
        with pytest.raises(SendQueueFullError):
            queue.enqueue(b"c")

    def test_try_enqueue(self):
        queue = SendQueue(capacity=1)
        assert queue.try_enqueue(b"a")
        assert not queue.try_enqueue(b"b")

    def test_pending_bytes(self):
        queue = SendQueue(capacity=10)
        queue.enqueue(b"abc")
        queue.enqueue(b"de")
        assert queue.pending_bytes == 5
        queue.dequeue()
        assert queue.pending_bytes == 2

    def test_peek_does_not_consume(self):
        queue = SendQueue(capacity=10)
        queue.enqueue(b"a")
        assert queue.peek() == b"a"
        assert len(queue) == 1


class TestPacker:
    def _packer(self, max_payload=100, packing=True):
        queue = SendQueue(capacity=100)
        return queue, Packer(queue, max_payload, enable_packing=packing)

    def test_empty_queue_yields_nothing(self):
        _, packer = self._packer()
        assert packer.next_packet_chunks() == []
        assert not packer.has_pending()

    def test_packs_multiple_small_messages(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"x" * 20)
        queue.enqueue(b"y" * 20)
        queue.enqueue(b"z" * 20)
        chunks = packer.next_packet_chunks()
        assert len(chunks) == 3
        assert sum(c.wire_size() for c in chunks) <= 100

    def test_respects_payload_budget(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"x" * 50)
        queue.enqueue(b"y" * 50)  # 50+8 headers each: only one fits
        chunks = packer.next_packet_chunks()
        assert [c.data for c in chunks] == [b"x" * 50]
        chunks = packer.next_packet_chunks()
        assert [c.data for c in chunks] == [b"y" * 50]

    def test_packing_disabled_one_message_per_packet(self):
        queue, packer = self._packer(max_payload=100, packing=False)
        queue.enqueue(b"a" * 10)
        queue.enqueue(b"b" * 10)
        assert len(packer.next_packet_chunks()) == 1
        assert len(packer.next_packet_chunks()) == 1

    def test_fragments_oversized_message(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"m" * 250)
        pieces = []
        while packer.has_pending():
            pieces.extend(packer.next_packet_chunks())
        assert len(pieces) == 3  # 92 + 92 + 66 bytes of data
        assert pieces[0].is_first and not pieces[0].is_last
        assert not pieces[1].is_first and not pieces[1].is_last
        assert pieces[2].is_last and not pieces[2].is_first
        assert b"".join(p.data for p in pieces) == b"m" * 250
        assert all(p.msg_id == pieces[0].msg_id for p in pieces)

    def test_exact_fit_is_not_fragmented(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"m" * (100 - CHUNK_HEADER_BYTES))
        chunks = packer.next_packet_chunks()
        assert len(chunks) == 1
        assert chunks[0].is_first and chunks[0].is_last

    def test_fragment_resumes_before_new_messages(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"big" * 80)   # 240 bytes -> fragments
        queue.enqueue(b"small")
        first = packer.next_packet_chunks()
        assert len(first) == 1 and first[0].is_first
        second = packer.next_packet_chunks()
        # Continuation of the big message first; small may ride along after
        # the big message ends.
        assert second[0].msg_id == first[0].msg_id

    def test_backlog_counts_partial(self):
        queue, packer = self._packer(max_payload=100)
        queue.enqueue(b"m" * 250)
        queue.enqueue(b"n")
        assert packer.backlog() == 2
        packer.next_packet_chunks()  # first fragment of m
        assert packer.backlog() == 2  # m still partially pending + n

    def test_msg_ids_unique_across_messages(self):
        queue, packer = self._packer()
        queue.enqueue(b"a")
        queue.enqueue(b"b")
        chunks = packer.next_packet_chunks()
        assert chunks[0].msg_id != chunks[1].msg_id


class TestReassembler:
    def test_whole_message_passthrough(self):
        reassembler = Reassembler()
        from repro.wire.packets import Chunk
        assert reassembler.feed(1, Chunk.whole(1, b"data")) == b"data"

    def test_fragmented_roundtrip_via_packer(self):
        queue = SendQueue(capacity=10)
        packer = Packer(queue, max_payload=64)
        payload = bytes(range(256))
        queue.enqueue(payload)
        reassembler = Reassembler()
        result = None
        while packer.has_pending():
            for chunk in packer.next_packet_chunks():
                out = reassembler.feed(3, chunk)
                if out is not None:
                    result = out
        assert result == payload
        assert reassembler.pending_count() == 0

    def test_interleaved_senders(self):
        from repro.wire.packets import Chunk, ChunkFlags, ChunkKind
        reassembler = Reassembler()
        a1 = Chunk(ChunkKind.APP, 1, int(ChunkFlags.FIRST), b"A1")
        b1 = Chunk(ChunkKind.APP, 1, int(ChunkFlags.FIRST), b"B1")
        a2 = Chunk(ChunkKind.APP, 1, int(ChunkFlags.LAST), b"A2")
        b2 = Chunk(ChunkKind.APP, 1, int(ChunkFlags.LAST), b"B2")
        assert reassembler.feed(1, a1) is None
        assert reassembler.feed(2, b1) is None
        assert reassembler.feed(1, a2) == b"A1A2"
        assert reassembler.feed(2, b2) == b"B1B2"

    def test_orphan_tail_dropped(self):
        from repro.wire.packets import Chunk, ChunkFlags, ChunkKind
        reassembler = Reassembler()
        tail = Chunk(ChunkKind.APP, 9, int(ChunkFlags.LAST), b"tail")
        assert reassembler.feed(1, tail) is None

    def test_clear_discards_partials(self):
        from repro.wire.packets import Chunk, ChunkFlags, ChunkKind
        reassembler = Reassembler()
        reassembler.feed(1, Chunk(ChunkKind.APP, 1, int(ChunkFlags.FIRST), b"x"))
        assert reassembler.pending_count() == 1
        reassembler.clear()
        assert reassembler.pending_count() == 0
