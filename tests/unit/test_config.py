"""Unit tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, LanConfig, TotemConfig
from repro.errors import ConfigError
from repro.types import ReplicationStyle


class TestTotemConfig:
    def test_defaults_are_valid(self):
        config = TotemConfig()
        assert config.replication is ReplicationStyle.ACTIVE
        assert config.num_networks == 2

    def test_none_requires_single_network(self):
        TotemConfig(replication=ReplicationStyle.NONE, num_networks=1)
        with pytest.raises(ConfigError):
            TotemConfig(replication=ReplicationStyle.NONE, num_networks=2)

    @pytest.mark.parametrize("style", (ReplicationStyle.ACTIVE,
                                       ReplicationStyle.PASSIVE))
    def test_redundant_styles_require_two_networks(self, style):
        with pytest.raises(ConfigError):
            TotemConfig(replication=style, num_networks=1)

    def test_active_passive_requires_three_networks(self):
        with pytest.raises(ConfigError):
            TotemConfig(replication=ReplicationStyle.ACTIVE_PASSIVE,
                        num_networks=2)
        TotemConfig(replication=ReplicationStyle.ACTIVE_PASSIVE,
                    num_networks=3, active_passive_k=2)

    @pytest.mark.parametrize("k", (0, 1, 3, 4))
    def test_active_passive_k_must_be_strictly_between(self, k):
        with pytest.raises(ConfigError):
            TotemConfig(replication=ReplicationStyle.ACTIVE_PASSIVE,
                        num_networks=3, active_passive_k=k)

    def test_zero_networks_rejected(self):
        with pytest.raises(ConfigError):
            TotemConfig(num_networks=0)

    @pytest.mark.parametrize("field", (
        "active_token_timeout", "passive_token_timeout",
        "token_retransmit_interval", "token_loss_timeout",
        "join_timeout", "consensus_timeout"))
    def test_timers_must_be_positive(self, field):
        with pytest.raises(ConfigError):
            TotemConfig(**{field: 0.0})

    def test_window_parameters_validated(self):
        with pytest.raises(ConfigError):
            TotemConfig(window_size=0)
        with pytest.raises(ConfigError):
            TotemConfig(max_messages_per_token=0)

    def test_tiny_packet_payload_rejected(self):
        with pytest.raises(ConfigError):
            TotemConfig(max_packet_payload=16)

    def test_with_style_picks_minimum_networks(self):
        base = TotemConfig()
        assert base.with_style(ReplicationStyle.NONE).num_networks == 1
        assert base.with_style(ReplicationStyle.PASSIVE).num_networks == 2
        assert base.with_style(
            ReplicationStyle.ACTIVE_PASSIVE).num_networks == 3

    def test_with_style_respects_explicit_count(self):
        config = TotemConfig().with_style(ReplicationStyle.PASSIVE,
                                          num_networks=4)
        assert config.num_networks == 4

    def test_frozen(self):
        with pytest.raises(Exception):
            TotemConfig().num_networks = 5  # type: ignore[misc]


class TestLanConfig:
    def test_paper_frame_arithmetic(self):
        lan = LanConfig()
        assert lan.max_frame == 1518
        assert lan.frame_overhead == 94
        assert lan.max_payload == 1424  # the paper's §8 number

    def test_wire_time_scales_with_bytes(self):
        lan = LanConfig()
        assert lan.wire_time(1424) > lan.wire_time(100)

    def test_wire_time_of_full_frame(self):
        lan = LanConfig()
        assert lan.wire_time(1424) == pytest.approx(1518 * 8 / 100e6)

    def test_minimum_frame_enforced(self):
        # The 94-byte overhead already exceeds the 64-byte Ethernet minimum,
        # so an empty payload still costs 94 bytes on the wire.
        lan = LanConfig()
        assert lan.wire_time(0) == pytest.approx(94 * 8 / 100e6)
        tiny = LanConfig(frame_overhead=10, min_frame=64)
        assert tiny.wire_time(0) == pytest.approx(64 * 8 / 100e6)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            LanConfig(bandwidth_bps=0)

    def test_invalid_loss_rate(self):
        with pytest.raises(ConfigError):
            LanConfig(loss_rate=1.0)
        with pytest.raises(ConfigError):
            LanConfig(loss_rate=-0.1)

    def test_frame_must_exceed_overhead(self):
        with pytest.raises(ConfigError):
            LanConfig(max_frame=90, frame_overhead=94)


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)
