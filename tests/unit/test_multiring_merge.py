"""Unit tests for the cross-ring merge clock (repro.multiring.merge).

The merge rules under test are the Multi-Ring Paxos skip/merge-clock
discipline: markers close consecutive rounds per group, a round is
emitted only when every subscribed group has closed it, emission is in
ascending group order, and idle rounds (skips) cost nothing.
"""

from __future__ import annotations

from typing import NamedTuple

import pytest

from repro.errors import ConfigError, SimulationError
from repro.multiring import (
    DATA_PREFIX,
    MARKER_PREFIX,
    CrossRingMerger,
    MergedEntry,
    decode_payload,
    encode_data,
    encode_marker,
)


class Msg(NamedTuple):
    """The slice of a delivered message the merger reads."""

    sender: int
    seq: int
    payload: bytes


def data(sender: int, seq: int, body: bytes) -> Msg:
    return Msg(sender, seq, encode_data(body))


def marker(group: int, round_no: int, seq: int = 99) -> Msg:
    return Msg(sender=group * 1000 + 1, seq=seq,
               payload=encode_marker(group, round_no))


class TestPayloadCodec:
    def test_data_round_trip(self):
        kind, body = decode_payload(encode_data(b"hello"))
        assert (kind, body) == ("data", b"hello")

    def test_marker_round_trip(self):
        kind, body = decode_payload(encode_marker(7, 41))
        assert (kind, body) == ("marker", (7, 41))

    def test_unprefixed_payload_is_raw(self):
        kind, body = decode_payload(b"\x07legacy")
        assert (kind, body) == ("raw", b"\x07legacy")

    def test_truncated_marker_is_raw(self):
        kind, _ = decode_payload(MARKER_PREFIX + b"\x00\x01")
        assert kind == "raw"

    def test_empty_data_frame(self):
        assert decode_payload(DATA_PREFIX) == ("data", b"")

    def test_merged_entry_line_format(self):
        entry = MergedEntry(round=3, group=1, sender=1002, seq=5,
                            payload=b"\xab\xcd")
        assert entry.line() == (
            b"round=3 group=1 sender=1002 seq=5 payload=abcd\n")


class TestMergerConstruction:
    def test_rejects_empty_subscription(self):
        with pytest.raises(ConfigError, match="at least one"):
            CrossRingMerger([])

    def test_rejects_duplicate_groups(self):
        with pytest.raises(ConfigError, match="duplicate"):
            CrossRingMerger([0, 1, 0])

    def test_groups_sorted(self):
        assert CrossRingMerger([2, 0, 1]).groups == (0, 1, 2)


class TestMergerRules:
    def test_feed_unsubscribed_group_rejected(self):
        merger = CrossRingMerger([0, 1])
        with pytest.raises(SimulationError, match="not subscribed"):
            merger.feed(2, data(2001, 1, b"x"))

    def test_cross_ring_marker_rejected(self):
        merger = CrossRingMerger([0, 1])
        with pytest.raises(SimulationError, match="marker for group"):
            merger.feed(0, marker(1, 1))

    def test_non_consecutive_marker_rejected(self):
        merger = CrossRingMerger([0])
        with pytest.raises(SimulationError, match="consecutive"):
            merger.feed(0, marker(0, 2))

    def test_round_emitted_only_when_all_groups_closed(self):
        merger = CrossRingMerger([0, 1])
        merger.feed(0, data(1, 1, b"a"))
        merger.feed(0, marker(0, 1))
        assert merger.merged == []  # group 1 has not closed round 1
        assert merger.rounds_closed(0) == 1
        merger.feed(1, marker(1, 1))
        assert merger.rounds_emitted == 1
        assert [(e.group, e.payload) for e in merger.merged] == [(0, b"a")]

    def test_rounds_concatenate_groups_ascending(self):
        merger = CrossRingMerger([1, 0])
        merger.feed(1, data(1001, 1, b"from-ring-1"))
        merger.feed(0, data(1, 1, b"from-ring-0"))
        merger.feed(1, marker(1, 1))
        merger.feed(0, marker(0, 1))
        assert [e.group for e in merger.merged] == [0, 1]

    def test_skip_rounds_cost_nothing(self):
        """An idle ring's marker is a Multi-Ring Paxos skip message."""
        merger = CrossRingMerger([0, 1])
        for round_no in (1, 2, 3):
            merger.feed(0, marker(0, round_no))
            merger.feed(1, marker(1, round_no))
        assert merger.rounds_emitted == 3
        assert merger.merged == []

    def test_lagging_group_releases_backlog(self):
        merger = CrossRingMerger([0, 1])
        for round_no in (1, 2, 3):
            merger.feed(0, data(1, round_no, b"r%d" % round_no))
            merger.feed(0, marker(0, round_no))
        assert merger.rounds_emitted == 0
        merger.feed(1, marker(1, 1))
        assert merger.rounds_emitted == 1
        merger.feed(1, marker(1, 2))
        merger.feed(1, marker(1, 3))
        assert merger.rounds_emitted == 3
        assert [e.payload for e in merger.merged] == [b"r1", b"r2", b"r3"]

    def test_raw_payload_kept_verbatim(self):
        merger = CrossRingMerger([0])
        merger.feed(0, Msg(1, 1, b"\x07legacy"))
        merger.feed(0, marker(0, 1))
        assert merger.merged[0].payload == b"\x07legacy"

    def test_on_deliver_callback_sees_every_entry(self):
        seen = []
        merger = CrossRingMerger([0], on_deliver=seen.append)
        merger.feed(0, data(1, 1, b"a"))
        merger.feed(0, data(2, 2, b"b"))
        merger.feed(0, marker(0, 1))
        assert [e.payload for e in seen] == [b"a", b"b"]
        assert seen == merger.merged

    def test_delivery_order_within_round_preserved(self):
        merger = CrossRingMerger([0])
        for seq in range(5):
            merger.feed(0, data(sender=1 + seq % 3, seq=seq,
                                body=str(seq).encode()))
        merger.feed(0, marker(0, 1))
        assert [e.seq for e in merger.merged] == [0, 1, 2, 3, 4]


class TestMergerLog:
    def _fill(self, merger: CrossRingMerger) -> None:
        merger.feed(0, data(1, 1, b"alpha"))
        merger.feed(1, data(1001, 1, b"beta"))
        merger.feed(0, marker(0, 1))
        merger.feed(1, marker(1, 1))
        merger.feed(1, marker(1, 2))
        merger.feed(0, marker(0, 2))

    def test_identically_fed_mergers_agree_byte_for_byte(self):
        a, b = CrossRingMerger([0, 1]), CrossRingMerger([0, 1])
        self._fill(a)
        self._fill(b)
        assert a.log_bytes() == b.log_bytes()
        assert a.digest() == b.digest()

    def test_log_is_the_concatenated_lines(self):
        merger = CrossRingMerger([0, 1])
        self._fill(merger)
        assert merger.log_bytes() == b"".join(
            e.line() for e in merger.merged)
        assert b"payload=" + b"alpha".hex().encode() in merger.log_bytes()

    def test_digest_is_short_stable_hex(self):
        merger = CrossRingMerger([0, 1])
        self._fill(merger)
        digest = merger.digest()
        assert len(digest) == 16
        int(digest, 16)  # hex
