"""Unit tests for the binary codec."""

from __future__ import annotations

import pytest

from repro.errors import ChecksumError, CodecError
from repro.types import RingId
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.packets import (
    Chunk,
    ChunkFlags,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    Token,
)

RING = RingId(seq=12, representative=3)


def sample_data_packet() -> DataPacket:
    return DataPacket(
        sender=7, ring_id=RING, seq=99,
        chunks=(Chunk.whole(1, b"hello"),
                Chunk(ChunkKind.ENCAPSULATED, 42, int(ChunkFlags.FIRST), b"frag"),
                Chunk.whole(2, b"")))


def sample_token() -> Token:
    return Token(ring_id=RING, seq=100, aru=90, aru_id=2, fcc=40, backlog=7,
                 rotation=12, rtr=[91, 93, 95], done_count=3)


def sample_join() -> JoinMessage:
    return JoinMessage(sender=5, proc_set=frozenset({1, 2, 5}),
                       fail_set=frozenset({9}), ring_seq=16)


def sample_commit() -> CommitToken:
    return CommitToken(
        ring_id=RING, members=(1, 2, 5), rotation=1,
        info={1: MemberInfo(RingId(8, 1), 10, 12),
              5: MemberInfo(RingId(4, 5), 0, 0)})


ALL_SAMPLES = [sample_data_packet, sample_token, sample_join, sample_commit]


@pytest.mark.parametrize("factory", ALL_SAMPLES, ids=lambda f: f.__name__)
def test_roundtrip(factory):
    packet = factory()
    assert decode_packet(encode_packet(packet)) == packet


def test_empty_data_packet_roundtrip():
    packet = DataPacket(sender=1, ring_id=RING, seq=1, chunks=())
    assert decode_packet(encode_packet(packet)) == packet


def test_large_payload_roundtrip():
    packet = DataPacket(sender=1, ring_id=RING, seq=1,
                        chunks=(Chunk.whole(1, bytes(range(256)) * 64),))
    assert decode_packet(encode_packet(packet)) == packet


def test_corrupted_byte_raises_checksum_error():
    data = bytearray(encode_packet(sample_token()))
    data[10] ^= 0xFF
    with pytest.raises(ChecksumError):
        decode_packet(bytes(data))


def test_corrupted_crc_raises_checksum_error():
    data = bytearray(encode_packet(sample_token()))
    data[-1] ^= 0x01
    with pytest.raises(ChecksumError):
        decode_packet(bytes(data))


def test_too_short_raises():
    with pytest.raises(CodecError):
        decode_packet(b"abc")


def test_bad_magic_raises():
    data = bytearray(encode_packet(sample_join()))
    # Rewrite magic and fix up the CRC so only the magic check can fail.
    import struct
    import zlib
    data[0:2] = b"\x00\x00"
    body = bytes(data[:-4])
    data[-4:] = struct.pack(">I", zlib.crc32(body))
    with pytest.raises(CodecError, match="magic"):
        decode_packet(bytes(data))


def test_bad_version_raises():
    import struct
    import zlib
    data = bytearray(encode_packet(sample_join()))
    data[2] = 99
    body = bytes(data[:-4])
    data[-4:] = struct.pack(">I", zlib.crc32(body))
    with pytest.raises(CodecError, match="version"):
        decode_packet(bytes(data))


def test_unknown_type_raises():
    import struct
    import zlib
    data = bytearray(encode_packet(sample_join()))
    data[3] = 200
    body = bytes(data[:-4])
    data[-4:] = struct.pack(">I", zlib.crc32(body))
    with pytest.raises(CodecError, match="type"):
        decode_packet(bytes(data))


def test_truncated_body_raises():
    import struct
    import zlib
    data = bytearray(encode_packet(sample_data_packet()))
    # Drop payload bytes but keep a valid CRC over the truncated body.
    body = bytes(data[:-20])
    truncated = body + struct.pack(">I", zlib.crc32(body))
    with pytest.raises(CodecError):
        decode_packet(truncated)


def test_encoded_size_tracks_wire_size_convention():
    """Encoded bytes are close to wire_size + fixed header (sanity of the
    sizing convention used by the simulator)."""
    packet = sample_data_packet()
    encoded = len(encode_packet(packet))
    assert encoded >= packet.wire_size()
    assert encoded <= packet.wire_size() + 94  # within the frame overhead
