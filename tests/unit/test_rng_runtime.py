"""Unit tests for the RNG registry and the sim runtime adapter."""

from __future__ import annotations

from repro.sim.rng import RngRegistry
from repro.sim.runtime import Runtime, SimRuntime
from repro.sim.scheduler import EventScheduler


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("loss.net0")
        b = RngRegistry(7).stream("loss.net0")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        registry = RngRegistry(7)
        first = [registry.stream("a").random() for _ in range(5)]
        # Draw heavily from another stream; "a" must be unaffected.
        fresh = RngRegistry(7)
        for _ in range(1000):
            fresh.stream("b").random()
        assert [fresh.stream("a").random() for _ in range(5)] == first

    def test_different_seeds_differ(self):
        assert (RngRegistry(1).stream("x").random()
                != RngRegistry(2).stream("x").random())

    def test_fork_is_deterministic_and_distinct(self):
        parent = RngRegistry(3)
        child_a = parent.fork("lan")
        child_b = RngRegistry(3).fork("lan")
        assert child_a.seed == child_b.seed
        assert child_a.seed != parent.seed


class TestSimRuntime:
    def test_implements_runtime_protocol(self):
        runtime = SimRuntime(EventScheduler())
        assert isinstance(runtime, Runtime)

    def test_now_tracks_scheduler(self):
        scheduler = EventScheduler()
        runtime = SimRuntime(scheduler)
        scheduler.call_after(0.25, lambda: None)
        scheduler.run()
        assert runtime.now() == 0.25

    def test_set_timer_fires_with_args(self):
        scheduler = EventScheduler()
        runtime = SimRuntime(scheduler)
        got = []
        runtime.set_timer(0.1, lambda a, b: got.append((a, b)), 1, 2)
        scheduler.run()
        assert got == [(1, 2)]

    def test_set_timer_cancellable(self):
        scheduler = EventScheduler()
        runtime = SimRuntime(scheduler)
        got = []
        timer = runtime.set_timer(0.1, got.append, "x")
        timer.cancel()
        scheduler.run()
        assert got == []
