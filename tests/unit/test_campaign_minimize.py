"""Unit tests for the delta-debug minimizer (repro.campaign.minimize).

The predicates here are synthetic (no cluster runs), so these tests pin
the ddmin search itself: convergence, 1-minimality, workload preservation
and the crash/restart pairing fix-ups.
"""

import random

import pytest

from repro.campaign.minimize import _rebuild, minimize_scenario
from repro.campaign.scenario import Scenario, TimelineEvent


def loss(at, network, rate=0.1):
    return TimelineEvent(at, "loss", {"network": network, "rate": rate})


def scenario(events, name="case"):
    return Scenario(name=name, num_nodes=4, duration=1.0, events=events)


def needs(*required):
    """Predicate: candidate fails iff it still has all ``required`` events."""
    required = set(required)

    def predicate(candidate):
        return required <= set(candidate.fault_events)

    return predicate


class TestMinimize:
    def test_single_culprit_found(self):
        culprit = loss(0.5, 1, 0.9)
        sc = scenario((loss(0.1, 0), culprit, loss(0.2, 0, 0.2),
                       TimelineEvent(0.6, "heal_all", {}),
                       loss(0.7, 1, 0.05)))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert result.minimized_events == 1
        assert result.scenario.fault_events == (culprit,)
        assert result.original_events == 5

    def test_pair_of_culprits_found(self):
        a, b = loss(0.1, 0, 0.8), loss(0.9, 1, 0.8)
        filler = [loss(0.2 + i * 0.1, i % 2, 0.01) for i in range(6)]
        sc = scenario(tuple([a] + filler + [b]))
        result = minimize_scenario(sc, predicate=needs(a, b))
        assert result.minimized_events == 2
        assert set(result.scenario.fault_events) == {a, b}

    def test_result_is_one_minimal(self):
        a, b, c = loss(0.1, 0, 0.7), loss(0.2, 1, 0.7), loss(0.3, 0, 0.6)
        sc = scenario((a, b, c))
        result = minimize_scenario(sc, predicate=needs(a, b, c))
        # All three are required, so nothing can be removed...
        assert result.minimized_events == 3
        # ...and indeed dropping any one of them makes the predicate pass.
        predicate = needs(a, b, c)
        for keep in ((a, b), (b, c), (a, c)):
            assert not predicate(sc.with_events(keep))

    def test_workload_is_preserved(self):
        burst = TimelineEvent(0.05, "burst",
                              {"node": 1, "count": 5, "size": 32})
        culprit = loss(0.4, 0, 0.9)
        sc = scenario((burst, loss(0.1, 1), culprit))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert burst in result.scenario.events
        assert result.scenario.fault_events == (culprit,)

    def test_orphaned_restart_dropped(self):
        crash = TimelineEvent(0.2, "crash", {"node": 2})
        restart = TimelineEvent(0.5, "restart", {"node": 2})
        culprit = loss(0.1, 0, 0.9)
        sc = scenario((culprit, crash, restart))
        result = minimize_scenario(sc, predicate=needs(culprit))
        # Candidate timelines without the crash must not keep the restart —
        # the DSL would reject it; the minimum here is the loss alone.
        assert result.scenario.fault_events == (culprit,)

    def test_passing_scenario_raises(self):
        sc = scenario((loss(0.1, 0),))
        with pytest.raises(ValueError, match="does not fail"):
            minimize_scenario(sc, predicate=lambda candidate: False)

    def test_minimized_name_is_tagged(self):
        culprit = loss(0.1, 0)
        sc = scenario((culprit,), name="batch-3-active")
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert result.scenario.name == "batch-3-active::min"

    def test_run_budget_respected(self):
        events = tuple(loss(0.01 * i, i % 2, 0.5) for i in range(1, 9))
        sc = scenario(events)
        calls = []

        def predicate(candidate):
            calls.append(1)
            return len(candidate.fault_events) == len(events)

        minimize_scenario(sc, predicate=predicate, max_runs=10)
        # The initial confirmation run plus at most max_runs candidates.
        assert len(calls) <= 11

    def test_summary_mentions_counts(self):
        culprit = loss(0.1, 0)
        sc = scenario((culprit, loss(0.2, 1)))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert "2 -> 1 fault event(s)" in result.summary()

    def test_duplicate_events_are_removable(self):
        # TimelineEvent equality is structural, so two identical entries
        # must be distinguished positionally — a membership set would
        # resurrect the dropped twin and keep both copies forever.
        twin_a = loss(0.3, 0, 0.5)
        twin_b = loss(0.3, 0, 0.5)
        assert twin_a == twin_b
        sc = scenario((twin_a, twin_b))
        result = minimize_scenario(
            sc, predicate=lambda candidate: len(candidate.fault_events) >= 1)
        assert len(result.scenario.fault_events) == 1
        assert result.minimized_events == 1

    def test_repeated_crash_cycles_reduce_to_required_pair(self):
        # Dropping the second crash must not erase the pairing state the
        # first (kept) crash established for the last restart.
        crash1 = TimelineEvent(0.1, "crash", {"node": 2})
        restart1 = TimelineEvent(0.3, "restart", {"node": 2})
        crash2 = TimelineEvent(0.5, "crash", {"node": 2})
        restart2 = TimelineEvent(0.7, "restart", {"node": 2})
        sc = scenario((crash1, restart1, crash2, restart2))
        result = minimize_scenario(sc, predicate=needs(crash1, restart2))
        assert result.scenario.fault_events == (crash1, restart2)


class TestRebuild:
    def test_orphaned_heal_pruned(self):
        part = TimelineEvent(0.2, "partition_all",
                             {"groups": [[1, 2], [3, 4]]})
        heal = TimelineEvent(0.5, "heal_all", {})
        sc = scenario((part, heal))
        assert _rebuild(sc, [heal]).fault_events == ()
        assert _rebuild(sc, [part, heal]).fault_events == (part, heal)

    def test_orphaned_restore_pruned(self):
        fault = loss(0.1, 1, 0.9)
        restore = TimelineEvent(0.4, "restore_network", {"network": 1})
        sc = scenario((fault, restore))
        assert _rebuild(sc, [restore]).fault_events == ()
        assert _rebuild(sc, [fault, restore]).fault_events == (fault, restore)

    def test_restore_of_untouched_network_pruned(self):
        fault = loss(0.1, 1, 0.9)
        restore = TimelineEvent(0.4, "restore_network", {"network": 0})
        sc = scenario((fault, restore))
        # Network 0 was never disturbed: the restore is dead weight even
        # with its neighbour fault kept.
        assert _rebuild(sc, [fault, restore]).fault_events == (fault,)

    def test_heal_kept_after_single_network_partition(self):
        part = TimelineEvent(0.2, "partition",
                             {"network": 0, "groups": [[1, 2], [3, 4]]})
        heal = TimelineEvent(0.5, "heal_all", {})
        sc = scenario((part, heal))
        assert _rebuild(sc, [part, heal]).fault_events == (part, heal)

    def test_fuzz_candidates_stay_valid_and_result_is_minimal(self):
        """Random timelines, random required subsets: every candidate
        `_rebuild` produces must pass DSL validation (construction raises
        otherwise), required events always survive, and the final timeline
        is 1-minimal under the predicate."""
        rng = random.Random(7)
        for _ in range(40):
            events = []
            at = 0.0
            crashed = set()
            for _ in range(rng.randrange(3, 11)):
                at = round(at + rng.uniform(0.01, 0.08), 4)
                kind = rng.choice(
                    ["loss", "drop_frame", "partition_all", "heal_all",
                     "restore_network", "crash", "restart"])
                if kind == "restart" and not crashed:
                    kind = "crash"
                if kind == "loss":
                    events.append(loss(at, rng.randrange(2),
                                       round(rng.uniform(0.1, 0.9), 2)))
                elif kind == "drop_frame":
                    events.append(TimelineEvent(at, "drop_frame", {
                        "network": rng.randrange(2),
                        "src": rng.randrange(1, 5),
                        "serial": rng.randrange(1, 4)}))
                elif kind == "partition_all":
                    events.append(TimelineEvent(
                        at, "partition_all", {"groups": [[1, 2], [3, 4]]}))
                elif kind == "heal_all":
                    events.append(TimelineEvent(at, "heal_all", {}))
                elif kind == "restore_network":
                    events.append(TimelineEvent(
                        at, "restore_network", {"network": rng.randrange(2)}))
                elif kind == "crash":
                    node = rng.randrange(1, 5)
                    if node in crashed:
                        continue
                    crashed.add(node)
                    events.append(TimelineEvent(at, "crash", {"node": node}))
                else:
                    node = rng.choice(sorted(crashed))
                    crashed.discard(node)
                    events.append(TimelineEvent(at, "restart", {"node": node}))
            sc = scenario(tuple(events))
            faults = list(sc.fault_events)
            required = rng.sample(faults, rng.randrange(1, len(faults) + 1))

            def predicate(candidate, required=required):
                remaining = list(candidate.fault_events)
                for event in required:
                    if event in remaining:
                        remaining.remove(event)
                    else:
                        return False
                return True

            if not predicate(_rebuild(sc, faults)):
                # The required sample includes an event that is dead on the
                # full timeline too (e.g. an orphaned heal); nothing to
                # minimize.
                continue
            result = minimize_scenario(sc, predicate=predicate, max_runs=500)
            assert predicate(result.scenario)
            assert result.minimized_events == len(result.scenario.fault_events)
            final = list(result.scenario.fault_events)
            for i in range(len(final)):
                candidate = _rebuild(
                    result.scenario, final[:i] + final[i + 1:])
                assert not predicate(candidate), (
                    f"not 1-minimal: could drop {final[i]}")
