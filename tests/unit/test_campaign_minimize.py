"""Unit tests for the delta-debug minimizer (repro.campaign.minimize).

The predicates here are synthetic (no cluster runs), so these tests pin
the ddmin search itself: convergence, 1-minimality, workload preservation
and the crash/restart pairing fix-ups.
"""

import pytest

from repro.campaign.minimize import minimize_scenario
from repro.campaign.scenario import Scenario, TimelineEvent


def loss(at, network, rate=0.1):
    return TimelineEvent(at, "loss", {"network": network, "rate": rate})


def scenario(events, name="case"):
    return Scenario(name=name, num_nodes=4, duration=1.0, events=events)


def needs(*required):
    """Predicate: candidate fails iff it still has all ``required`` events."""
    required = set(required)

    def predicate(candidate):
        return required <= set(candidate.fault_events)

    return predicate


class TestMinimize:
    def test_single_culprit_found(self):
        culprit = loss(0.5, 1, 0.9)
        sc = scenario((loss(0.1, 0), culprit, loss(0.2, 0, 0.2),
                       TimelineEvent(0.6, "heal_all", {}),
                       loss(0.7, 1, 0.05)))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert result.minimized_events == 1
        assert result.scenario.fault_events == (culprit,)
        assert result.original_events == 5

    def test_pair_of_culprits_found(self):
        a, b = loss(0.1, 0, 0.8), loss(0.9, 1, 0.8)
        filler = [loss(0.2 + i * 0.1, i % 2, 0.01) for i in range(6)]
        sc = scenario(tuple([a] + filler + [b]))
        result = minimize_scenario(sc, predicate=needs(a, b))
        assert result.minimized_events == 2
        assert set(result.scenario.fault_events) == {a, b}

    def test_result_is_one_minimal(self):
        a, b, c = loss(0.1, 0, 0.7), loss(0.2, 1, 0.7), loss(0.3, 0, 0.6)
        sc = scenario((a, b, c))
        result = minimize_scenario(sc, predicate=needs(a, b, c))
        # All three are required, so nothing can be removed...
        assert result.minimized_events == 3
        # ...and indeed dropping any one of them makes the predicate pass.
        predicate = needs(a, b, c)
        for keep in ((a, b), (b, c), (a, c)):
            assert not predicate(sc.with_events(keep))

    def test_workload_is_preserved(self):
        burst = TimelineEvent(0.05, "burst",
                              {"node": 1, "count": 5, "size": 32})
        culprit = loss(0.4, 0, 0.9)
        sc = scenario((burst, loss(0.1, 1), culprit))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert burst in result.scenario.events
        assert result.scenario.fault_events == (culprit,)

    def test_orphaned_restart_dropped(self):
        crash = TimelineEvent(0.2, "crash", {"node": 2})
        restart = TimelineEvent(0.5, "restart", {"node": 2})
        culprit = loss(0.1, 0, 0.9)
        sc = scenario((culprit, crash, restart))
        result = minimize_scenario(sc, predicate=needs(culprit))
        # Candidate timelines without the crash must not keep the restart —
        # the DSL would reject it; the minimum here is the loss alone.
        assert result.scenario.fault_events == (culprit,)

    def test_passing_scenario_raises(self):
        sc = scenario((loss(0.1, 0),))
        with pytest.raises(ValueError, match="does not fail"):
            minimize_scenario(sc, predicate=lambda candidate: False)

    def test_minimized_name_is_tagged(self):
        culprit = loss(0.1, 0)
        sc = scenario((culprit,), name="batch-3-active")
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert result.scenario.name == "batch-3-active::min"

    def test_run_budget_respected(self):
        events = tuple(loss(0.01 * i, i % 2, 0.5) for i in range(1, 9))
        sc = scenario(events)
        calls = []

        def predicate(candidate):
            calls.append(1)
            return len(candidate.fault_events) == len(events)

        minimize_scenario(sc, predicate=predicate, max_runs=10)
        # The initial confirmation run plus at most max_runs candidates.
        assert len(calls) <= 11

    def test_summary_mentions_counts(self):
        culprit = loss(0.1, 0)
        sc = scenario((culprit, loss(0.2, 1)))
        result = minimize_scenario(sc, predicate=needs(culprit))
        assert "2 -> 1 fault event(s)" in result.summary()
