"""Unit tests for admission control: token bucket + weighted-fair queue."""

import pytest

from repro.errors import ConfigError
from repro.service.admission import FairAdmissionQueue, TokenBucket
from repro.service.types import Request


def request(client, uid, deadline=None, weight=1):
    return Request(client=client, uid=uid, key=b"k", body=b"b",
                   deadline=deadline, weight=weight)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=100.0, burst=5)
        for _ in range(5):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.try_take(0.0)
        assert not bucket.peek(0.05)   # half a token
        assert bucket.peek(0.1)        # one full token
        assert bucket.try_take(0.1)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=1000.0, burst=3)
        bucket.try_take(0.0)
        # An hour of refill still yields only `burst` tokens.
        for _ in range(3):
            assert bucket.try_take(3600.0)
        assert not bucket.try_take(3600.0)

    def test_next_available(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.next_available(0.0) == 0.0
        bucket.try_take(0.0)
        assert bucket.next_available(0.0) == pytest.approx(0.1)
        assert bucket.next_available(0.05) == pytest.approx(0.05)

    def test_peek_does_not_consume(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.peek(0.0) and bucket.peek(0.0)
        assert bucket.try_take(0.0)

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        bucket.try_take(1.0)
        # A stale timestamp must not mint tokens or corrupt state.
        assert bucket.peek(0.5)
        assert bucket.tokens == pytest.approx(1.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1), (-1.0, 1), (10.0, 0.5)])
    def test_bad_parameters_raise(self, rate, burst):
        with pytest.raises(ConfigError):
            TokenBucket(rate=rate, burst=burst)


class TestFairAdmissionQueue:
    def test_capacity_bound(self):
        queue = FairAdmissionQueue(capacity=2)
        assert queue.offer(request(1, 1))
        assert queue.offer(request(2, 1))
        assert queue.full
        assert not queue.offer(request(3, 1))
        assert len(queue) == 2

    def test_per_client_limit(self):
        queue = FairAdmissionQueue(capacity=10, per_client_limit=2)
        assert queue.offer(request(1, 1))
        assert queue.offer(request(1, 2))
        assert not queue.offer(request(1, 3))   # lane full
        assert queue.offer(request(2, 1))       # other clients unaffected
        assert queue.depth_of(1) == 2
        assert queue.depth_of(2) == 1
        assert queue.depth_of(99) == 0

    def test_round_robin_across_clients(self):
        queue = FairAdmissionQueue(capacity=10)
        for uid in (1, 2, 3):
            queue.offer(request(1, uid))
        queue.offer(request(2, 1))
        order = [queue.pop(0.0)[0] for _ in range(4)]
        popped = [(r.client, r.uid) for r in order]
        # Client 2's single request is served after client 1's first,
        # not starved behind the whole backlog.
        assert popped.index((2, 1)) < 3

    def test_weighted_drain_is_proportional(self):
        queue = FairAdmissionQueue(capacity=100)
        for uid in range(1, 9):
            queue.offer(request(1, uid, weight=2))
            queue.offer(request(2, uid, weight=1))
        first_six = [queue.pop(0.0)[0].client for _ in range(6)]
        # Deficit round robin: the weight-2 client gets ~2/3 of the slots.
        assert first_six.count(1) == 4
        assert first_six.count(2) == 2

    def test_pop_sweeps_expired_heads(self):
        queue = FairAdmissionQueue(capacity=10)
        queue.offer(request(1, 1, deadline=0.5))
        queue.offer(request(1, 2))
        live, expired = queue.pop(now=1.0)
        assert (live.client, live.uid) == (1, 2)
        assert [(r.client, r.uid) for r in expired] == [(1, 1)]
        assert len(queue) == 0

    def test_pop_empty(self):
        queue = FairAdmissionQueue(capacity=4)
        assert queue.pop(0.0) == (None, [])

    def test_sweep_expired_removes_mid_lane(self):
        queue = FairAdmissionQueue(capacity=10)
        queue.offer(request(1, 1))
        queue.offer(request(1, 2, deadline=0.1))
        queue.offer(request(2, 1, deadline=0.1))
        expired = queue.sweep_expired(now=0.2)
        assert sorted((r.client, r.uid) for r in expired) == [(1, 2), (2, 1)]
        assert len(queue) == 1
        live, _ = queue.pop(0.2)
        assert (live.client, live.uid) == (1, 1)

    def test_requeue_front_preserves_fifo(self):
        queue = FairAdmissionQueue(capacity=10)
        queue.offer(request(1, 1))
        queue.offer(request(1, 2))
        popped, _ = queue.pop(0.0)
        assert popped.uid == 1
        queue.requeue_front(popped)
        assert len(queue) == 2
        again, _ = queue.pop(0.0)
        assert again.uid == 1

    def test_requeue_front_after_lane_emptied(self):
        queue = FairAdmissionQueue(capacity=10)
        queue.offer(request(1, 1))
        popped, _ = queue.pop(0.0)
        assert len(queue) == 0
        queue.requeue_front(popped)
        assert len(queue) == 1
        assert queue.pop(0.0)[0].uid == 1

    def test_requeue_front_beats_other_lanes(self):
        queue = FairAdmissionQueue(capacity=10)
        queue.offer(request(1, 1))
        queue.offer(request(2, 1))
        popped, _ = queue.pop(0.0)
        queue.requeue_front(popped)
        # The requeued request is served before any other lane.
        assert queue.pop(0.0)[0] == popped

    def test_drain_all_empties_everything(self):
        queue = FairAdmissionQueue(capacity=10)
        for client in (1, 2):
            for uid in (1, 2):
                queue.offer(request(client, uid))
        drained = list(queue.drain_all())
        assert len(drained) == 4
        assert len(queue) == 0
        assert queue.pop(0.0) == (None, [])

    @pytest.mark.parametrize("capacity,limit", [(0, None), (-1, None),
                                                (4, 0)])
    def test_bad_parameters_raise(self, capacity, limit):
        with pytest.raises(ConfigError):
            FairAdmissionQueue(capacity=capacity, per_client_limit=limit)
