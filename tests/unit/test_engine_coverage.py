"""Engine edge-path sweep for active and active-passive replication.

:mod:`tests.unit.test_rrp_engines` pins the headline Figure-2/§7
behaviours; this file covers the remaining branches of
``core/active.py`` and ``core/active_passive.py`` (the PR-8 coverage
satellite): batch sends and receives, lifecycle stop semantics, timer
callbacks racing a stop, token supersession, stale/late/foreign token
accounting, control traffic, and the explorer digests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.config import LanConfig, TotemConfig
from repro.core.factory import make_replication_engine
from repro.sim.runtime import SimRuntime
from repro.sim.scheduler import EventScheduler
from repro.types import ReplicationStyle, RingId
from repro.wire.packets import (
    BatchPacket,
    Chunk,
    CommitToken,
    DataPacket,
    JoinMessage,
    Token,
)

RING = RingId(seq=4, representative=1)


class FakeStack:
    def __init__(self, num_networks: int) -> None:
        self.num_networks = num_networks
        self.broadcasts: List[Tuple[int, object]] = []
        self.unicasts: List[Tuple[int, int, object]] = []
        self.handler = None
        self._lan_config = LanConfig()

    def set_receive_handler(self, handler) -> None:
        self.handler = handler

    def set_recv_cost_fn(self, fn) -> None:
        self.recv_cost_fn = fn

    def broadcast(self, network: int, packet: object) -> None:
        self.broadcasts.append((network, packet))

    def unicast(self, network: int, dest: int, packet: object) -> None:
        self.unicasts.append((network, dest, packet))


class FakeSrp:
    """Scripted SRP with batch support and a duplicate knob."""

    def __init__(self) -> None:
        self.ring_id = RING
        self.data: List[Tuple[DataPacket, int]] = []
        self.batches: List[Tuple[BatchPacket, int]] = []
        self.tokens: List[Token] = []
        self.joins: List[JoinMessage] = []
        self.commits: List[CommitToken] = []
        self.my_aru = 0
        self.duplicate = False

    def on_data(self, packet, network=0):
        self.data.append((packet, network))

    def on_batch(self, batch, network=0):
        self.batches.append((batch, network))

    def on_token(self, token, network=0):
        self.tokens.append(token)

    def on_join(self, join, network=0):
        self.joins.append(join)

    def on_commit_token(self, commit, network=0):
        self.commits.append(commit)

    def has_gaps_up_to(self, seq):
        return self.my_aru < seq

    def is_duplicate_data(self, packet):
        return self.duplicate

    def is_duplicate_batch(self, batch):
        return self.duplicate


def build(style: ReplicationStyle, num_networks: int, **overrides):
    scheduler = EventScheduler()
    config = TotemConfig(replication=style, num_networks=num_networks,
                         **overrides)
    stack = FakeStack(num_networks)
    reports = []
    engine = make_replication_engine(1, config, SimRuntime(scheduler), stack,
                                     on_fault_report=reports.append)
    srp = FakeSrp()
    engine.bind(srp)
    return scheduler, engine, stack, srp, reports


def build_active(**overrides):
    return build(ReplicationStyle.ACTIVE, num_networks=2, **overrides)


def build_ap(**overrides):
    return build(ReplicationStyle.ACTIVE_PASSIVE, num_networks=3, **overrides)


def data_packet(seq: int, sender: int = 2) -> DataPacket:
    return DataPacket(sender=sender, ring_id=RING, seq=seq,
                      chunks=(Chunk.whole(1, b"x"),))


def batch_packet(first_seq: int, count: int = 2) -> BatchPacket:
    return BatchPacket(packets=tuple(
        data_packet(first_seq + i) for i in range(count)))


def token(seq: int, rotation: int = 0) -> Token:
    return Token(ring_id=RING, seq=seq, rotation=rotation)


class TestActiveEdges:
    def test_batch_replicated_on_all_networks(self):
        _, engine, stack, _, _ = build_active()
        engine.broadcast_batch(batch_packet(1))
        assert [net for net, _ in stack.broadcasts] == [0, 1]
        assert engine.stats.data_sends == 1

    def test_batch_receive_passes_to_srp(self):
        _, engine, _, srp, _ = build_active()
        engine.on_packet(batch_packet(1), 0)
        assert len(srp.batches) == 1

    def test_stale_token_dropped_and_counted(self):
        _, engine, _, srp, _ = build_active()
        engine.recv_token(token(5), 0)
        engine.recv_token(token(4), 1)  # older stamp: retransmission
        assert engine.stats.stale_tokens_dropped == 1
        assert srp.tokens == []  # merge state intact, still waiting
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1

    def test_late_copy_after_timeout_delivery(self):
        scheduler, engine, _, srp, _ = build_active(
            active_token_timeout=0.002)
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)  # timer delivers with network 1 silent
        assert len(srp.tokens) == 1
        engine.recv_token(token(5), 1)  # the lost copy finally arrives
        assert engine.stats.late_token_copies == 1
        assert len(srp.tokens) == 1

    def test_stop_cancels_decay_and_token_timers(self):
        scheduler, engine, _, srp, _ = build_active(
            active_token_timeout=0.002,
            problem_counter_decay_interval=0.005)
        engine.start()
        engine.recv_token(token(5), 0)
        engine.stop()
        scheduler.run_until(0.05)
        assert srp.tokens == []  # no timer fired after stop
        assert engine.stats.token_timer_expiries == 0

    def test_timer_callbacks_noop_after_stop(self):
        _, engine, _, srp, _ = build_active()
        engine.recv_token(token(5), 0)
        engine._stopped = True
        engine._on_token_timeout()
        engine._on_decay()
        assert srp.tokens == []
        assert engine.stats.token_timer_expiries == 0

    def test_timeout_without_pending_token_is_noop(self):
        _, engine, _, srp, _ = build_active()
        engine._on_token_timeout()  # nothing merged yet
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        engine._on_token_timeout()  # already delivered
        assert len(srp.tokens) == 1
        assert engine.stats.token_timer_expiries == 0

    def test_stopped_engine_ignores_incoming_packets(self):
        _, engine, _, srp, _ = build_active()
        engine.stop()
        engine.on_packet(token(5), 0)
        engine.on_packet(data_packet(1), 0)
        assert srp.tokens == [] and srp.data == []

    def test_digest_tracks_merge_state(self):
        _, engine, _, _, _ = build_active()
        idle = engine.digest_state()
        engine.recv_token(token(5), 0)
        waiting = engine.digest_state()
        assert idle != waiting
        assert waiting[:3] == ("rrp", "ActiveReplication", 1)
        # The pending token timer shows up as a relative deadline.
        assert engine._style_digest()[3] is not None

    def test_membership_trouble_reprobes_faulty_networks(self):
        _, engine, stack, _, _ = build(ReplicationStyle.ACTIVE,
                                       num_networks=3)
        engine.faults.mark_faulty(1)
        engine.on_membership_trouble()
        assert not engine.faults.is_faulty(1)
        engine.broadcast_data(data_packet(1))
        assert [net for net, _ in stack.broadcasts] == [0, 1, 2]

    def test_control_traffic_counted_separately(self):
        _, engine, stack, _, _ = build_active()
        engine.broadcast_join(JoinMessage(1, frozenset({1}), frozenset(), 0))
        engine.send_commit_token(CommitToken(ring_id=RING, members=(1, 2)),
                                 dest=2)
        assert engine.stats.control_sends == 2
        assert engine.stats.data_sends == 0


class TestActivePassiveEdges:
    def test_batch_send_advances_the_window(self):
        _, engine, stack, _, _ = build_ap()
        engine.broadcast_batch(batch_packet(1))
        engine.broadcast_data(data_packet(3))
        # N=3, K=2, stride K: {0,1} then {2,0}, same as two data sends.
        assert [net for net, _ in stack.broadcasts] == [0, 1, 2, 0]

    def test_batch_receive_records_monitor_once(self):
        _, engine, _, srp, _ = build_ap()
        engine.recv_batch(batch_packet(1, count=3), 0)
        assert len(srp.batches) == 1
        assert engine.message_monitors[2].recv_count == [1, 0, 0]

    def test_duplicate_batch_not_recorded(self):
        _, engine, _, srp, _ = build_ap()
        srp.duplicate = True
        engine.recv_batch(batch_packet(1), 0)
        assert len(srp.batches) == 1  # still handed up (SRP filters)
        assert 2 not in engine.message_monitors

    def test_duplicate_data_not_recorded(self):
        _, engine, _, _, _ = build_ap()
        srp_dup = data_packet(1)
        engine.srp.duplicate = True
        engine.recv_data(srp_dup, 0)
        assert 2 not in engine.message_monitors

    def test_batch_arrival_releases_gap_buffered_token(self):
        """The posted gap-closure check runs after the SRP applied the
        whole frame train."""
        scheduler, engine, _, srp, _ = build_ap(passive_token_timeout=1.0)
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert engine.stats.tokens_buffered == 1
        srp.my_aru = 5  # the batch closed the gap
        engine.recv_batch(batch_packet(4), 2)
        scheduler.run_until(scheduler.now())  # run the posted check
        assert len(srp.tokens) == 1
        assert engine.stats.tokens_buffer_released == 1

    def test_gap_timer_releases_buffered_token(self):
        scheduler, engine, _, srp, _ = build_ap(passive_token_timeout=0.01)
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        scheduler.run_until(0.05)
        assert len(srp.tokens) == 1
        assert engine.stats.token_timer_expiries == 1

    def test_newer_token_supersedes_gap_buffered_one(self):
        _, engine, _, srp, _ = build_ap(passive_token_timeout=1.0)
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert engine.stats.tokens_buffered == 1
        srp.my_aru = 7  # next rotation's messages all arrived...
        engine.recv_token(token(7, rotation=1), 0)
        engine.recv_token(token(7, rotation=1), 1)
        assert engine.stats.tokens_superseded == 1
        assert [t.seq for t in srp.tokens] == [7]  # old token never surfaced

    def test_foreign_ring_token_counted_but_monitored(self):
        _, engine, _, srp, _ = build_ap()
        stray = Token(ring_id=RingId(0, 1), seq=9)
        engine.recv_token(stray, 2)
        assert engine.stats.foreign_ring_tokens == 1
        assert srp.tokens == []
        # Stage 1 still observed the arrival (it is real ring traffic).
        assert engine.token_monitor.recv_count == [0, 0, 1]

    def test_stale_token_dropped(self):
        _, engine, _, _, _ = build_ap()
        engine.recv_token(token(5), 0)
        engine.recv_token(token(4), 1)
        assert engine.stats.stale_tokens_dropped == 1

    def test_late_copy_after_delivery_counted(self):
        _, engine, _, srp, _ = build_ap()
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1
        engine.recv_token(token(5), 2)
        assert engine.stats.late_token_copies == 1

    def test_assemble_timer_respects_gap_buffering(self):
        """A timer-assembled token still runs through the gap check."""
        scheduler, engine, _, srp, _ = build_ap(active_token_timeout=0.002,
                                                passive_token_timeout=1.0)
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.01)
        assert srp.tokens == []
        assert engine.stats.tokens_buffered == 1

    def test_stop_cancels_every_timer(self):
        scheduler, engine, _, srp, _ = build_ap(
            active_token_timeout=0.002, passive_token_timeout=0.005,
            recv_count_topup_interval=0.003)
        engine.start()
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine.recv_data(data_packet(1), 0)
        engine.stop()
        scheduler.run_until(0.1)
        assert srp.tokens == []
        assert engine.message_monitors[2].recv_count == [1, 0, 0]  # no topup

    def test_timer_callbacks_noop_after_stop(self):
        _, engine, _, srp, _ = build_ap()
        srp.my_aru = 2
        engine.recv_token(token(5), 0)
        engine._stopped = True
        engine._on_assemble_timeout()
        engine._on_gap_timeout()
        engine._on_topup()
        engine._check_gap_closed(0)
        assert srp.tokens == []

    def test_assemble_timeout_noop_when_delivered_or_absent(self):
        _, engine, _, srp, _ = build_ap()
        engine._on_assemble_timeout()  # nothing assembling
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        engine._on_assemble_timeout()  # already delivered
        assert len(srp.tokens) == 1
        assert engine.stats.token_timer_expiries == 0

    def test_gap_timeout_noop_without_buffered_token(self):
        _, engine, _, _, _ = build_ap()
        engine._on_gap_timeout()
        assert engine.stats.token_timer_expiries == 0

    def test_digest_covers_monitors_and_buffered_state(self):
        _, engine, _, srp, _ = build_ap(passive_token_timeout=1.0)
        idle = engine.digest_state()
        srp.my_aru = 2
        engine.recv_data(data_packet(1), 0)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        buffered = engine.digest_state()
        assert idle != buffered
        style = engine._style_digest()
        assert style[5] is not None  # the buffered token's wire bytes
        assert ((2, (1, 0, 0)),) == style[-1]  # per-origin message monitor

    def test_topup_feeds_all_monitors(self):
        scheduler, engine, _, srp, _ = build_ap(
            recv_count_topup_interval=0.01)
        engine.start()
        srp.my_aru = 9
        engine.recv_data(data_packet(1), 0)
        engine.recv_token(token(1), 1)
        scheduler.run_until(0.015)
        assert engine.message_monitors[2].recv_count == [1, 1, 1]
        assert engine.token_monitor.recv_count == [1, 1, 1]
