"""Regression tests for the token-lifecycle bug sweep (S1-S4).

Each test pins one of the four bugs fixed together with the invariant
checker and fails against the pre-fix engines:

* S1 — a delayed token from a previous ring reset active replication's
  merge state, letting the current ring's token be passed up twice;
* S2 — a newer passive token silently overwrote the buffered token while
  the old token's timer kept running, releasing the new token early and
  losing the supersession in the accounting;
* S3 — ``stop()`` left engine timers pending, so an abandoned
  incarnation's token timer could push a token into a stopped SRP;
* S4 — the timer-expiry delivery path used a bare ``-1`` network index,
  which Python's negative indexing silently turns into "the last network"
  in any per-network counter it reaches.
"""

from __future__ import annotations

import pytest

from repro.core.monitor import ProblemCounterMonitor, RecvCountMonitor
from repro.core.reports import NetworkFaultState
from repro.types import ReplicationStyle, RingId, TIMEOUT_NETWORK
from repro.wire.packets import Token

from test_rrp_engines import build, token


class TestS1ForeignRingToken:
    """Active-style engines drop tokens for rings the SRP is not on."""

    def test_active_prev_ring_straggler_cannot_cause_double_delivery(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE)
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1
        # A delayed copy from the previous ring arrives...
        straggler = Token(ring_id=RingId(0, 1), seq=9)
        engine.recv_token(straggler, 0)
        assert engine.stats.foreign_ring_tokens == 1
        # ...followed by retransmitted copies of the current token.  The
        # pre-fix code had reset the merge state on the straggler and
        # passed token 5 up a second time here.
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert [t.seq for t in srp.tokens] == [5]

    def test_active_passive_prev_ring_straggler_dropped(self):
        _, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE)
        srp.my_aru = 5
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)
        assert len(srp.tokens) == 1
        straggler = Token(ring_id=RingId(0, 1), seq=9)
        engine.recv_token(straggler, 2)
        assert engine.stats.foreign_ring_tokens == 1
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 2)
        assert [t.seq for t in srp.tokens] == [5]


class TestS2BufferedTokenSupersession:
    """A newer passive token retires the buffered one explicitly."""

    def test_new_token_gets_its_full_timeout(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)          # buffered at t=0
        scheduler.run_until(0.006)
        engine.recv_token(token(7), 1)          # supersedes, still gaps
        assert engine.stats.tokens_superseded == 1
        # Pre-fix the timer armed at t=0 kept running and released token 7
        # at t=0.010, only 4 ms into its own timeout.
        scheduler.run_until(0.011)
        assert srp.tokens == []
        scheduler.run_until(0.017)
        assert [t.seq for t in srp.tokens] == [7]
        assert engine.stats.tokens_buffer_released == 1

    def test_superseded_token_never_reaches_srp(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        # The gap closes and a newer token arrives: delivered immediately,
        # and the buffered token 5 must be retired — its timer must not
        # later push the stale token into the SRP.
        srp.my_aru = 7
        engine.recv_token(token(7), 1)
        assert [t.seq for t in srp.tokens] == [7]
        assert engine.stats.tokens_superseded == 1
        scheduler.run_until(0.050)
        assert [t.seq for t in srp.tokens] == [7]

    def test_retransmitted_copy_of_buffered_token_dropped_as_stale(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        scheduler.run_until(0.004)
        engine.recv_token(token(5), 1)          # predecessor retransmission
        assert engine.stats.stale_tokens_dropped == 1
        assert engine.stats.tokens_buffered == 1  # not double-counted
        # The retransmission must not have restarted the original timer.
        scheduler.run_until(0.0101)
        assert [t.seq for t in srp.tokens] == [5]

    def test_accounting_balances_after_supersession(self):
        scheduler, engine, _, _, _ = build(ReplicationStyle.PASSIVE,
                                           passive_token_timeout=0.010)
        srp = engine.srp
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        engine.recv_token(token(7), 1)
        scheduler.run_until(0.050)
        stats = engine.stats
        assert stats.tokens_buffered == 2
        assert stats.tokens_superseded == 1
        assert stats.tokens_buffer_released == 1
        assert stats.tokens_buffered == (stats.tokens_buffer_released
                                         + stats.tokens_superseded)


class TestS3StopCancelsTimers:
    """stop() cancels every engine timer of the abandoned incarnation."""

    def test_active_token_timer_cancelled_by_stop(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.ACTIVE,
                                             active_token_timeout=0.002)
        engine.recv_token(token(5), 0)          # merge pending, timer armed
        engine.stop()
        scheduler.run_until(0.050)
        assert srp.tokens == []                 # pre-fix: delivered anyway
        assert engine.stats.token_timer_expiries == 0

    def test_passive_buffered_token_not_released_after_stop(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        engine.stop()
        scheduler.run_until(0.050)
        assert srp.tokens == []
        assert engine.stats.token_timer_expiries == 0

    def test_periodic_monitor_timers_cancelled_by_stop(self):
        for style, interval_name in (
                (ReplicationStyle.ACTIVE, "problem_counter_decay_interval"),
                (ReplicationStyle.PASSIVE, "recv_count_topup_interval"),
                (ReplicationStyle.ACTIVE_PASSIVE, "recv_count_topup_interval")):
            scheduler, engine, _, _, _ = build(style,
                                               **{interval_name: 0.01})
            engine.start()
            engine.stop()
            fired = []
            engine.probe = type("Probe", (), {
                "engine_timer_fired":
                    staticmethod(lambda name, stopped: fired.append(name)),
            })()
            scheduler.run_until(0.1)
            assert fired == [], f"{style.value}: timers fired after stop()"

    def test_active_passive_gap_timer_cancelled_by_stop(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.ACTIVE_PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        engine.recv_token(token(5), 1)          # assembled, gap-buffered
        assert srp.tokens == []
        engine.stop()
        scheduler.run_until(0.050)
        assert srp.tokens == []


class TestS4TimeoutNetworkSentinel:
    """TIMEOUT_NETWORK can never silently index the last network."""

    def test_sentinel_is_not_a_valid_index(self):
        assert TIMEOUT_NETWORK < 0

    def test_recv_count_monitor_rejects_sentinel(self):
        faults = NetworkFaultState(node=1, num_networks=2)
        monitor = RecvCountMonitor(faults, threshold=10)
        # Pre-fix this incremented recv_count[-1] — the *last* network —
        # silently skewing the P4 lag comparison.
        with pytest.raises(ValueError):
            monitor.record(TIMEOUT_NETWORK)
        assert monitor.recv_count == [0, 0]

    def test_problem_counter_monitor_rejects_sentinel(self):
        faults = NetworkFaultState(node=1, num_networks=2)
        monitor = ProblemCounterMonitor(faults, threshold=10)
        with pytest.raises(ValueError):
            monitor.token_copy_missing(TIMEOUT_NETWORK)
        assert monitor.counters == [0, 0]

    def test_passive_timeout_release_does_not_touch_monitors(self):
        scheduler, engine, _, srp, _ = build(ReplicationStyle.PASSIVE,
                                             passive_token_timeout=0.010)
        srp.my_aru = 3
        engine.recv_token(token(5), 0)
        counts_before = list(engine.token_monitor.recv_count)
        scheduler.run_until(0.050)
        assert [t.seq for t in srp.tokens] == [5]
        assert engine.token_monitor.recv_count == counts_before
