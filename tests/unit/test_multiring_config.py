"""Unit tests for multiring configuration, addressing and partitioners.

The PR-8 validation satellite: every malformed ``MultiRingConfig`` knob
is rejected with a clear :class:`~repro.errors.ConfigError` before any
cluster is built, and the composite group addressing round-trips.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.multiring import (
    GROUP_STRIDE,
    HashPartitioner,
    MultiRingConfig,
    RoundRobinPartitioner,
    group_addr,
    group_of,
    make_partitioner,
    member_of,
)


class TestAddressing:
    def test_group_zero_uses_classic_addresses(self):
        assert [group_addr(0, m) for m in (1, 2, 3)] == [1, 2, 3]

    def test_round_trip(self):
        for group in (0, 1, 7, 63):
            for member in (1, 4, GROUP_STRIDE - 1):
                addr = group_addr(group, member)
                assert group_of(addr) == group
                assert member_of(addr) == member

    def test_representatives_distinct_across_groups(self):
        reps = {group_addr(g, 1) for g in range(64)}
        assert len(reps) == 64


class TestMultiRingConfigValidation:
    def test_defaults_are_valid(self):
        config = MultiRingConfig()
        assert config.num_rings == 8
        assert config.shards == 8

    def test_num_shards_overrides_shards(self):
        assert MultiRingConfig(num_shards=32).shards == 32

    @pytest.mark.parametrize("rings", [0, -1, -8])
    def test_non_positive_ring_count_rejected(self, rings):
        with pytest.raises(ConfigError, match="num_rings"):
            MultiRingConfig(num_rings=rings)

    @pytest.mark.parametrize("nodes", [0, -3])
    def test_non_positive_node_count_rejected(self, nodes):
        with pytest.raises(ConfigError, match="num_nodes"):
            MultiRingConfig(num_nodes=nodes)

    def test_node_count_must_fit_group_stride(self):
        with pytest.raises(ConfigError, match="composite addressing"):
            MultiRingConfig(num_nodes=GROUP_STRIDE)

    @pytest.mark.parametrize("name", ["bogus", "HASH", "roundrobin", ""])
    def test_unknown_partitioner_rejected(self, name):
        with pytest.raises(ConfigError, match="partitioner"):
            MultiRingConfig(partitioner=name)

    @pytest.mark.parametrize("shards", [0, -1])
    def test_non_positive_shard_count_rejected(self, shards):
        with pytest.raises(ConfigError, match="num_shards"):
            MultiRingConfig(num_shards=shards)

    @pytest.mark.parametrize("interval", [0.0, -0.005])
    def test_non_positive_merge_interval_rejected(self, interval):
        with pytest.raises(ConfigError, match="merge_interval"):
            MultiRingConfig(merge_interval=interval)

    def test_bad_obs_mode_rejected(self):
        with pytest.raises(ConfigError, match="obs"):
            MultiRingConfig(obs="verbose")

    def test_non_positive_obs_interval_rejected(self):
        with pytest.raises(ConfigError, match="obs_interval"):
            MultiRingConfig(obs_interval=0.0)


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        part = HashPartitioner(num_rings=4)
        keys = [f"user:{i}".encode() for i in range(200)]
        first = [part.ring_for(k) for k in keys]
        second = [part.ring_for(k) for k in keys]
        assert first == second
        assert set(first) <= set(range(4))
        # CRC-32 spreads this keyspace over every ring.
        assert set(first) == set(range(4))

    def test_shards_fold_onto_rings(self):
        part = HashPartitioner(num_rings=4, num_shards=16)
        for i in range(100):
            key = f"k{i}".encode()
            assert part.shard_for(key) < 16
            assert part.ring_for(key) == part.shard_for(key) % 4

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            HashPartitioner(num_rings=0)
        with pytest.raises(ConfigError):
            HashPartitioner(num_rings=4, num_shards=0)


class TestRoundRobinPartitioner:
    def test_cycles_through_shards(self):
        part = RoundRobinPartitioner(num_rings=3)
        rings = [part.ring_for(b"ignored") for _ in range(7)]
        assert rings == [0, 1, 2, 0, 1, 2, 0]

    def test_mapping_depends_on_order_not_key(self):
        part = RoundRobinPartitioner(num_rings=2)
        assert part.ring_for(b"same") != part.ring_for(b"same")

    def test_more_shards_than_rings_interleave(self):
        part = RoundRobinPartitioner(num_rings=2, num_shards=4)
        rings = [part.ring_for(b"x") for _ in range(4)]
        assert rings == [0, 1, 0, 1]

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            RoundRobinPartitioner(num_rings=-1)
        with pytest.raises(ConfigError):
            RoundRobinPartitioner(num_rings=2, num_shards=-2)


class TestMakePartitioner:
    def test_builds_by_name(self):
        assert isinstance(make_partitioner("hash", 4), HashPartitioner)
        assert isinstance(make_partitioner("round-robin", 4),
                          RoundRobinPartitioner)

    def test_passes_shard_count_through(self):
        assert make_partitioner("hash", 4, num_shards=12).num_shards == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown partitioner"):
            make_partitioner("modulo", 4)
