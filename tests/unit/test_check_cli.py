"""Unit tests for the totem-check CLI surface (repro.check.cli).

Exit-code contract: 0 = sweep clean, 1 = invariant violations found,
2 = malformed arguments (argparse usage error).  The sweep itself is
monkeypatched; tier-1 integration coverage of real sweeps lives in
tests/integration/test_check_sweep.py.
"""

import pytest

from repro.check import cli
from repro.check.sweep import SweepCase, SweepReport
from repro.types import ReplicationStyle


def fake_case(violations=()):
    return SweepCase(style=ReplicationStyle.ACTIVE, seed=1, num_nodes=4,
                     duration=0.4, fault_events=3, delivered=100,
                     violations=list(violations))


def install_sweep(monkeypatch, report):
    calls = []

    def fake_run_sweep(styles, **kwargs):
        calls.append((tuple(styles), kwargs))
        return report

    monkeypatch.setattr(cli, "run_sweep", fake_run_sweep)
    return calls


class TestSweepExitCodes:
    def test_clean_sweep_exits_zero(self, monkeypatch, capsys):
        install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        assert cli.main(["sweep", "--quiet"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_violations_exit_one(self, monkeypatch, capsys):
        report = SweepReport(cases=[fake_case(violations=["aru regressed"])])
        install_sweep(monkeypatch, report)
        assert cli.main(["sweep", "--quiet"]) == 1
        assert "aru regressed" in capsys.readouterr().out

    def test_rules_exits_zero(self, capsys):
        assert cli.main(["rules"]) == 0
        assert "A1" in capsys.readouterr().out


class TestSweepArgumentValidation:
    @pytest.mark.parametrize("argv", [
        ["sweep", "--runs", "0"],
        ["sweep", "--runs", "-2"],
        ["sweep", "--runs", "three"],
        ["sweep", "--nodes", "0"],
        ["sweep", "--nodes", "-1"],
        ["sweep", "--duration", "0"],
        ["sweep", "--duration", "-0.5"],
        ["sweep", "--messages", "0"],
        ["sweep", "--styles", "quantum"],
    ])
    def test_malformed_arguments_exit_two(self, argv):
        with pytest.raises(SystemExit) as exc:
            cli.main(argv)
        assert exc.value.code == 2

    def test_missing_subcommand_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            cli.main([])
        assert exc.value.code == 2

    def test_unknown_subcommand_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["scan"])
        assert exc.value.code == 2


class TestSweepArgumentPlumbing:
    def test_defaults(self, monkeypatch):
        calls = install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        cli.main(["sweep", "--quiet"])
        styles, kwargs = calls[0]
        assert len(styles) == 3
        assert kwargs["runs_per_style"] == 3
        assert kwargs["base_seed"] == 1

    def test_quick_shrinks_the_batch(self, monkeypatch):
        calls = install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        cli.main(["sweep", "--quick", "--quiet"])
        _, kwargs = calls[0]
        assert kwargs["runs_per_style"] == 1
        assert kwargs["duration"] == 0.4

    def test_style_filter(self, monkeypatch):
        calls = install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        cli.main(["sweep", "--styles", "passive", "--quiet"])
        styles, _ = calls[0]
        assert styles == (ReplicationStyle.PASSIVE,)

    def test_strict_and_shape_flags_passed_through(self, monkeypatch):
        from repro.check.invariants import CheckMode
        calls = install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        cli.main(["sweep", "--strict", "--nodes", "6", "--messages", "50",
                  "--duration", "0.7", "--seed", "42", "--runs", "2",
                  "--quiet"])
        _, kwargs = calls[0]
        assert kwargs["mode"] is CheckMode.STRICT
        assert kwargs["num_nodes"] == 6
        assert kwargs["messages"] == 50
        assert kwargs["duration"] == 0.7
        assert kwargs["base_seed"] == 42
        assert kwargs["runs_per_style"] == 2

    def test_progress_streams_unless_quiet(self, monkeypatch, capsys):
        calls = install_sweep(monkeypatch, SweepReport(cases=[fake_case()]))
        cli.main(["sweep"])
        _, kwargs = calls[0]
        assert kwargs["progress"] is not None
        cli.main(["sweep", "--quiet"])
        _, kwargs = calls[1]
        assert kwargs["progress"] is None
