"""Unit tests for the SVG figure renderer."""

from __future__ import annotations

import pytest

from repro.bench.figures import FigurePoint, FigureResult
from repro.bench.svg import figure_to_svg, write_figure_svg
from repro.types import ReplicationStyle


def make_figure(points=None) -> FigureResult:
    figure = FigureResult(name="t", title="Test figure", num_nodes=4,
                          unit="msgs/s")
    for style, size, rate in points or []:
        figure.points.append(FigurePoint(
            style=style, message_size=size, msgs_per_sec=rate,
            kbytes_per_sec=rate * size / 1024, result=None))
    return figure


SAMPLE = [
    (ReplicationStyle.NONE, 100, 20000),
    (ReplicationStyle.NONE, 1024, 10000),
    (ReplicationStyle.NONE, 16384, 700),
    (ReplicationStyle.ACTIVE, 100, 19000),
    (ReplicationStyle.ACTIVE, 1024, 9500),
    (ReplicationStyle.ACTIVE, 16384, 660),
]


class TestFigureToSvg:
    def test_valid_standalone_document(self):
        svg = figure_to_svg(make_figure(SAMPLE))
        assert svg.startswith("<svg xmlns=")
        assert svg.endswith("</svg>")
        import xml.etree.ElementTree as ET
        root = ET.fromstring(svg)  # well-formed XML
        assert root.tag.endswith("svg")

    def test_contains_title_axes_and_legend(self):
        svg = figure_to_svg(make_figure(SAMPLE))
        assert "Test figure" in svg
        assert "message length (bytes)" in svg
        assert "msgs/s" in svg
        assert ">none<" in svg
        assert ">active<" in svg

    def test_one_path_and_marker_per_series_point(self):
        svg = figure_to_svg(make_figure(SAMPLE))
        assert svg.count("<path") == 2  # two series
        assert svg.count("<circle") == 6  # six data points

    def test_empty_figure(self):
        svg = figure_to_svg(make_figure([]))
        assert "no data" in svg

    def test_single_point_does_not_crash(self):
        svg = figure_to_svg(make_figure([(ReplicationStyle.NONE, 700, 9000)]))
        assert "<circle" in svg

    def test_write_to_file(self, tmp_path):
        path = str(tmp_path / "fig.svg")
        returned = write_figure_svg(make_figure(SAMPLE), path)
        assert returned == path
        with open(path, encoding="utf-8") as handle:
            assert handle.read().startswith("<svg")

    def test_log_ticks_cover_decades(self):
        from repro.bench.svg import _log_ticks
        assert _log_ticks(100, 20000) == [100, 1000, 10000]
        assert _log_ticks(1, 10) == [1, 10]
