"""Tests for per-ring-group metric labelling (the PR-8 obs satellite).

Three contracts:

* single-ring telemetry is untouched — same metric names, same labels as
  before the multiring refactor (the sanity check the satellite asks for);
* :class:`ClusterObservability` honours ``metric_prefix`` /
  ``extra_labels`` / a shared ``registry`` when asked;
* :class:`MultiRingObservability` runs one sampler per ring group, all
  writing ``{"group": g}``-labelled series into one registry.
"""

from __future__ import annotations

from repro.api.cluster import SimCluster
from repro.config import ClusterConfig, TotemConfig
from repro.multiring import MultiRingCluster, MultiRingConfig, group_addr
from repro.obs import ClusterObservability, MetricRegistry
from repro.obs.metrics import normalize_labels
from repro.types import ReplicationStyle

#: The canonical single-ring series (name, labels) the dashboards key on.
EXPECTED_SINGLE_RING_SERIES = [
    ("totem_lan_frames_sent_total", {"network": 0}),
    ("totem_lan_utilization", {"network": 1}),
    ("totem_msgs_delivered_total", {"node": 1}),
    ("totem_tokens_accepted_total", {"node": 2}),
    ("totem_send_queue_depth", {"node": 3}),
    ("totem_ring_health_score", {"network": 0}),
    ("sim_events_processed_total", {}),
    ("sim_pending_events", {}),
]


def run_single_ring(mode: str = "sampled") -> SimCluster:
    config = ClusterConfig(
        num_nodes=3,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2),
        obs=mode, obs_interval=0.01)
    cluster = SimCluster(config)
    cluster.start()
    for i in range(5):
        cluster.nodes[1].try_submit(b"payload-%d" % i)
    cluster.run_for(0.1)
    return cluster


class TestSingleRingNamesUnchanged:
    def test_canonical_series_exist_without_prefix_or_group(self):
        cluster = run_single_ring()
        registry = cluster.obs.registry
        for name, labels in EXPECTED_SINGLE_RING_SERIES:
            assert registry.get(name, labels) is not None, (name, labels)

    def test_no_series_carries_a_group_label(self):
        cluster = run_single_ring()
        for metric in cluster.obs.registry.collect():
            assert all(key != "group" for key, _ in metric.labels), metric.name

    def test_all_names_unprefixed(self):
        cluster = run_single_ring()
        for metric in cluster.obs.registry.collect():
            assert metric.name.startswith(("totem_", "sim_")), metric.name

    def test_empty_extra_labels_normalize_like_none(self):
        assert normalize_labels({}) == normalize_labels(()) == ()


class TestPrefixAndExtraLabels:
    def test_prefix_applied_to_every_series(self):
        config = ClusterConfig(
            num_nodes=3,
            totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                              num_networks=2))
        cluster = SimCluster(config)
        obs = ClusterObservability(cluster, mode="sampled", interval=0.01,
                                   metric_prefix="shadow_")
        for node in cluster.nodes.values():
            obs.attach_node(node)
        cluster.start()
        obs.start()
        cluster.run_for(0.05)
        names = {metric.name for metric in obs.registry.collect()}
        assert names
        assert all(name.startswith("shadow_") for name in names)

    def test_extra_labels_merged_into_every_series(self):
        config = ClusterConfig(
            num_nodes=3,
            totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                              num_networks=2))
        cluster = SimCluster(config)
        shared = MetricRegistry()
        obs = ClusterObservability(cluster, mode="sampled", interval=0.01,
                                   registry=shared,
                                   extra_labels={"group": 7})
        for node in cluster.nodes.values():
            obs.attach_node(node)
        cluster.start()
        obs.start()
        cluster.run_for(0.05)
        assert obs.registry is shared
        metrics = list(shared.collect())
        assert metrics
        for metric in metrics:
            assert ("group", "7") in metric.labels, metric.name
        # Node/network labels still present alongside the group label.
        assert shared.get("totem_msgs_delivered_total",
                          {"group": 7, "node": 1}) is not None


class TestMultiRingObservability:
    def make_cluster(self) -> MultiRingCluster:
        config = MultiRingConfig(
            num_rings=3, num_nodes=3, seed=3, obs="sampled",
            obs_interval=0.01,
            totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                              num_networks=2))
        cluster = MultiRingCluster(config)
        cluster.start(markers=False)
        for group in cluster.groups:
            cluster.submit_to_group(group, b"hello")
        cluster.run_for(0.1)
        return cluster

    def test_every_group_exports_labelled_series(self):
        cluster = self.make_cluster()
        registry = cluster.obs.registry
        for group in cluster.groups:
            rep = group_addr(group, 1)  # node label = composite address
            assert registry.get("totem_msgs_delivered_total",
                                {"group": group, "node": rep}) is not None
            assert registry.get("totem_lan_frames_sent_total",
                                {"group": group, "network": 0}) is not None

    def test_groups_share_one_registry_disambiguated_by_label(self):
        cluster = self.make_cluster()
        assert len(cluster.obs.samplers) == 3
        registries = {id(s.registry) for s in cluster.obs.samplers}
        assert registries == {id(cluster.obs.registry)}
        per_group = [
            cluster.obs.registry.get("totem_msgs_delivered_total",
                                     {"group": g, "node": group_addr(g, 1)})
            for g in cluster.groups
        ]
        assert len({id(m) for m in per_group}) == 3

    def test_fault_injection_marks_every_group_timeline(self):
        cluster = self.make_cluster()
        cluster.obs.record_fault_injection(0, "net0 lossy")
        for sampler in cluster.obs.samplers:
            assert sampler.events[-1].kind == "fault-injected"
            assert sampler.events[-1].detail == "net0 lossy"

    def test_stop_halts_sampling(self):
        cluster = self.make_cluster()
        cluster.obs.stop()
        counter = cluster.obs.registry.get("sim_events_processed_total",
                                           {"group": 0})
        before = counter.value
        cluster.run_for(0.1)
        assert counter.value == before
