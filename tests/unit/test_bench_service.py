"""Unit tests for the service SLO bench (repro.bench.service).

The expensive measurement machinery is stubbed: these tests pin the gate
logic (the three SLO failure conditions), the document assembly, the
baseline comparison wiring, and enforcement — not ring throughput.
"""

import json

import pytest

from repro.bench import service as service_bench
from repro.bench.gate import SCHEMA_VERSION
from repro.errors import GateError


def section(goodput_ratio=0.95, p99=20.0, stalls=0):
    return {
        "capacity_ops_per_sec": 80_000.0,
        "offered_rate": 160_000.0,
        "overload_factor": service_bench.OVERLOAD_FACTOR,
        "goodput_ops_per_sec": goodput_ratio * 80_000.0,
        "goodput_ratio": goodput_ratio,
        "latency_p50_ms": 10.0,
        "latency_p99_ms": p99,
        "p99_bound_ms": service_bench.P99_BOUND_MS,
        "goodput_floor": service_bench.GOODPUT_FLOOR,
        "ring_stalls": stalls,
        "slo": {"shed": {"queue-full": 10}},
    }


class TestServiceGateFailures:
    def test_healthy_section_passes(self):
        assert service_bench.service_gate_failures(section()) == []

    def test_goodput_floor_violation(self):
        failures = service_bench.service_gate_failures(
            section(goodput_ratio=0.5))
        assert len(failures) == 1
        assert "goodput_ratio" in failures[0]

    def test_p99_bound_violation(self):
        failures = service_bench.service_gate_failures(section(p99=900.0))
        assert len(failures) == 1
        assert "latency_p99_ms" in failures[0]

    def test_ring_stalls_violation(self):
        failures = service_bench.service_gate_failures(section(stalls=3))
        assert len(failures) == 1
        assert "ring_stalls" in failures[0]

    def test_all_three_gates_reported_together(self):
        failures = service_bench.service_gate_failures(
            section(goodput_ratio=0.1, p99=900.0, stalls=1))
        assert len(failures) == 3


def gate_doc():
    return {
        "schema": SCHEMA_VERSION,
        "label": "x",
        "quick": True,
        "workloads": {"fig6_active_4n_700B": {"events_per_sec": 100_000.0,
                                              "ops_per_sec": 30_000.0}},
        "latency": {"virtual_p50_ms": 0.4, "virtual_p99_ms": 0.4},
    }


@pytest.fixture
def stubbed_measurement(monkeypatch):
    calls = {}

    def fake_workloads(quick=False, label="pr", repeats=3,
                       enable_batching=True):
        calls["workloads"] = {"quick": quick, "label": label,
                              "repeats": repeats}
        return gate_doc()

    def fake_measurement(quick=False):
        calls["measurement"] = {"quick": quick}
        return section()

    monkeypatch.setattr(service_bench, "run_gate_workloads", fake_workloads)
    monkeypatch.setattr(service_bench, "run_service_measurement",
                        fake_measurement)
    return calls


class TestRunService:
    def test_writes_document_with_service_section(self, tmp_path,
                                                  stubbed_measurement):
        output = tmp_path / "BENCH_pr9.json"
        result = service_bench.run_service(str(output))
        assert result["service"]["goodput_ratio"] == 0.95
        assert result["regressions"] == []
        document = json.loads(output.read_text())
        assert document["service"]["ring_stalls"] == 0
        assert isinstance(document["recorded"], int)
        # The label is derived from the output basename.
        assert stubbed_measurement["workloads"]["label"] == "pr9"

    def test_quick_uses_single_repeat(self, tmp_path, stubbed_measurement):
        service_bench.run_service(str(tmp_path / "BENCH_q.json"), quick=True)
        assert stubbed_measurement["workloads"]["repeats"] == 1
        assert stubbed_measurement["measurement"]["quick"] is True

    def test_full_uses_six_repeats(self, tmp_path, stubbed_measurement):
        service_bench.run_service(str(tmp_path / "BENCH_f.json"))
        assert stubbed_measurement["workloads"]["repeats"] == 6

    def test_baseline_comparison_and_regression(self, tmp_path,
                                                stubbed_measurement):
        baseline = gate_doc()
        baseline["workloads"]["fig6_active_4n_700B"]["events_per_sec"] = (
            500_000.0)
        baseline_path = tmp_path / "BENCH_base.json"
        baseline_path.write_text(json.dumps(baseline))
        with pytest.raises(GateError, match="events_per_sec"):
            service_bench.run_service(str(tmp_path / "BENCH_pr9.json"),
                                      baseline=str(baseline_path))

    def test_slo_gate_enforced(self, tmp_path, stubbed_measurement,
                               monkeypatch):
        monkeypatch.setattr(service_bench, "run_service_measurement",
                            lambda quick=False: section(stalls=7))
        with pytest.raises(GateError, match="ring_stalls"):
            service_bench.run_service(str(tmp_path / "BENCH_pr9.json"))

    def test_no_gate_reports_without_raising(self, tmp_path,
                                             stubbed_measurement,
                                             monkeypatch):
        monkeypatch.setattr(service_bench, "run_service_measurement",
                            lambda quick=False: section(goodput_ratio=0.2))
        result = service_bench.run_service(str(tmp_path / "BENCH_pr9.json"),
                                           enforce=False)
        assert any("goodput_ratio" in line for line in result["regressions"])

    def test_auto_discovers_sibling_baseline(self, tmp_path,
                                             stubbed_measurement):
        sibling = gate_doc()
        sibling["recorded"] = 1000
        (tmp_path / "BENCH_old.json").write_text(json.dumps(sibling))
        result = service_bench.run_service(str(tmp_path / "BENCH_pr9.json"))
        assert result["baseline"] == "BENCH_old.json"
