"""Unit tests for the delivery-consistency oracles (repro.campaign.oracles).

Each oracle is exercised on hand-built delivery logs — no cluster runs —
so the judgement logic itself is pinned down independently of the
simulator.
"""

from repro.campaign.oracles import (
    NodeHistory,
    SmrEndState,
    check_agreement,
    check_no_duplicates,
    check_sender_fifo,
    check_smr_convergence,
    check_total_order,
    check_transparency,
    stream_digest,
)
from repro.campaign.runner import make_payload, payload_uid
from repro.types import DeliveredMessage, RingId

RING = RingId(seq=4, representative=1)
RING2 = RingId(seq=8, representative=2)


def msg(sender, seq, uid=None, ring=RING, delivered_in=None):
    payload = (make_payload(sender, uid, 32) if uid is not None
               else b"opaque")
    return DeliveredMessage(sender=sender, seq=seq, payload=payload,
                            ring_id=ring, delivered_in=delivered_in)


def history(node, messages, incarnation=0):
    return NodeHistory(node=node, incarnation=incarnation,
                       messages=list(messages))


class TestPayloadTagging:
    def test_round_trip(self):
        payload = make_payload(3, 17, 64)
        assert len(payload) == 64
        assert payload_uid(payload) == 17

    def test_smr_wrapped_payload_recognised(self):
        # The SMR layer prefixes commands with an opcode byte.
        assert payload_uid(b"\x01" + make_payload(1, 5, 40)) == 5

    def test_foreign_payload_ignored(self):
        assert payload_uid(b"not a campaign payload") is None
        assert payload_uid(b"") is None


class TestAgreement:
    def test_identical_streams_pass(self):
        a = history(1, [msg(1, 1, 1), msg(2, 1, 2)])
        b = history(2, [msg(1, 1, 1), msg(2, 1, 2)])
        assert check_agreement([a, b]) == []

    def test_prefix_is_allowed(self):
        a = history(1, [msg(1, 1, 1), msg(2, 1, 2)])
        b = history(2, [msg(1, 1, 1)])
        assert check_agreement([a, b]) == []

    def test_divergence_flagged(self):
        a = history(1, [msg(1, 1, 1), msg(2, 1, 2)])
        b = history(2, [msg(1, 1, 1), msg(3, 1, 9)])
        violations = check_agreement([a, b])
        assert len(violations) == 1
        assert violations[0].oracle == "agreement"
        assert "position 1" in violations[0].detail

    def test_agreement_is_per_configuration(self):
        # Divergence across *different* delivery configurations is legal
        # (EVS only promises agreement within a configuration).
        a = history(1, [msg(1, 1, 1, ring=RING)])
        b = history(2, [msg(2, 1, 2, ring=RING2)])
        assert check_agreement([a, b]) == []

    def test_delivery_config_overrides_ring(self):
        # Recovered messages are judged in the configuration they were
        # delivered in, not the ring they were sent on.
        a = history(1, [msg(1, 1, 1, ring=RING, delivered_in=RING2)])
        b = history(2, [msg(2, 1, 2, ring=RING2)])
        violations = check_agreement([a, b])
        assert len(violations) == 1


class TestTotalOrder:
    def test_restarted_incarnations_excluded(self):
        a = history(1, [msg(1, 1, 1), msg(2, 1, 2)])
        late = history(3, [msg(2, 1, 2)], incarnation=1)  # joined mid-stream
        assert check_total_order([a, late]) == []

    def test_cross_config_divergence_flagged(self):
        a = history(1, [msg(1, 1, 1, ring=RING)])
        b = history(2, [msg(2, 1, 2, ring=RING2)])
        violations = check_total_order([a, b])
        assert len(violations) == 1
        assert violations[0].oracle == "total-order"


class TestDuplicatesAndFifo:
    def test_duplicate_flagged(self):
        h = history(1, [msg(1, 1, 7), msg(1, 2, 7)])
        violations = check_no_duplicates([h], payload_uid)
        assert len(violations) == 1
        assert "twice" in violations[0].detail

    def test_same_uid_different_sender_ok(self):
        h = history(1, [msg(1, 1, 7), msg(2, 1, 7)])
        assert check_no_duplicates([h], payload_uid) == []

    def test_fifo_violation_flagged(self):
        h = history(1, [msg(1, 1, 2), msg(1, 2, 1)])
        violations = check_sender_fifo([h], payload_uid)
        assert len(violations) == 1
        assert violations[0].oracle == "sender-fifo"

    def test_gaps_do_not_trip_fifo(self):
        h = history(1, [msg(1, 1, 1), msg(1, 2, 5)])
        assert check_sender_fifo([h], payload_uid) == []

    def test_opaque_payloads_skipped(self):
        h = history(1, [msg(1, 1), msg(1, 2)])
        assert check_no_duplicates([h], payload_uid) == []
        assert check_sender_fifo([h], payload_uid) == []


class TestSmrConvergence:
    def state(self, node, alive=True, synced=True, digest="aa",
              membership=(1, 2, 3, 4)):
        return SmrEndState(node=node, alive=alive, synced=synced,
                           state_digest=digest, membership=membership)

    def test_converged_cluster_passes(self):
        states = [self.state(n) for n in (1, 2, 3, 4)]
        assert check_smr_convergence(states) == []

    def test_single_survivor_trivially_passes(self):
        states = [self.state(1), self.state(2, alive=False, digest="zz")]
        assert check_smr_convergence(states) == []

    def test_membership_split_flagged(self):
        states = [self.state(1), self.state(2, membership=(1, 2))]
        violations = check_smr_convergence(states)
        assert len(violations) == 1
        assert "one membership" in violations[0].detail

    def test_unsynced_node_flagged(self):
        states = [self.state(1), self.state(2, synced=False)]
        violations = check_smr_convergence(states)
        assert any("state transfer" in v.detail for v in violations)

    def test_state_divergence_flagged(self):
        states = [self.state(1), self.state(2, digest="bb")]
        violations = check_smr_convergence(states)
        assert any("diverged" in v.detail for v in violations)

    def test_dead_nodes_ignored(self):
        states = [self.state(1), self.state(2),
                  self.state(3, alive=False, digest="bb",
                             membership=(1, 2, 3))]
        assert check_smr_convergence(states) == []


class TestTransparency:
    def test_equal_delivery_passes(self):
        seen = {1: frozenset({(1, 1), (1, 2)})}
        assert check_transparency(seen, seen) == []

    def test_extra_delivery_passes(self):
        # The faulty run may deliver *more* (twin stopped earlier), never less.
        twin = {1: frozenset({(1, 1)})}
        run = {1: frozenset({(1, 1), (2, 9)})}
        assert check_transparency(run, twin) == []

    def test_lost_message_flagged(self):
        twin = {1: frozenset({(1, 1), (1, 2)}), 2: frozenset({(1, 1)})}
        run = {1: frozenset({(1, 1)}), 2: frozenset({(1, 1)})}
        violations = check_transparency(run, twin)
        assert len(violations) == 1
        assert violations[0].oracle == "transparency"
        assert "node 1 lost 1" in violations[0].detail


class TestStreamDigest:
    def test_digest_is_order_sensitive(self):
        a, b = msg(1, 1, 1), msg(2, 1, 2)
        assert stream_digest([a, b]) != stream_digest([b, a])
        assert stream_digest([a, b]) == stream_digest([a, b])
        assert len(stream_digest([])) == 16


class TestServiceDecisions:
    from repro.campaign.oracles import check_service_decisions as check

    check = staticmethod(check)

    def test_every_request_decided_passes(self):
        issued = [(1, 1), (1, 2), (2, 1)]
        decisions = {(1, 1): "admit", (1, 2): "queue-full", (2, 1): "admit"}
        assert self.check(issued, decisions) == []

    def test_undecided_request_flagged(self):
        violations = self.check([(1, 1), (1, 2)], {(1, 1): "admit"})
        assert len(violations) == 1
        assert violations[0].oracle == "service-decision"
        assert "never received a decision" in violations[0].detail

    def test_phantom_decision_flagged(self):
        violations = self.check([(1, 1)], {(1, 1): "admit", (9, 9): "admit"})
        assert len(violations) == 1
        assert "never issued" in violations[0].detail

    def test_empty_run_passes(self):
        assert self.check([], {}) == []


class TestServiceCompletion:
    from repro.campaign.oracles import check_service_completion as check

    check = staticmethod(check)

    def test_all_members_applied_passes(self):
        admitted = frozenset({(1, 1), (2, 1)})
        applied = {m: frozenset({(1, 1), (2, 1), (3, 7)}) for m in (1, 2)}
        assert self.check(admitted, applied, [1, 2]) == []

    def test_missing_apply_flagged_per_member(self):
        admitted = frozenset({(1, 1)})
        applied = {1: frozenset({(1, 1)}), 2: frozenset()}
        violations = self.check(admitted, applied, [1, 2])
        assert len(violations) == 1
        assert violations[0].oracle == "service-completion"
        assert "member 2" in violations[0].detail

    def test_restarted_member_not_checked(self):
        # The runner only passes continuously-alive members.
        admitted = frozenset({(1, 1)})
        applied = {1: frozenset({(1, 1)}), 3: frozenset()}
        assert self.check(admitted, applied, [1]) == []


class TestServiceTransparency:
    from repro.campaign.oracles import check_service_transparency as check

    check = staticmethod(check)

    def test_sheds_are_the_only_deviation_passes(self):
        twin = frozenset({(1, 1), (1, 2), (2, 1)})
        applied = {1: frozenset({(1, 1), (2, 1)})}
        shed = frozenset({(1, 2)})
        assert self.check(twin, applied, shed, [1]) == []

    def test_silent_loss_flagged(self):
        twin = frozenset({(1, 1), (1, 2)})
        applied = {1: frozenset({(1, 1)})}
        violations = self.check(twin, applied, frozenset(), [1])
        assert len(violations) == 1
        assert violations[0].oracle == "service-transparency"
        assert "silently lost" in violations[0].detail

    def test_extra_applies_in_faulty_run_pass(self):
        twin = frozenset({(1, 1)})
        applied = {1: frozenset({(1, 1), (5, 5)})}
        assert self.check(twin, applied, frozenset(), [1]) == []
