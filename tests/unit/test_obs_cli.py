"""Unit tests for the ``python -m repro.obs`` CLI plumbing.

``record_scenario`` (the expensive instrumented run) is stubbed; these
tests pin the argument-to-kwargs mapping (``--quick``, ``--no-fault``),
the output fan-out (run document, JSONL, Prometheus text, HTML report)
and the report subcommand's load-vs-record branches.
"""

import argparse
import json

import pytest

from repro.obs import cli


def fake_document():
    return {"schema": 1, "samples": [{"t": 0.0}], "events": [],
            "meta": {}}


@pytest.fixture
def stub_record(monkeypatch):
    calls = {}

    def fake_record_scenario(**kwargs):
        calls.update(kwargs)
        registry = object()
        cluster = type("FakeCluster", (), {
            "obs": type("FakeObs", (), {"registry": registry})()})()
        return fake_document(), cluster

    monkeypatch.setattr(cli, "record_scenario", fake_record_scenario)
    monkeypatch.setattr(cli, "prometheus_text",
                        lambda registry: "# metrics\n")
    return calls


class TestScenarioKwargs:
    def parse(self, argv):
        parser = argparse.ArgumentParser()
        cli._add_scenario_arguments(parser)
        return cli._scenario_kwargs(parser.parse_args(argv))

    def test_defaults(self):
        kwargs = self.parse([])
        assert kwargs["style"] == "active"
        assert kwargs["num_nodes"] == 4
        assert kwargs["duration"] == 2.0
        assert kwargs["fault_time"] == 0.8
        assert kwargs["restore_time"] == 1.5

    def test_quick_shrinks_the_run(self):
        kwargs = self.parse(["--quick"])
        assert kwargs["duration"] == 0.6
        assert kwargs["fault_time"] == 0.2
        assert kwargs["restore_time"] == 0.45

    def test_quick_keeps_shorter_explicit_duration(self):
        assert self.parse(["--quick", "--duration", "0.3"])["duration"] == 0.3

    def test_no_fault_clears_the_fault_script(self):
        kwargs = self.parse(["--no-fault"])
        assert kwargs["fault_time"] is None
        assert kwargs["restore_time"] is None

    def test_shape_flags(self):
        kwargs = self.parse(["--style", "passive", "--nodes", "6",
                             "--size", "256", "--seed", "9",
                             "--mode", "sampled"])
        assert kwargs["style"] == "passive"
        assert kwargs["num_nodes"] == 6
        assert kwargs["message_size"] == 256
        assert kwargs["seed"] == 9
        assert kwargs["mode"] == "sampled"


class TestRecordCommand:
    def test_record_writes_run_document(self, stub_record, tmp_path,
                                        capsys):
        out = tmp_path / "run.json"
        assert cli.main(["record", "--quick", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["samples"] == [{"t": 0.0}]
        assert "wrote run document" in capsys.readouterr().out
        assert stub_record["duration"] == 0.6

    def test_record_side_outputs(self, stub_record, tmp_path, capsys):
        out = tmp_path / "run.json"
        jsonl = tmp_path / "run.jsonl"
        prom = tmp_path / "metrics.prom"
        assert cli.main(["record", "--out", str(out),
                         "--jsonl", str(jsonl), "--prom", str(prom)]) == 0
        assert jsonl.read_text().strip() == '{"t":0.0}'
        assert prom.read_text() == "# metrics\n"
        captured = capsys.readouterr().out
        assert "sample stream" in captured
        assert "Prometheus" in captured


class TestReportCommand:
    def test_report_from_existing_run_document(self, monkeypatch, tmp_path,
                                               capsys):
        run = tmp_path / "run.json"
        run.write_text(json.dumps(fake_document()))
        written = {}
        monkeypatch.setattr(
            cli, "write_report",
            lambda document, path: written.update(document=document,
                                                  path=path) or path)
        out = tmp_path / "report.html"
        assert cli.main(["report", str(run), "--out", str(out)]) == 0
        assert written["path"] == str(out)
        assert str(run) in capsys.readouterr().out

    def test_report_records_default_scenario_when_no_run(self, stub_record,
                                                         monkeypatch,
                                                         tmp_path, capsys):
        monkeypatch.setattr(cli, "write_report",
                            lambda document, path: path)
        out = tmp_path / "report.html"
        assert cli.main(["report", "--quick", "--out", str(out)]) == 0
        assert "recorded in-process" in capsys.readouterr().out
        assert stub_record["fault_time"] == 0.2

    def test_missing_subcommand_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            cli.main([])
        assert exc.value.code == 2
