"""Unit tests for the pressure monitor, circuit breaker and deadline budget."""

import pytest

from repro.errors import ConfigError
from repro.service.backpressure import DEGRADE, OK, SHED, RingPressureMonitor
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    CircuitBreaker,
    DeadlineBudget,
)


class FakeEngine:
    def __init__(self, depth=0):
        self.send_queue = [b"x"] * depth


def monitor(depths, budget=10, degrade=0.5, shed=0.9):
    engines = {g: FakeEngine(d) for g, d in enumerate(depths)}
    return RingPressureMonitor(engines, inflight_budget=budget,
                               degrade_ratio=degrade, shed_ratio=shed)


class TestRingPressureMonitor:
    def test_state_bands(self):
        mon = monitor([0, 5, 9, 10])
        assert mon.state(0) == OK
        assert mon.state(1) == DEGRADE     # 0.5 of budget
        assert mon.state(2) == SHED        # 0.9 of budget
        assert mon.state(3) == SHED

    def test_pressure_and_depth(self):
        mon = monitor([4])
        assert mon.depth(0) == 4
        assert mon.pressure(0) == pytest.approx(0.4)

    def test_headroom_boundary(self):
        mon = monitor([9, 10, 11])
        assert mon.has_headroom(0)
        assert not mon.has_headroom(1)
        assert not mon.has_headroom(2)

    def test_rebind_swaps_engine(self):
        mon = monitor([10])
        assert mon.state(0) == SHED
        mon.rebind(0, FakeEngine(0))
        assert mon.state(0) == OK

    def test_snapshot_in_group_order(self):
        mon = monitor([2, 8])
        assert mon.snapshot() == {0: pytest.approx(0.2),
                                  1: pytest.approx(0.8)}

    def test_state_tracks_live_queue(self):
        engine = FakeEngine(0)
        mon = RingPressureMonitor({0: engine}, inflight_budget=4)
        assert mon.state(0) == OK
        engine.send_queue.extend([b"x"] * 4)
        assert mon.state(0) == SHED
        engine.send_queue.clear()
        assert mon.state(0) == OK

    @pytest.mark.parametrize("kwargs", [
        {"inflight_budget": 0},
        {"inflight_budget": 4, "degrade_ratio": 0.0},
        {"inflight_budget": 4, "degrade_ratio": 0.8, "shed_ratio": 0.5},
        {"inflight_budget": 4, "shed_ratio": 1.5},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            RingPressureMonitor({0: FakeEngine()}, **kwargs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) == CLOSED
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == OPEN
        assert not breaker.allow(0.5)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.5) == OPEN
        assert breaker.state(1.0) == HALF_OPEN
        assert breaker.allow(1.0)          # the single probe
        assert not breaker.allow(1.0)      # probes exhausted
        breaker.record_success(1.0)
        assert breaker.state(1.0) == CLOSED
        assert breaker.allow(1.0)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0)
        assert breaker.state(1.5) == OPEN
        # The reset timeout restarted at the half-open failure.
        assert breaker.state(2.0) == HALF_OPEN

    def test_gauge_values(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        assert breaker.value(0.0) == STATE_VALUES[CLOSED]
        breaker.record_failure(0.0)
        assert breaker.value(0.0) == STATE_VALUES[OPEN]
        assert breaker.value(1.0) == STATE_VALUES[HALF_OPEN]

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"reset_timeout": 0.0},
        {"half_open_probes": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ConfigError):
            CircuitBreaker(**kwargs)


class TestDeadlineBudget:
    def test_charges_until_exhausted(self):
        budget = DeadlineBudget(start=1.0, timeout=0.001)
        assert not budget.expired
        assert budget.charge(0.0004)
        assert budget.charge(0.0004)
        assert not budget.charge(0.0004)   # 1.0012 > 1.001
        assert budget.expired

    def test_now_tracks_charges(self):
        budget = DeadlineBudget(start=2.0, timeout=1.0)
        budget.charge(0.25)
        assert budget.now == pytest.approx(2.25)

    def test_zero_timeout_raises(self):
        with pytest.raises(ConfigError):
            DeadlineBudget(start=0.0, timeout=0.0)
