"""Unit tests for fault state, fault reports and the health monitors."""

from __future__ import annotations

import pytest

from repro.core.monitor import ProblemCounterMonitor, RecvCountMonitor
from repro.core.reports import NetworkFaultState
from repro.types import FaultKind


def make_faults(num_networks: int = 2):
    reports = []
    faults = NetworkFaultState(node=1, num_networks=num_networks,
                               on_fault_report=reports.append,
                               now_fn=lambda: 42.0)
    return faults, reports


class TestNetworkFaultState:
    def test_initially_all_operational(self):
        faults, _ = make_faults(3)
        assert faults.operational_networks == [0, 1, 2]
        assert faults.faulty_networks == []
        assert faults.operational_count() == 3

    def test_mark_faulty_reports_and_flags(self):
        faults, reports = make_faults(2)
        assert faults.mark_faulty(1, detail="test")
        assert faults.is_faulty(1)
        assert reports[0].kind is FaultKind.NETWORK_FAILED
        assert reports[0].network == 1
        assert reports[0].time == 42.0

    def test_mark_faulty_idempotent(self):
        faults, reports = make_faults(2)
        faults.mark_faulty(1)
        assert not faults.mark_faulty(1)
        assert len(reports) == 1

    def test_refuses_to_fail_last_network(self):
        faults, reports = make_faults(2)
        faults.mark_faulty(0)
        assert not faults.mark_faulty(1)
        assert not faults.is_faulty(1)
        # A report is still raised so the administrator hears about it.
        assert any("refused" in r.detail for r in reports)

    def test_single_network_never_marked(self):
        faults, _ = make_faults(1)
        assert not faults.mark_faulty(0)

    def test_clear_fault_restores(self):
        faults, reports = make_faults(2)
        faults.mark_faulty(0)
        assert faults.clear_fault(0)
        assert not faults.is_faulty(0)
        assert reports[-1].kind is FaultKind.NETWORK_RESTORED

    def test_clear_nonfaulty_is_noop(self):
        faults, reports = make_faults(2)
        assert not faults.clear_fault(0)
        assert reports == []

    def test_reports_accumulate_locally(self):
        faults, _ = make_faults(2)
        faults.mark_faulty(0)
        faults.clear_fault(0)
        assert len(faults.reports) == 2


class TestProblemCounterMonitor:
    def test_threshold_marks_faulty(self):
        faults, reports = make_faults(2)
        monitor = ProblemCounterMonitor(faults, threshold=3)
        for _ in range(2):
            monitor.token_copy_missing(1)
        assert not faults.is_faulty(1)
        monitor.token_copy_missing(1)
        assert faults.is_faulty(1)
        assert "problem counter" in reports[0].detail

    def test_decay_prevents_accumulation(self):
        """Requirement A6: sporadic loss must never trip the detector."""
        faults, _ = make_faults(2)
        monitor = ProblemCounterMonitor(faults, threshold=3)
        for _ in range(10):
            monitor.token_copy_missing(1)
            monitor.decay()  # one loss per decay period
        assert not faults.is_faulty(1)

    def test_decay_floors_at_zero(self):
        faults, _ = make_faults(2)
        monitor = ProblemCounterMonitor(faults, threshold=3)
        monitor.decay()
        assert monitor.counters == [0, 0]

    def test_faulty_network_not_counted_further(self):
        faults, _ = make_faults(3)
        monitor = ProblemCounterMonitor(faults, threshold=1)
        monitor.token_copy_missing(1)
        assert faults.is_faulty(1)
        before = monitor.counters[1]
        monitor.token_copy_missing(1)
        assert monitor.counters[1] == before


class TestRecvCountMonitor:
    def test_lag_beyond_threshold_marks_faulty(self):
        """Requirement P4 via the Figure 5 module."""
        faults, _ = make_faults(2)
        monitor = RecvCountMonitor(faults, threshold=5)
        for _ in range(6):
            monitor.record(0)
        assert faults.is_faulty(1)

    def test_balanced_traffic_never_marks(self):
        faults, _ = make_faults(2)
        monitor = RecvCountMonitor(faults, threshold=5)
        for _ in range(100):
            monitor.record(0)
            monitor.record(1)
        assert faults.faulty_networks == []

    def test_topup_forgives_sporadic_loss(self):
        """Requirement P5: lagging counters are slowly raised."""
        faults, _ = make_faults(2)
        monitor = RecvCountMonitor(faults, threshold=5)
        for _ in range(50):
            # Network 1 drops one frame in five, but tops up in between.
            for _ in range(5):
                monitor.record(0)
            for _ in range(4):
                monitor.record(1)
            monitor.topup()
        assert not faults.is_faulty(1)

    def test_topup_does_not_exceed_max(self):
        faults, _ = make_faults(2)
        monitor = RecvCountMonitor(faults, threshold=5)
        monitor.record(0)
        monitor.topup()
        assert monitor.recv_count == [1, 1]
        monitor.topup()
        assert monitor.recv_count == [1, 1]

    def test_label_in_report(self):
        faults, reports = make_faults(2)
        monitor = RecvCountMonitor(faults, threshold=1, label="messages from 7")
        for _ in range(3):
            monitor.record(0)
        assert "messages from 7" in reports[0].detail

    def test_three_networks_only_laggard_marked(self):
        faults, _ = make_faults(3)
        monitor = RecvCountMonitor(faults, threshold=3)
        for _ in range(5):
            monitor.record(0)
            monitor.record(1)
        assert faults.faulty_networks == [2]
