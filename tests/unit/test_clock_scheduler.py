"""Unit tests for the virtual clock and the event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import EventScheduler


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance_to(1.5)
        assert clock.now() == 1.5

    def test_advance_to_same_time_is_allowed(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_refuses_to_go_backwards(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)


class TestEventScheduler:
    def test_call_after_fires_in_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_after(0.3, fired.append, "c")
        scheduler.call_after(0.1, fired.append, "a")
        scheduler.call_after(0.2, fired.append, "b")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for label in "abcde":
            scheduler.call_at(1.0, fired.append, label)
        scheduler.run()
        assert fired == list("abcde")

    def test_clock_advances_with_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.call_after(0.5, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [0.5]

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.call_after(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.call_after(-0.1, lambda: None)

    def test_cancelled_timer_never_fires(self):
        scheduler = EventScheduler()
        fired = []
        timer = scheduler.call_after(0.1, fired.append, "x")
        timer.cancel()
        scheduler.run()
        assert fired == []
        assert timer.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(0.1, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_timer_active_lifecycle(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(0.1, lambda: None)
        assert timer.active
        scheduler.run()
        assert not timer.active
        assert not timer.cancelled

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.call_after(0.1, lambda: fired.append("second"))
        scheduler.call_after(0.1, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now() == pytest.approx(0.2)

    def test_event_at_current_time_fires(self):
        scheduler = EventScheduler()
        fired = []

        def now_event():
            scheduler.call_after(0.0, lambda: fired.append("same-time"))
        scheduler.call_after(0.1, now_event)
        scheduler.run()
        assert fired == ["same-time"]

    def test_run_until_fires_inclusive_boundary(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "at")
        scheduler.call_at(1.0001, fired.append, "after")
        scheduler.run_until(1.0)
        assert fired == ["at"]
        assert scheduler.now() == 1.0

    def test_run_until_advances_clock_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(3.0)
        assert scheduler.now() == 3.0

    def test_run_max_events(self):
        scheduler = EventScheduler()
        for _ in range(10):
            scheduler.call_after(0.1, lambda: None)
        assert scheduler.run(max_events=4) == 4
        assert scheduler.run() == 6

    def test_events_processed_excludes_cancelled(self):
        scheduler = EventScheduler()
        keep = scheduler.call_after(0.1, lambda: None)
        drop = scheduler.call_after(0.2, lambda: None)
        drop.cancel()
        scheduler.run()
        assert scheduler.events_processed == 1
        assert keep.when == pytest.approx(0.1)

    def test_peek_time_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.call_after(0.1, lambda: None)
        scheduler.call_after(0.2, lambda: None)
        first.cancel()
        assert scheduler.peek_time() == pytest.approx(0.2)

    def test_peek_time_empty(self):
        assert EventScheduler().peek_time() is None

    def test_step_returns_false_when_drained(self):
        assert EventScheduler().step() is False


class TestScheduleNow:
    """The now-queue: vectorized dispatch of same-timestamp events."""

    def test_now_events_fire_before_later_heap_events(self):
        scheduler = EventScheduler()
        fired = []

        def poster():
            fired.append("poster")
            scheduler.schedule_now(fired.append, "now-1")
            scheduler.schedule_now(fired.append, "now-2")
        scheduler.call_at(1.0, poster)
        scheduler.call_at(1.0001, fired.append, "later")
        scheduler.run_until(2.0)
        assert fired == ["poster", "now-1", "now-2", "later"]

    def test_now_events_fire_before_same_time_heap_entries(self):
        scheduler = EventScheduler()
        fired = []

        def poster():
            fired.append("poster")
            scheduler.schedule_now(fired.append, "now")
        scheduler.call_at(1.0, poster)
        scheduler.call_at(1.0, fired.append, "heap-peer")
        scheduler.run_until(2.0)
        # run_until drains the now-queue before popping the heap again.
        assert fired == ["poster", "now", "heap-peer"]

    def test_now_events_do_not_advance_clock(self):
        scheduler = EventScheduler()
        times = []

        def poster():
            scheduler.schedule_now(lambda: times.append(scheduler.now()))
        scheduler.call_at(0.5, poster)
        scheduler.run_until(2.0)
        assert times == [0.5]

    def test_now_events_can_chain(self):
        scheduler = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                scheduler.schedule_now(chain, depth + 1)
        scheduler.call_at(1.0, chain, 0)
        scheduler.run_until(1.0)
        assert fired == [0, 1, 2, 3]

    def test_now_events_count_as_processed(self):
        scheduler = EventScheduler()
        scheduler.call_at(1.0, lambda: scheduler.schedule_now(lambda: None))
        scheduler.run_until(1.0)
        assert scheduler.events_processed == 2

    def test_step_drains_now_queue_first(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_now(fired.append, "now")
        scheduler.call_at(0.0, fired.append, "heap")
        assert scheduler.step()
        assert fired == ["now"]
        assert scheduler.step()
        assert fired == ["now", "heap"]

    def test_pending_and_peek_time_see_now_queue(self):
        scheduler = EventScheduler()
        scheduler.run_until(1.5)
        scheduler.schedule_now(lambda: None)
        assert scheduler.pending() == 1
        assert scheduler.peek_time() == pytest.approx(1.5)
        assert scheduler.metrics()["pending"] == 1

    def test_run_drains_now_queue(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_now(fired.append, "a")
        scheduler.schedule_now(fired.append, "b")
        assert scheduler.run() == 2
        assert fired == ["a", "b"]

    def test_ready_entries_reifies_now_events(self):
        """The explorer sees now-events as ordinary choosable entries."""
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_now(fired.append, "now-a")
        scheduler.schedule_now(fired.append, "now-b")
        ready = scheduler.ready_entries()
        assert len(ready) == 2
        assert [e[0] for e in ready] == [0.0, 0.0]
        scheduler.discard_entry(ready[0])  # model the frame's loss
        scheduler.fire_entry(ready[1])
        assert fired == ["now-b"]
        scheduler.run_until(1.0)
        assert fired == ["now-b"]
        assert scheduler.dead_entries == 0

    def test_reified_now_events_sort_after_existing_same_time_entries(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(0.0, fired.append, "heap")
        scheduler.schedule_now(fired.append, "now")
        ready = scheduler.ready_entries()
        assert len(ready) == 2
        for entry in ready:
            scheduler.fire_entry(entry)
        assert fired == ["heap", "now"]


class TestTombstoneCompaction:
    """Cancelled timers are tombstoned in place and compacted when they
    dominate the heap (see the scheduler module docstring)."""

    def test_cancel_tombstones_without_removing(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(1.0, lambda: None)
        timer.cancel()
        assert scheduler.pending() == 1  # entry still queued...
        assert scheduler.dead_entries == 1  # ...but tombstoned

    def test_no_compaction_below_min_dead(self):
        scheduler = EventScheduler()  # default compact_min_dead = 256
        timers = [scheduler.call_after(10.0 + i, lambda: None)
                  for i in range(20)]
        for timer in timers:
            timer.cancel()
        assert scheduler.compactions == 0
        assert scheduler.dead_entries == 20

    def test_compaction_shrinks_heap(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 8
        survivors = [scheduler.call_after(1.0 + i, lambda: None)
                     for i in range(5)]
        doomed = [scheduler.call_after(100.0 + i, lambda: None)
                  for i in range(50)]
        for timer in doomed:
            timer.cancel()
        assert scheduler.compactions >= 1
        # Tombstones below the trigger threshold may legitimately remain;
        # the heap must have shrunk to the survivors plus that remainder.
        assert scheduler.dead_entries <= scheduler.compact_min_dead
        assert scheduler.pending() == len(survivors) + scheduler.dead_entries
        assert scheduler.pending() < len(survivors) + len(doomed)
        assert all(timer.active for timer in survivors)

    def test_compaction_requires_tombstone_majority(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 4
        for i in range(100):
            scheduler.call_after(1.0 + i, lambda: None)
        doomed = [scheduler.call_after(200.0 + i, lambda: None)
                  for i in range(30)]
        for timer in doomed:
            timer.cancel()
        # 30 dead vs 100 live: above min_dead but not a majority.
        assert scheduler.compactions == 0
        assert scheduler.dead_entries == 30

    def test_survivors_fire_in_time_order_after_compaction(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 4
        fired = []
        handles = {}
        for i in range(40):
            handles[i] = scheduler.call_after(1.0 + i * 0.1, fired.append, i)
        # Cancel every even timer plus one odd: 21 dead vs 19 live is a
        # tombstone majority, which triggers compaction.
        for i in list(range(0, 40, 2)) + [39]:
            handles[i].cancel()
        assert scheduler.compactions >= 1
        scheduler.run_until(100.0)
        assert fired == list(range(1, 39, 2))

    def test_insertion_tie_break_survives_compaction(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 2
        fired = []
        same_time = 5.0
        keepers = []
        doomed = []
        for i in range(12):
            timer = scheduler.call_at(same_time, fired.append, i)
            (keepers if i % 3 == 0 else doomed).append((i, timer))
        for _, timer in doomed:
            timer.cancel()
        assert scheduler.compactions >= 1
        scheduler.run_until(same_time)
        # Survivors at an identical timestamp still fire in insertion order.
        assert fired == [i for i, _ in keepers]

    def test_dead_count_drains_when_tombstones_surface(self):
        scheduler = EventScheduler()
        early = scheduler.call_after(0.1, lambda: None)
        scheduler.call_after(0.2, lambda: None)
        early.cancel()
        assert scheduler.dead_entries == 1
        scheduler.run_until(1.0)
        assert scheduler.dead_entries == 0
        assert scheduler.events_processed == 1

    def test_cancel_after_fire_does_not_count_as_dead(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(0.1, lambda: None)
        scheduler.run_until(1.0)
        assert not timer.active
        timer.cancel()  # late cancel of a fired timer
        assert timer.cancelled
        assert scheduler.dead_entries == 0

    def test_double_cancel_counts_once(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert scheduler.dead_entries == 1

    def test_compaction_during_run_keeps_draining(self):
        """A compaction triggered from inside a callback must not detach
        the heap alias held by the running ``run_until`` loop."""
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 2
        fired = []
        doomed = [scheduler.call_after(50.0 + i, lambda: None)
                  for i in range(10)]

        def cancel_all():
            fired.append("cancel")
            for timer in doomed:
                timer.cancel()

        scheduler.call_after(0.1, cancel_all)
        scheduler.call_after(0.2, fired.append, "late")
        scheduler.run_until(1.0)
        assert fired == ["cancel", "late"]
        assert scheduler.compactions >= 1
        # Anything still queued can only be a leftover tombstone.
        assert scheduler.pending() == scheduler.dead_entries


def _tombstones(scheduler):
    return sum(1 for e in scheduler._heap if e[2] is None)


class TestCancelAfterCompaction:
    """cancel() must stay idempotent and accounting-safe once compaction
    has physically removed the handle's tombstone from the heap."""

    def test_double_cancel_of_compacted_handle(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 2
        live = [scheduler.call_after(10.0 + i, lambda: None) for i in range(2)]
        doomed = [scheduler.call_after(20.0 + i, lambda: None) for i in range(5)]
        for timer in doomed:
            timer.cancel()
        assert scheduler.compactions >= 1
        assert scheduler.dead_entries == _tombstones(scheduler)
        # Compaction removed (most of) the tombstones from the heap;
        # cancelling the same handles again must not drive the accounting
        # negative or touch the heap.
        before = scheduler.dead_entries
        for timer in doomed:
            timer.cancel()
            timer.cancel()
        assert scheduler.dead_entries == before
        assert scheduler.dead_entries == _tombstones(scheduler)
        assert scheduler.pending() - scheduler.dead_entries == len(live)
        scheduler.run_until(100.0)
        assert scheduler.dead_entries == 0

    def test_cancel_fired_then_compact_then_cancel_again(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 1
        fired = []
        early = scheduler.call_after(0.1, fired.append, "early")
        doomed = [scheduler.call_after(5.0 + i, lambda: None) for i in range(4)]
        scheduler.run_until(0.5)
        assert fired == ["early"]
        for timer in doomed:
            timer.cancel()
        early.cancel()  # late cancel of a fired timer, after compaction
        early.cancel()
        assert scheduler.dead_entries == _tombstones(scheduler)
        scheduler.run_until(10.0)
        assert scheduler.dead_entries == 0
        assert scheduler.pending() == 0

    def test_dead_entries_matches_heap_tombstones(self):
        """The accounting invariant: dead_entries == tombstones in heap."""
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 3
        handles = [scheduler.call_after(1.0 + i, lambda: None)
                   for i in range(20)]
        for i, timer in enumerate(handles):
            if i % 2:
                timer.cancel()
                timer.cancel()
            assert scheduler.dead_entries == _tombstones(scheduler)
            assert scheduler.dead_entries >= 0


class TestExplorerHooks:
    def test_ready_entries_orders_by_insertion(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "a")
        scheduler.schedule(1.0, fired.append, "b")
        scheduler.call_at(2.0, fired.append, "later")
        ready = scheduler.ready_entries()
        assert len(ready) == 2
        assert [e[0] for e in ready] == [1.0, 1.0]
        assert ready[0][1] < ready[1][1]

    def test_ready_entries_skips_tombstones(self):
        scheduler = EventScheduler()
        doomed = scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(1.0, lambda: None)
        doomed.cancel()
        assert len(scheduler.ready_entries()) == 1

    def test_fire_entry_out_of_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "first-inserted")
        scheduler.call_at(1.0, fired.append, "second-inserted")
        ready = scheduler.ready_entries()
        scheduler.fire_entry(ready[1])
        assert fired == ["second-inserted"]
        assert scheduler.now() == 1.0
        # The fired entry is tombstoned; the default run drains the rest.
        scheduler.run_until(2.0)
        assert fired == ["second-inserted", "first-inserted"]
        assert scheduler.dead_entries == 0

    def test_fire_entry_matches_step_semantics(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "x")
        scheduler.fire_entry(scheduler.ready_entries()[0])
        assert fired == ["x"]
        assert scheduler.events_processed == 1
        assert not scheduler.step()

    def test_fire_entry_rejects_dead_entry(self):
        scheduler = EventScheduler()
        timer = scheduler.call_at(1.0, lambda: None)
        entry = scheduler.ready_entries()[0]
        timer.cancel()
        with pytest.raises(SimulationError):
            scheduler.fire_entry(entry)

    def test_fired_timer_handle_reads_inactive(self):
        scheduler = EventScheduler()
        timer = scheduler.call_at(1.0, lambda: None)
        scheduler.fire_entry(scheduler.ready_entries()[0])
        assert not timer.active
        timer.cancel()  # must not double-count
        assert scheduler.dead_entries <= 1
        scheduler.run_until(2.0)
        assert scheduler.dead_entries == 0

    def test_discard_entry_drops_without_firing(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "dropped")
        scheduler.call_at(1.0, fired.append, "kept")
        scheduler.discard_entry(scheduler.ready_entries()[0])
        scheduler.run_until(2.0)
        assert fired == ["kept"]
        assert scheduler.dead_entries == 0

    def test_discard_entry_rejects_double_discard(self):
        scheduler = EventScheduler()
        scheduler.call_at(1.0, lambda: None)
        entry = scheduler.ready_entries()[0]
        scheduler.discard_entry(entry)
        with pytest.raises(SimulationError):
            scheduler.discard_entry(entry)

    def test_fire_entry_interleaves_with_cancel_compaction(self):
        scheduler = EventScheduler()
        scheduler.compact_min_dead = 2
        fired = []
        doomed = [scheduler.call_after(50.0 + i, lambda: None)
                  for i in range(6)]

        def cancel_all():
            fired.append("cancel")
            for timer in doomed:
                timer.cancel()

        scheduler.call_at(1.0, cancel_all)
        scheduler.call_at(1.0, fired.append, "peer")
        ready = scheduler.ready_entries()
        scheduler.fire_entry(ready[0])  # compacts mid-fire
        assert scheduler.compactions >= 1
        assert scheduler.dead_entries == _tombstones(scheduler)
        scheduler.run_until(2.0)
        assert fired == ["cancel", "peer"]
        # Tombstones of far-future cancels surface (and drain) later.
        assert scheduler.dead_entries == _tombstones(scheduler)
        scheduler.run_until(100.0)
        assert scheduler.dead_entries == 0
        assert scheduler.pending() == 0


class TestBatchedDispatchAccounting:
    """The batched dispatch loops (now-queue drain, same-timestamp heap
    run, ``drain_now`` bulk posts) must be invisible to the accounting:
    ``metrics()`` / ``dead_entries`` / ``compactions`` read exactly as if
    every event had been dispatched one ``step()`` at a time."""

    @staticmethod
    def _build_workload(scheduler, fired):
        """A mixed workload: same-time ties, chained now-events, cancels."""
        scheduler.call_at(1.0, fired.append, "a")
        doomed = scheduler.call_at(1.0, fired.append, "doomed-same-time")
        scheduler.call_at(1.0, fired.append, "b")

        def post_batch():
            fired.append("batch-head")
            scheduler.drain_now([(fired.append, ("n1",)),
                                 (fired.append, ("n2",)),
                                 (fired.append, ("n3",))])

        scheduler.call_at(2.0, post_batch)
        scheduler.call_at(2.0, fired.append, "after-batch-entry")
        far = [scheduler.call_after(50.0 + i, lambda: None) for i in range(4)]
        scheduler.call_at(1.0, lambda: (doomed.cancel(),
                                        [t.cancel() for t in far]))
        scheduler.call_at(3.0, fired.append, "tail")

    def test_metrics_identical_batched_vs_step(self):
        batched_fired, stepped_fired = [], []

        batched = EventScheduler()
        self._build_workload(batched, batched_fired)
        batched.run_until(10.0)
        # Far-future tombstones have not surfaced yet; accounting agrees
        # with the heap's actual contents mid-run.
        assert batched.dead_entries == _tombstones(batched) == 4

        stepped = EventScheduler()
        self._build_workload(stepped, stepped_fired)
        while stepped.step():
            pass
        batched.run_until(60.0)  # surface the remaining tombstones

        assert batched_fired == stepped_fired
        assert batched.metrics() == stepped.metrics()
        assert batched.dead_entries == 0

    def test_drain_now_matches_individual_posts(self):
        pairs = [(i, ("ev%d" % i,)) for i in range(12)]

        bulk_fired, single_fired = [], []
        bulk = EventScheduler()
        bulk.drain_now([(bulk_fired.append, args) for _, args in pairs])
        single = EventScheduler()
        for _, args in pairs:
            single.schedule_now(single_fired.append, *args)
        assert bulk.metrics() == single.metrics()  # both still queued
        bulk.run_until(0.0)
        single.run_until(0.0)
        assert bulk_fired == single_fired == [a[0] for _, a in pairs]
        assert bulk.metrics() == single.metrics()
        assert bulk.metrics()["events_processed"] == len(pairs)

    def test_cancel_idempotent_across_drain_now_flush(self):
        scheduler = EventScheduler()
        fired = []
        timer = scheduler.call_at(5.0, fired.append, "must-not-fire")
        # The batch cancels the timer twice mid-flush; a third cancel
        # lands after the flush completes.
        scheduler.drain_now([(timer.cancel, ()),
                             (fired.append, ("between",)),
                             (timer.cancel, ())])
        scheduler.run_until(0.0)
        timer.cancel()
        assert fired == ["between"]
        assert scheduler.dead_entries == 1  # counted once, not three times
        assert not timer.active and timer.cancelled
        scheduler.run_until(10.0)  # tombstone surfaces and drains
        assert fired == ["between"]
        assert scheduler.dead_entries == 0
        assert scheduler.metrics() == {"events_processed": 3, "pending": 0,
                                       "dead_entries": 0, "compactions": 0}

    def test_same_timestamp_tombstone_discard_accounting(self):
        # Tombstones sharing a timestamp with live entries are discarded
        # inside the batched same-timestamp inner loop; the dead count and
        # events_processed must match the one-step-at-a-time reference.
        def build(scheduler, fired):
            timers = [scheduler.call_at(1.0, fired.append, i)
                      for i in range(6)]
            for timer in timers[1::2]:
                timer.cancel()

        batched_fired, stepped_fired = [], []
        batched = EventScheduler()
        build(batched, batched_fired)
        batched.run_until(1.0)
        stepped = EventScheduler()
        build(stepped, stepped_fired)
        while stepped.step():
            pass
        assert batched_fired == stepped_fired == [0, 2, 4]
        assert batched.metrics() == stepped.metrics()
        assert batched.dead_entries == 0

    def test_mid_batch_cancel_of_later_same_time_entry(self):
        # A same-timestamp run where an early callback cancels a peer that
        # is still in the heap at the same time: the batched loop must skip
        # it with correct dead accounting, exactly like step().
        def build(scheduler, fired):
            victim = scheduler.call_at(1.0, fired.append, "victim")
            scheduler.call_at(1.0, lambda: (fired.append("killer"),
                                            victim.cancel()))
            scheduler.call_at(1.0, fired.append, "bystander")
            return victim

        batched_fired, stepped_fired = [], []
        batched = EventScheduler()
        build(batched, batched_fired)
        batched.run_until(2.0)
        stepped = EventScheduler()
        build(stepped, stepped_fired)
        while stepped.step():
            pass
        # call_at(1.0, killer) was inserted after victim, so victim fires
        # first in insertion order... unless the killer comes first.  The
        # insertion order here is victim, killer, bystander: victim fires,
        # then its cancel is a no-op on a fired timer.
        assert batched_fired == stepped_fired
        assert batched.metrics() == stepped.metrics()
        assert batched.dead_entries == stepped.dead_entries == 0

    def test_compaction_counters_identical_batched_vs_step(self):
        def build(scheduler, fired):
            scheduler.compact_min_dead = 4
            far = [scheduler.call_after(100.0 + i, lambda: None)
                   for i in range(10)]
            scheduler.call_at(1.0, lambda: [t.cancel() for t in far])
            scheduler.call_at(2.0, fired.append, "late")

        batched_fired, stepped_fired = [], []
        batched = EventScheduler()
        build(batched, batched_fired)
        batched.run_until(5.0)
        assert batched.dead_entries == _tombstones(batched)
        stepped = EventScheduler()
        build(stepped, stepped_fired)
        while stepped.step():
            pass
        batched.run_until(200.0)  # surface the post-compaction tombstones
        assert batched_fired == stepped_fired == ["late"]
        assert batched.compactions == stepped.compactions == 1
        assert batched.metrics() == stepped.metrics()
        assert batched.dead_entries == 0
