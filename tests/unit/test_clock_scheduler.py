"""Unit tests for the virtual clock and the event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import EventScheduler


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance_to(1.5)
        assert clock.now() == 1.5

    def test_advance_to_same_time_is_allowed(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_refuses_to_go_backwards(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)


class TestEventScheduler:
    def test_call_after_fires_in_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_after(0.3, fired.append, "c")
        scheduler.call_after(0.1, fired.append, "a")
        scheduler.call_after(0.2, fired.append, "b")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for label in "abcde":
            scheduler.call_at(1.0, fired.append, label)
        scheduler.run()
        assert fired == list("abcde")

    def test_clock_advances_with_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.call_after(0.5, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [0.5]

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.call_after(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.call_after(-0.1, lambda: None)

    def test_cancelled_timer_never_fires(self):
        scheduler = EventScheduler()
        fired = []
        timer = scheduler.call_after(0.1, fired.append, "x")
        timer.cancel()
        scheduler.run()
        assert fired == []
        assert timer.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(0.1, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_timer_active_lifecycle(self):
        scheduler = EventScheduler()
        timer = scheduler.call_after(0.1, lambda: None)
        assert timer.active
        scheduler.run()
        assert not timer.active
        assert not timer.cancelled

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.call_after(0.1, lambda: fired.append("second"))
        scheduler.call_after(0.1, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now() == pytest.approx(0.2)

    def test_event_at_current_time_fires(self):
        scheduler = EventScheduler()
        fired = []

        def now_event():
            scheduler.call_after(0.0, lambda: fired.append("same-time"))
        scheduler.call_after(0.1, now_event)
        scheduler.run()
        assert fired == ["same-time"]

    def test_run_until_fires_inclusive_boundary(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(1.0, fired.append, "at")
        scheduler.call_at(1.0001, fired.append, "after")
        scheduler.run_until(1.0)
        assert fired == ["at"]
        assert scheduler.now() == 1.0

    def test_run_until_advances_clock_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(3.0)
        assert scheduler.now() == 3.0

    def test_run_max_events(self):
        scheduler = EventScheduler()
        for _ in range(10):
            scheduler.call_after(0.1, lambda: None)
        assert scheduler.run(max_events=4) == 4
        assert scheduler.run() == 6

    def test_events_processed_excludes_cancelled(self):
        scheduler = EventScheduler()
        keep = scheduler.call_after(0.1, lambda: None)
        drop = scheduler.call_after(0.2, lambda: None)
        drop.cancel()
        scheduler.run()
        assert scheduler.events_processed == 1
        assert keep.when == pytest.approx(0.1)

    def test_peek_time_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.call_after(0.1, lambda: None)
        scheduler.call_after(0.2, lambda: None)
        first.cancel()
        assert scheduler.peek_time() == pytest.approx(0.2)

    def test_peek_time_empty(self):
        assert EventScheduler().peek_time() is None

    def test_step_returns_false_when_drained(self):
        assert EventScheduler().step() is False
