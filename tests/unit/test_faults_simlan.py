"""Unit tests for fault models and the simulated LAN."""

from __future__ import annotations

import random

import pytest

from repro.config import LanConfig
from repro.errors import ConfigError, TransportError
from repro.net.faults import FaultPlan, NetworkFaultModel
from repro.net.simlan import SimLan
from repro.sim.scheduler import EventScheduler
from repro.types import RingId
from repro.wire.packets import Chunk, DataPacket, Token

RING = RingId(4, 1)


def packet(seq: int = 1, size: int = 100) -> DataPacket:
    return DataPacket(sender=1, ring_id=RING, seq=seq,
                      chunks=(Chunk.whole(1, b"x" * size),))


class TestNetworkFaultModel:
    def test_default_allows_everything(self):
        model = NetworkFaultModel()
        assert model.can_send(1)
        assert model.can_deliver(1, 2)

    def test_down_blocks_all(self):
        model = NetworkFaultModel()
        model.down = True
        assert not model.can_send(1)
        assert not model.can_deliver(1, 2)

    def test_send_blocked(self):
        model = NetworkFaultModel()
        model.send_blocked.add(3)
        assert not model.can_send(3)
        assert model.can_send(1)

    def test_recv_blocked(self):
        model = NetworkFaultModel()
        model.recv_blocked.add(3)
        assert not model.can_deliver(1, 3)
        assert model.can_deliver(1, 2)

    def test_blocked_pairs_are_directional(self):
        model = NetworkFaultModel()
        model.blocked_pairs.add((1, 2))
        assert not model.can_deliver(1, 2)
        assert model.can_deliver(2, 1)

    def test_partition_blocks_across_groups(self):
        model = NetworkFaultModel()
        model.set_partition([[1, 2], [3, 4]])
        assert model.can_deliver(1, 2)
        assert model.can_deliver(3, 4)
        assert not model.can_deliver(1, 3)
        assert not model.can_deliver(4, 2)

    def test_partition_groups_must_be_disjoint(self):
        model = NetworkFaultModel()
        with pytest.raises(ConfigError):
            model.set_partition([[1, 2], [2, 3]])

    def test_heal_clears_everything(self):
        model = NetworkFaultModel()
        model.down = True
        model.send_blocked.add(1)
        model.recv_blocked.add(2)
        model.blocked_pairs.add((1, 2))
        model.set_partition([[1], [2]])
        model.extra_loss_rate = 0.5
        model.heal()
        assert model.can_send(1)
        assert model.can_deliver(1, 2)
        assert model.extra_loss_rate == 0.0


class TestFaultPlan:
    def test_fluent_construction(self):
        plan = (FaultPlan()
                .fail_network(at=1.0, network=0)
                .restore_network(at=2.0, network=0)
                .sever_send(at=0.5, network=1, node=3)
                .sever_recv(at=0.5, network=1, node=4)
                .sever_pair(at=0.6, network=1, src=1, dst=2)
                .partition(at=0.7, network=1, groups=[[1, 2], [3]])
                .set_loss(at=0.8, network=1, rate=0.1))
        assert len(plan.events) == 7

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().fail_network(at=-1.0, network=0)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().set_loss(at=0.0, network=0, rate=1.5)

    def test_events_apply_to_model(self):
        plan = FaultPlan().fail_network(at=1.0, network=0)
        model = NetworkFaultModel()
        plan.events[0].apply(model)
        assert model.down

    def test_event_str(self):
        plan = FaultPlan().fail_network(at=1.0, network=2)
        assert "net2" in str(plan.events[0])


class TestSimLan:
    def _lan(self, **kwargs) -> tuple:
        scheduler = EventScheduler()
        lan = SimLan(scheduler, LanConfig(**kwargs), random.Random(1))
        return scheduler, lan

    def test_broadcast_excludes_sender(self):
        scheduler, lan = self._lan()
        got = {1: [], 2: [], 3: []}
        for node in got:
            lan.attach(node, lambda src, p, node=node: got[node].append(p))
        lan.transmit(1, packet())
        scheduler.run()
        assert got[1] == []
        assert len(got[2]) == 1 and len(got[3]) == 1

    def test_unicast_reaches_only_dest(self):
        scheduler, lan = self._lan()
        got = {1: [], 2: [], 3: []}
        for node in got:
            lan.attach(node, lambda src, p, node=node: got[node].append(p))
        lan.transmit(1, Token(RING), dest=2)
        scheduler.run()
        assert len(got[2]) == 1
        assert got[3] == []

    def test_self_unicast_allowed(self):
        """A singleton ring sends the token to itself through the network."""
        scheduler, lan = self._lan()
        got = []
        lan.attach(1, lambda src, p: got.append(p))
        lan.transmit(1, Token(RING), dest=1)
        scheduler.run()
        assert len(got) == 1

    def test_per_sender_fifo(self):
        scheduler, lan = self._lan()
        got = []
        lan.attach(2, lambda src, p: got.append(p.seq))
        lan.attach(1, lambda src, p: None)
        for seq in range(1, 6):
            lan.transmit(1, packet(seq))
        scheduler.run()
        assert got == [1, 2, 3, 4, 5]

    def test_medium_serialises_transmissions(self):
        scheduler, lan = self._lan()
        arrivals = []
        lan.attach(2, lambda src, p: arrivals.append(scheduler.now()))
        lan.attach(1, lambda src, p: None)
        lan.transmit(1, packet(1, size=1000))
        lan.transmit(1, packet(2, size=1000))
        scheduler.run()
        wire = LanConfig().wire_time(packet(1, size=1000).wire_size())
        assert arrivals[1] - arrivals[0] == pytest.approx(wire)

    def test_latency_applied(self):
        scheduler, lan = self._lan(latency=1e-3)
        arrivals = []
        lan.attach(2, lambda src, p: arrivals.append(scheduler.now()))
        lan.attach(1, lambda src, p: None)
        lan.transmit(1, packet())
        scheduler.run()
        expected = LanConfig().wire_time(packet().wire_size()) + 1e-3
        assert arrivals[0] == pytest.approx(expected)

    def test_double_attach_rejected(self):
        _, lan = self._lan()
        lan.attach(1, lambda src, p: None)
        with pytest.raises(TransportError):
            lan.attach(1, lambda src, p: None)

    def test_detach_stops_delivery(self):
        scheduler, lan = self._lan()
        got = []
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        lan.detach(2)
        lan.transmit(1, packet())
        scheduler.run()
        assert got == []

    def test_loss_rate_drops_frames_deterministically(self):
        scheduler, lan = self._lan(loss_rate=0.5)
        got = []
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        for seq in range(100):
            lan.transmit(1, packet(seq))
        scheduler.run()
        assert 20 < len(got) < 80
        assert lan.stats.frames_lost == 100 - len(got)

    def test_fault_model_blocks_send(self):
        scheduler, lan = self._lan()
        got = []
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        lan.faults.send_blocked.add(1)
        lan.transmit(1, packet())
        scheduler.run()
        assert got == []
        assert lan.stats.frames_blocked >= 1
        assert lan.stats.frames_sent == 0

    def test_extra_loss_rate_composes(self):
        scheduler, lan = self._lan(loss_rate=0.0)
        got = []
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: got.append(p))
        lan.faults.extra_loss_rate = 1.0 - 1e-12
        for seq in range(20):
            lan.transmit(1, packet(seq))
        scheduler.run()
        assert got == []

    def test_stats_accounting(self):
        scheduler, lan = self._lan()
        lan.attach(1, lambda src, p: None)
        lan.attach(2, lambda src, p: None)
        lan.transmit(1, packet())
        scheduler.run()
        assert lan.stats.frames_offered == 1
        assert lan.stats.frames_sent == 1
        assert lan.stats.deliveries == 1
        assert lan.stats.busy_time > 0
        assert lan.stats.utilization(elapsed=1.0) == pytest.approx(
            lan.stats.busy_time)

    def test_utilization_zero_elapsed(self):
        _, lan = self._lan()
        assert lan.stats.utilization(0.0) == 0.0
