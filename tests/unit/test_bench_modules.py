"""Unit tests for the benchmark harness itself (workload, runner, report,
figures, latency, CLI)."""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    FigurePoint,
    FigureResult,
    as_bandwidth_view,
    extension_failover_timeline,
    run_figure,
    table_claims,
    table_srp_saturation,
)
from repro.bench.latency import LatencyResult, measure_delivery_latency
from repro.bench.report import ascii_loglog_chart, format_table
from repro.bench.runner import ThroughputResult, build_config, run_throughput
from repro.bench.workload import SaturatingWorkload
from repro.api.cluster import SimCluster
from repro.types import ReplicationStyle


class TestWorkload:
    def test_keeps_ring_saturated(self):
        cluster = SimCluster(build_config(ReplicationStyle.NONE, 3))
        cluster.start()
        workload = SaturatingWorkload(cluster, 256)
        workload.start()
        cluster.run_for(0.05)
        # Far more traffic than a non-saturating workload would produce,
        # and the queues are continuously refilled.
        assert workload.total_sent > 500
        for node in cluster.nodes.values():
            assert (len(node.srp.send_queue) > 0
                    or node.srp._packer.has_pending())

    def test_stop_halts_refills(self):
        cluster = SimCluster(build_config(ReplicationStyle.NONE, 3))
        cluster.start()
        workload = SaturatingWorkload(cluster, 256)
        workload.start()
        cluster.run_for(0.02)
        workload.stop()
        sent = workload.total_sent
        cluster.run_for(0.05)
        assert workload.total_sent == sent

    def test_payload_carries_index(self):
        cluster = SimCluster(build_config(ReplicationStyle.NONE, 2))
        cluster.start()
        workload = SaturatingWorkload(cluster, 64, senders=[1])
        workload.start()
        cluster.run_for(0.05)
        first = cluster.nodes[2].delivered[0]
        assert int.from_bytes(first.payload[:8], "big") == 0

    def test_rejects_tiny_messages(self):
        cluster = SimCluster(build_config(ReplicationStyle.NONE, 2))
        with pytest.raises(ValueError):
            SaturatingWorkload(cluster, 4)

    def test_start_idempotent(self):
        cluster = SimCluster(build_config(ReplicationStyle.NONE, 2))
        cluster.start()
        workload = SaturatingWorkload(cluster, 64)
        workload.start()
        workload.start()
        cluster.run_for(0.01)
        assert workload.total_sent > 0


class TestRunner:
    def test_throughput_result_fields(self):
        result = run_throughput(ReplicationStyle.NONE, 2, 512,
                                duration=0.05, warmup=0.02)
        assert result.msgs_per_sec > 0
        assert result.kbytes_per_sec > 0
        assert len(result.network_utilization) == 1
        assert 0.0 <= result.cpu_utilization <= 1.0
        assert "msg/s" in result.row()

    def test_build_config_defaults_per_style(self):
        assert build_config(ReplicationStyle.NONE, 4).totem.num_networks == 1
        assert build_config(ReplicationStyle.ACTIVE, 4).totem.num_networks == 2
        assert build_config(
            ReplicationStyle.ACTIVE_PASSIVE, 4).totem.num_networks == 3

    def test_zero_duration_rates(self):
        result = ThroughputResult(
            style=ReplicationStyle.NONE, num_nodes=1, num_networks=1,
            message_size=1, duration=0.0, messages_delivered=0,
            payload_bytes=0, network_utilization=[0.0], cpu_utilization=0.0,
            retransmission_requests=0, token_timer_expiries=0)
        assert result.msgs_per_sec == 0.0
        assert result.kbytes_per_sec == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_chart_renders_all_series(self):
        chart = ascii_loglog_chart({
            "one": [(100, 1000), (1000, 500)],
            "two": [(100, 2000), (1000, 800)]})
        assert "o = one" in chart
        assert "x = two" in chart
        assert "log-log" in chart

    def test_chart_empty(self):
        assert ascii_loglog_chart({}) == "(no data)"

    def test_chart_single_point(self):
        chart = ascii_loglog_chart({"s": [(700, 9000)]})
        assert "o = s" in chart


class TestFigures:
    @pytest.fixture(scope="class")
    def tiny_figure(self):
        return run_figure("t", "tiny", num_nodes=2, unit="msgs/s",
                          sizes=(512,),
                          styles=(ReplicationStyle.NONE,
                                  ReplicationStyle.ACTIVE),
                          duration=0.05, warmup=0.02)

    def test_run_figure_collects_all_points(self, tiny_figure):
        assert len(tiny_figure.points) == 2
        assert tiny_figure.get(ReplicationStyle.NONE, 512) is not None
        assert tiny_figure.get(ReplicationStyle.NONE, 999) is None

    def test_series_and_table(self, tiny_figure):
        series = tiny_figure.series()
        assert set(series) == {"none", "active"}
        table = tiny_figure.to_table()
        assert "512" in table
        rendered = tiny_figure.render()
        assert "tiny" in rendered

    def test_bandwidth_view_reuses_points(self, tiny_figure):
        view = as_bandwidth_view(tiny_figure, "v", "view")
        assert view.unit == "KB/s"
        assert len(view.points) == len(tiny_figure.points)
        point = view.points[0]
        assert view.value_of(point) == point.kbytes_per_sec

    def test_srp_saturation_table(self):
        text = table_srp_saturation(duration=0.1, warmup=0.05)
        assert "msgs/s" in text

    def test_claims_table_from_prebuilt_figure(self):
        figure = run_figure("c", "claims", num_nodes=4, unit="msgs/s",
                            sizes=(700, 1024),
                            duration=0.1, warmup=0.05)
        text = table_claims(figure=figure)
        assert "packing peak" in text
        assert "active deficit" in text

    def test_failover_timeline_runs(self):
        text = extension_failover_timeline(
            style=ReplicationStyle.ACTIVE, fail_at=0.1, total=0.3,
            bin_width=0.1)
        assert "network failed" in text


class TestLatency:
    def test_latency_result_ordering(self):
        result = measure_delivery_latency(ReplicationStyle.NONE,
                                          num_nodes=2, samples=10)
        assert result.samples == 10
        assert result.p50 <= result.p99 <= result.worst
        assert result.mean > 0
        assert "ms" in result.row()


class TestCli:
    def test_cli_runs_quick_target(self, capsys):
        from repro.bench.cli import main
        assert main(["srp"]) == 0
        out = capsys.readouterr().out
        assert "saturation" in out

    def test_cli_rejects_unknown_target(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["nope"])


class TestGate:
    """Error paths and comparison logic of the benchmark-regression gate."""

    def _fake_result(self, events=100_000.0, ops=10_000.0,
                     p50=0.4, p99=0.5):
        from repro.bench.gate import SCHEMA_VERSION
        return {
            "schema": SCHEMA_VERSION,
            "label": "x",
            "quick": True,
            "workloads": {
                "fig6_active_4n_700B": {
                    "events_per_sec": events, "ops_per_sec": ops},
            },
            "latency": {"virtual_p50_ms": p50, "virtual_p99_ms": p99},
        }

    def test_missing_explicit_baseline_raises(self, tmp_path):
        from repro.bench.gate import run_gate
        from repro.errors import GateError
        with pytest.raises(GateError, match="cannot read baseline"):
            run_gate(output=str(tmp_path / "BENCH_out.json"),
                     baseline=str(tmp_path / "BENCH_missing.json"),
                     quick=True)

    def test_malformed_baseline_raises(self, tmp_path):
        from repro.bench.gate import load_result
        from repro.errors import GateError
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(GateError, match="malformed"):
            load_result(str(bad))

    def test_baseline_without_workloads_raises(self, tmp_path):
        import json

        from repro.bench.gate import load_result
        from repro.errors import GateError
        doc = tmp_path / "BENCH_odd.json"
        doc.write_text(json.dumps({"schema": 1}), encoding="utf-8")
        with pytest.raises(GateError, match="not a gate result"):
            load_result(str(doc))

    def test_wrong_schema_raises(self, tmp_path):
        import json

        from repro.bench.gate import load_result
        from repro.errors import GateError
        doc = tmp_path / "BENCH_old.json"
        doc.write_text(json.dumps({"schema": 999, "workloads": {}}),
                       encoding="utf-8")
        with pytest.raises(GateError, match="schema"):
            load_result(str(doc))

    def test_compare_passes_within_threshold(self):
        from repro.bench.gate import compare
        baseline = self._fake_result(events=100_000.0)
        current = self._fake_result(events=95_000.0)  # 5% drop: tolerated
        assert compare(current, baseline) == []

    def test_compare_flags_throughput_regression(self):
        from repro.bench.gate import compare
        baseline = self._fake_result(events=100_000.0)
        current = self._fake_result(events=80_000.0)  # 20% drop
        regressions = compare(current, baseline)
        assert len(regressions) == 1
        assert "events_per_sec" in regressions[0]

    def test_compare_flags_latency_rise(self):
        from repro.bench.gate import compare
        baseline = self._fake_result(p99=0.4)
        current = self._fake_result(p99=0.6)
        regressions = compare(current, baseline)
        assert any("virtual_p99_ms" in line for line in regressions)

    def test_compare_ignores_unknown_workloads(self):
        from repro.bench.gate import compare
        baseline = self._fake_result()
        current = self._fake_result()
        current["workloads"]["brand_new"] = {"events_per_sec": 1.0,
                                             "ops_per_sec": 1.0}
        assert compare(current, baseline) == []

    def test_find_baseline_prefers_newest_sibling(self, tmp_path):
        import os

        from repro.bench.gate import find_baseline
        old = tmp_path / "BENCH_pr1.json"
        new = tmp_path / "BENCH_pr2.json"
        out = tmp_path / "BENCH_pr3.json"
        old.write_text("{}", encoding="utf-8")
        new.write_text("{}", encoding="utf-8")
        out.write_text("{}", encoding="utf-8")  # excluded: it is the output
        os.utime(old, (1, 1))
        os.utime(new, (2, 2))
        assert find_baseline(str(tmp_path), str(out)) == str(new)
        assert find_baseline(str(tmp_path / "empty"), str(out)) is None


@pytest.mark.perf
class TestGateSmoke:
    """Tier-1 smoke run of the full gate path: tiny workload, no baseline,
    no threshold enforcement — proves the harness end to end."""

    def test_gate_quick_run_writes_expected_fields(self, tmp_path):
        import json

        from repro.bench.gate import run_gate
        output = tmp_path / "BENCH_smoke.json"
        result = run_gate(output=str(output), quick=True, enforce=False)
        assert result["regressions"] == []
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["schema"] == 1
        for metrics in document["workloads"].values():
            assert metrics["events_per_sec"] > 0
            assert metrics["ops_per_sec"] > 0
            assert metrics["events"] > 0
        assert document["latency"]["virtual_p99_ms"] > 0

    def test_fig6_microworkload_runs_with_batching_disabled(self):
        """The unbatched fallback path must stay live: every fig6 gate
        workload still saturates and delivers with batching off."""
        from repro.bench.gate import GATE_WORKLOADS, _measure_workload

        for _name, style, nodes, size in GATE_WORKLOADS:
            metrics = _measure_workload(style, nodes, size, duration=0.05,
                                        warmup=0.02, enable_batching=False)
            assert metrics["batching"] is False
            assert metrics["messages"] > 0
            assert metrics["events_per_sec"] > 0
            assert metrics["virtual_mbps"] > 0

    def test_no_gate_escape_hatch_reports_but_passes(self, tmp_path, capsys):
        import json

        from repro.bench.cli import main
        from repro.bench.gate import SCHEMA_VERSION
        # An impossible baseline: any real machine regresses against it.
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps({
            "schema": SCHEMA_VERSION,
            "workloads": {
                "fig6_active_4n_700B": {"events_per_sec": 1e15,
                                        "ops_per_sec": 1e15},
                "fig6_none_4n_1024B": {"events_per_sec": 1e15,
                                       "ops_per_sec": 1e15},
            },
            "latency": {"virtual_p50_ms": 1e-9, "virtual_p99_ms": 1e-9},
        }), encoding="utf-8")
        output = tmp_path / "BENCH_now.json"
        # Enforced: the gate must fail (exit 1)...
        assert main(["gate", "--quick", "--output", str(output),
                     "--baseline", str(baseline)]) == 1
        assert "GATE FAILED" in capsys.readouterr().err
        # ...with --no-gate it reports the regression but exits 0.
        assert main(["gate", "--quick", "--output", str(output),
                     "--baseline", str(baseline), "--no-gate"]) == 0
        err = capsys.readouterr().err
        assert "not enforced" in err
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["regressions"]
