"""Unit tests for the bench CLI's gate flags and error paths.

``tests/unit/test_bench_modules.py`` covers the measurement machinery;
here the argument plumbing is pinned down: gate flags reach ``run_gate``
with the right values, a failing gate exits non-zero, and reporting covers
the regression/no-gate branches.  ``run_gate`` is stubbed throughout —
these are plumbing tests, not benchmarks.
"""

from __future__ import annotations

import pytest

from repro.bench import cli
from repro.errors import GateError


def canned_result(regressions=()):
    return {
        "workloads": {
            "fig6_active_4n_700B": {"events_per_sec": 100000.0,
                                    "ops_per_sec": 30000.0,
                                    "virtual_mbps": 80.0},
        },
        "latency": {"virtual_p50_ms": 0.4, "virtual_p99_ms": 0.4},
        "baseline": "BENCH_old.json",
        "regressions": list(regressions),
    }


class TestGateFlags:
    def capture_run_gate(self, monkeypatch, result=None, error=None):
        calls = {}

        def fake_run_gate(**kwargs):
            calls.update(kwargs)
            if error is not None:
                raise error
            return result if result is not None else canned_result()

        monkeypatch.setattr("repro.bench.gate.run_gate", fake_run_gate)
        return calls

    def test_default_gate_enables_batching(self, monkeypatch):
        calls = self.capture_run_gate(monkeypatch)
        assert cli.main(["gate"]) == 0
        assert calls["enable_batching"] is True
        assert calls["enforce"] is True
        assert calls["quick"] is False

    def test_unbatched_flag_disables_batching(self, monkeypatch):
        calls = self.capture_run_gate(monkeypatch)
        assert cli.main(["gate", "--unbatched"]) == 0
        assert calls["enable_batching"] is False

    def test_output_and_baseline_passed_through(self, monkeypatch):
        calls = self.capture_run_gate(monkeypatch)
        cli.main(["gate", "--output", "BENCH_x.json",
                  "--baseline", "BENCH_y.json", "--quick"])
        assert calls["output"] == "BENCH_x.json"
        assert calls["baseline"] == "BENCH_y.json"
        assert calls["quick"] is True

    def test_no_gate_disables_enforcement(self, monkeypatch):
        calls = self.capture_run_gate(monkeypatch)
        cli.main(["gate", "--no-gate"])
        assert calls["enforce"] is False


class TestGateReporting:
    def test_failed_gate_exits_nonzero(self, monkeypatch, capsys):
        def fail(**kwargs):
            raise GateError("events_per_sec dropped")
        monkeypatch.setattr("repro.bench.gate.run_gate", fail)
        assert cli.main(["gate"]) == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_success_prints_metrics_and_baseline(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.gate.run_gate",
                            lambda **kw: canned_result())
        assert cli.main(["gate"]) == 0
        captured = capsys.readouterr()
        assert "fig6_active_4n_700B" in captured.out
        assert "events/s" in captured.out
        assert "p99 0.400 ms" in captured.out
        assert "BENCH_old.json" in captured.err

    def test_unenforced_regressions_reported(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.bench.gate.run_gate",
            lambda **kw: canned_result(["x.events_per_sec: 1 -> 0"]))
        assert cli.main(["gate", "--no-gate"]) == 0
        err = capsys.readouterr().err
        assert "regressions (not enforced, --no-gate):" in err
        assert "x.events_per_sec" in err


def canned_multiring_result(regressions=()):
    return {
        "workloads": {
            "fig6_active_4n_700B": {"events_per_sec": 100000.0,
                                    "ops_per_sec": 30000.0},
        },
        "multiring": {
            "ring_counts": [1, 2],
            "results": {
                "1": {"virtual_ops_per_sec": 10000.0, "ops_per_sec": 9000.0},
                "2": {"virtual_ops_per_sec": 19000.0, "ops_per_sec": 17000.0},
            },
            "scaling_vs_1ring": {"1": 1.0, "2": 1.9},
            "max_scaling": 1.9,
            "scaling_floor": 1.5,
        },
        "baseline": "BENCH_old.json",
        "regressions": list(regressions),
    }


def canned_service_result(regressions=()):
    return {
        "workloads": {
            "fig6_active_4n_700B": {"events_per_sec": 100000.0,
                                    "ops_per_sec": 30000.0},
        },
        "service": {
            "capacity_ops_per_sec": 80000.0,
            "offered_rate": 160000.0,
            "overload_factor": 2.0,
            "goodput_ops_per_sec": 76000.0,
            "goodput_ratio": 0.95,
            "latency_p50_ms": 11.5,
            "latency_p99_ms": 21.0,
            "p99_bound_ms": 250.0,
            "ring_stalls": 0,
            "slo": {"shed": {"queue-full": 42, "backpressure": 7}},
        },
        "baseline": "BENCH_old.json",
        "regressions": list(regressions),
    }


class TestMultiringFlags:
    def capture(self, monkeypatch, result=None, error=None):
        calls = {}

        def fake_run_multiring(**kwargs):
            calls.update(kwargs)
            if error is not None:
                raise error
            return result if result is not None else canned_multiring_result()

        monkeypatch.setattr("repro.bench.multiring.run_multiring",
                            fake_run_multiring)
        return calls

    def test_default_output_becomes_pr8(self, monkeypatch):
        calls = self.capture(monkeypatch)
        assert cli.main(["multiring"]) == 0
        assert calls["output"] == "BENCH_pr8.json"
        assert calls["enforce"] is True

    def test_explicit_output_passed_through(self, monkeypatch):
        calls = self.capture(monkeypatch)
        cli.main(["multiring", "--output", "BENCH_mine.json",
                  "--baseline", "BENCH_b.json", "--quick", "--no-gate"])
        assert calls["output"] == "BENCH_mine.json"
        assert calls["baseline"] == "BENCH_b.json"
        assert calls["quick"] is True
        assert calls["enforce"] is False

    def test_failed_gate_exits_nonzero(self, monkeypatch, capsys):
        self.capture(monkeypatch, error=GateError("scaling regressed"))
        assert cli.main(["multiring"]) == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_success_prints_scaling_summary(self, monkeypatch, capsys):
        self.capture(monkeypatch)
        assert cli.main(["multiring"]) == 0
        captured = capsys.readouterr()
        assert "multiring x2" in captured.out
        assert "aggregate scaling at 2 rings" in captured.out
        assert "BENCH_old.json" in captured.err


class TestServiceFlags:
    def capture(self, monkeypatch, result=None, error=None):
        calls = {}

        def fake_run_service(**kwargs):
            calls.update(kwargs)
            if error is not None:
                raise error
            return result if result is not None else canned_service_result()

        monkeypatch.setattr("repro.bench.service.run_service",
                            fake_run_service)
        return calls

    def test_default_output_becomes_pr9(self, monkeypatch):
        calls = self.capture(monkeypatch)
        assert cli.main(["service"]) == 0
        assert calls["output"] == "BENCH_pr9.json"
        assert calls["enforce"] is True
        assert calls["quick"] is False

    def test_explicit_flags_passed_through(self, monkeypatch):
        calls = self.capture(monkeypatch)
        cli.main(["service", "--output", "BENCH_svc.json",
                  "--baseline", "BENCH_b.json", "--quick", "--no-gate"])
        assert calls["output"] == "BENCH_svc.json"
        assert calls["baseline"] == "BENCH_b.json"
        assert calls["quick"] is True
        assert calls["enforce"] is False

    def test_failed_gate_exits_nonzero(self, monkeypatch, capsys):
        self.capture(monkeypatch, error=GateError("goodput collapsed"))
        assert cli.main(["service"]) == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_success_prints_slo_summary(self, monkeypatch, capsys):
        self.capture(monkeypatch)
        assert cli.main(["service"]) == 0
        captured = capsys.readouterr()
        assert "goodput 76,000 ops/s" in captured.out
        assert "p99 21.00 ms" in captured.out
        assert "backpressure=7" in captured.out
        assert "ring stalls: 0" in captured.out

    def test_unenforced_regressions_reported(self, monkeypatch, capsys):
        self.capture(monkeypatch, result=canned_service_result(
            ["service.goodput_ratio: 0.5 < required 0.80"]))
        assert cli.main(["service", "--no-gate"]) == 0
        assert "service.goodput_ratio" in capsys.readouterr().err


class TestTargetParsing:
    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_gate_flags_rejected_without_argument(self):
        with pytest.raises(SystemExit):
            cli.main(["gate", "--output"])

    def test_svg_dir_writes_figure_files(self, monkeypatch, tmp_path):
        written = []

        class FakeFigure:
            name = "fig6"

            def render(self):
                return "fig6 table"

        monkeypatch.setattr("repro.bench.figures.figure6",
                            lambda quick=False: FakeFigure())
        monkeypatch.setattr(
            "repro.bench.svg.write_figure_svg",
            lambda figure, path: written.append(path) or path)
        assert cli.main(["fig6", "--quick", "--svg", str(tmp_path)]) == 0
        assert len(written) == 1
        assert written[0].startswith(str(tmp_path))


class TestProfileFlags:
    def capture(self, monkeypatch, result=None, error=None):
        calls = {}

        def fake_run_profile(**kwargs):
            calls.update(kwargs)
            if error is not None:
                raise error
            return result if result is not None else {"fig6": "fig6 table"}

        monkeypatch.setattr("repro.bench.profile.run_profile",
                            fake_run_profile)
        return calls

    def test_defaults_profile_everything(self, monkeypatch):
        calls = self.capture(monkeypatch)
        assert cli.main(["profile"]) == 0
        assert calls["workload"] == "all"
        assert calls["top"] == 25
        assert calls["pstats_out"] is None
        assert calls["quick"] is False

    def test_flags_passed_through(self, monkeypatch):
        calls = self.capture(monkeypatch)
        assert cli.main(["profile", "--workload", "service", "--top", "7",
                         "--pstats-out", "prof.pstats", "--quick"]) == 0
        assert calls["workload"] == "service"
        assert calls["top"] == 7
        assert calls["pstats_out"] == "prof.pstats"
        assert calls["quick"] is True

    def test_tables_and_dump_reported(self, monkeypatch, capsys):
        self.capture(monkeypatch, result={
            "fig6": "fig6 table", "service": "svc table",
            "pstats_out": "prof.pstats"})
        assert cli.main(["profile"]) == 0
        captured = capsys.readouterr()
        assert "profile: fig6 workload" in captured.out
        assert "profile: service workload" in captured.out
        assert "svc table" in captured.out
        assert "prof.pstats" in captured.err

    def test_value_error_exits_nonzero(self, monkeypatch, capsys):
        self.capture(monkeypatch, error=ValueError("--top must be >= 1"))
        assert cli.main(["profile"]) == 1
        assert "--top must be >= 1" in capsys.readouterr().err

    def test_unknown_workload_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            cli.main(["profile", "--workload", "nope"])


class TestRunProfileValidation:
    def test_unknown_workload_raises(self):
        from repro.bench.profile import run_profile
        with pytest.raises(ValueError, match="unknown profile workload"):
            run_profile(workload="fig42")

    def test_nonpositive_top_raises(self):
        from repro.bench.profile import run_profile
        with pytest.raises(ValueError, match="--top must be >= 1"):
            run_profile(workload="fig6", top=0)

    def test_pstats_dump_writes_file(self, monkeypatch, tmp_path):
        import cProfile

        from repro.bench import profile as profile_mod

        def fake_fig6(quick):
            profiler = cProfile.Profile()
            profiler.enable()
            sum(range(100))
            profiler.disable()
            return profiler

        monkeypatch.setattr(profile_mod, "_profile_fig6", fake_fig6)
        out = tmp_path / "dump.pstats"
        tables = profile_mod.run_profile(workload="fig6", top=3,
                                         pstats_out=str(out))
        assert out.exists()
        assert tables["pstats_out"] == str(out)
        assert "Ordered by: cumulative time" in tables["fig6"]
        assert "Ordered by: internal time" in tables["fig6"]
