"""Unit tests for :mod:`repro.obs.sampler` — events, hooks and edge paths.

The integration suite exercises the sampled/full trajectories end to end;
these tests pin down the pieces in isolation: the bounded event recorder,
the per-event hooks, timer lifecycle, and the windowed-rate edge cases.
"""

from __future__ import annotations

from repro.api.cluster import SimCluster
from repro.config import ClusterConfig, TotemConfig
from repro.obs import sampler as sampler_mod
from repro.obs.sampler import ClusterObservability, ObsEvent
from repro.types import ReplicationStyle


def make_cluster(mode: str = "full", interval: float = 0.01,
                 num_nodes: int = 3) -> SimCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2),
        obs=mode, obs_interval=interval)
    cluster = SimCluster(config)
    cluster.start()
    return cluster


class TestObsEvent:
    def test_str_with_node_and_network(self):
        event = ObsEvent(time=1.25, kind="token-loss", node=3, network=1,
                         detail="in state operational")
        text = str(event)
        assert "t=1.250000" in text
        assert "node 3" in text and "net1" in text
        assert "token-loss" in text and "operational" in text

    def test_str_without_optionals(self):
        text = str(ObsEvent(time=0.0, kind="health-transition"))
        assert "node" not in text and "net" not in text

    def test_to_dict_roundtrip_fields(self):
        event = ObsEvent(time=2.0, kind="fault-injected", network=0,
                         detail="net0 down")
        assert event.to_dict() == {"time": 2.0, "kind": "fault-injected",
                                   "node": None, "network": 0,
                                   "detail": "net0 down"}


class TestEventRecorder:
    def test_events_bounded_and_drops_counted(self, monkeypatch):
        cluster = make_cluster()
        obs = cluster.obs
        monkeypatch.setattr(sampler_mod, "MAX_EVENTS", 3)
        for i in range(5):
            obs.record_fault_injection(0, f"fault {i}")
        assert len(obs.events) == 3
        assert obs.events_dropped == 2
        assert [e.detail for e in obs.events] == [
            "fault 0", "fault 1", "fault 2"]

    def test_token_loss_hook_emits_event_and_counter(self):
        cluster = make_cluster()
        obs = cluster.obs
        obs.srp_token_loss(2, "operational")
        assert obs.events[-1].kind == "token-loss"
        assert obs.events[-1].node == 2
        counter = obs.registry.get("totem_token_loss_total", {"node": 2})
        assert counter is not None and counter.value == 1

    def test_token_timeout_hook_emits_event_and_counter(self):
        cluster = make_cluster()
        obs = cluster.obs
        obs.engine_token_timeout(1, "retransmit")
        assert obs.events[-1].kind == "token-timeout"
        assert obs.events[-1].detail == "retransmit"
        counter = obs.registry.get("totem_token_timeouts_total",
                                   {"node": 1, "kind": "retransmit"})
        assert counter is not None and counter.value == 1


class TestLifecycle:
    def test_start_is_idempotent(self):
        cluster = make_cluster()
        obs = cluster.obs
        baseline = len(obs.samples)  # cluster.start() already started obs
        obs.start()
        assert len(obs.samples) == baseline

    def test_stop_cancels_periodic_sampling(self):
        cluster = make_cluster(interval=0.005)
        obs = cluster.obs
        cluster.run_for(0.02)
        taken = len(obs.samples)
        assert taken > 1
        obs.stop()
        cluster.run_for(0.05)
        assert len(obs.samples) == taken

    def test_timer_rearms_each_interval(self):
        cluster = make_cluster(interval=0.01)
        cluster.run_for(0.055)
        # t=0 baseline plus one sample per elapsed interval.
        assert len(cluster.obs.samples) == 6

    def test_sampled_mode_attaches_no_hooks(self):
        cluster = make_cluster(mode="sampled")
        assert all(node.srp.obs is None
                   for node in cluster.nodes.values())

    def test_full_mode_attaches_hooks(self):
        cluster = make_cluster(mode="full")
        assert all(node.srp.obs is cluster.obs
                   for node in cluster.nodes.values())


class TestSampling:
    def test_baseline_sample_has_zero_window_rates(self):
        cluster = make_cluster()
        row = cluster.obs.samples[0]
        for lan in row["lans"]:
            assert lan["window_loss_fraction"] == 0.0
            assert lan["window_utilization"] == 0.0

    def test_windowed_rotation_mean_appears_under_traffic(self):
        cluster = make_cluster()
        cluster.node(1).submit(b"x" * 64)
        cluster.run_for(0.2)
        row = cluster.obs.samples[-1]
        means = [snap["window_rotation_mean"]
                 for snap in row["nodes"].values()]
        assert any(m > 0 for m in means)

    def test_sample_row_covers_all_nodes_and_lans(self):
        cluster = make_cluster(num_nodes=3)
        cluster.run_for(0.03)
        row = cluster.obs.samples[-1]
        assert sorted(row["nodes"]) == ["1", "2", "3"]
        assert len(row["lans"]) == 2
        assert row["scheduler"]["events_processed"] > 0

    def test_health_rows_track_networks(self):
        cluster = make_cluster()
        cluster.run_for(0.03)
        row = cluster.obs.samples[-1]
        assert [h["network"] for h in row["health"]] == [0, 1]
        assert all(0.0 <= h["score"] <= 1.0 for h in row["health"])
