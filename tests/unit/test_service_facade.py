"""Unit tests for the service facade's admission pipeline and read path.

The facade is exercised against a *fake* single-ring cluster — a real
:class:`~repro.sim.scheduler.EventScheduler` plus stub nodes whose send
queues the tests control directly — so every decision branch (fast-path
admit, queueing, each typed shed, breaker trips, quiesce) is reachable
deterministically and in milliseconds.  The integration suite runs the
same facade over real clusters.
"""

from collections import deque
from types import SimpleNamespace

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricRegistry
from repro.service import (
    Admitted,
    Overload,
    ServiceConfig,
    ServiceFacade,
    Shed,
    ShedReason,
)
from repro.sim.scheduler import EventScheduler


class FakeSrp:
    def __init__(self, members=(1, 2, 3, 4)):
        self.send_queue = deque()
        self.membership = SimpleNamespace(members=tuple(members))


class FakeNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.srp = FakeSrp()
        self.on_deliver = None
        self.accept = True

    def set_user_callbacks(self, on_deliver=None):
        self.on_deliver = on_deliver

    def try_submit(self, payload):
        if not self.accept:
            return False
        self.srp.send_queue.append(payload)
        return True


class FakeCluster:
    """Single-ring stand-in: scheduler + nodes + totem flow-control shape."""

    def __init__(self, num_nodes=4, window_size=4, send_queue_capacity=64):
        self.scheduler = EventScheduler()
        self.nodes = {i: FakeNode(i) for i in range(1, num_nodes + 1)}
        self.config = SimpleNamespace(totem=SimpleNamespace(
            window_size=window_size,
            send_queue_capacity=send_queue_capacity))

    def deliver_all(self, gateway=1):
        """Drain the gateway queue, applying each payload at every member."""
        queue = self.nodes[gateway].srp.send_queue
        while queue:
            payload = queue.popleft()
            for node in self.nodes.values():
                node.on_deliver(SimpleNamespace(payload=payload))


def build(config=None, **cluster_kwargs):
    cluster = FakeCluster(**cluster_kwargs)
    # window_size=4 x inflight_windows=1 => inflight budget of 4 messages.
    facade = ServiceFacade(cluster, config or ServiceConfig(
        rate=1000.0, burst=1, inflight_windows=1.0),
        registry=MetricRegistry())
    return cluster, facade


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0},
        {"burst": 0.5},
        {"queue_capacity": 0},
        {"drain_interval": 0.0},
        {"inflight_windows": 0.0},
        {"degrade_ratio": 0.9, "shed_ratio": 0.5},
        {"degrade_ratio": 0.0},
    ])
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)

    def test_unknown_gateway_raises(self):
        with pytest.raises(ConfigError, match="gateway"):
            ServiceFacade(FakeCluster(), ServiceConfig(gateway=9),
                          registry=MetricRegistry())

    def test_registry_shared_with_cluster_obs(self):
        cluster = FakeCluster()
        registry = MetricRegistry()
        cluster.obs = SimpleNamespace(registry=registry)
        facade = ServiceFacade(cluster, ServiceConfig())
        assert facade.registry is registry


class TestAdmission:
    def test_fast_path_admit_and_completion(self):
        cluster, facade = build()
        completions = []
        facade.on_complete(lambda c, u, lat: completions.append((c, u, lat)))
        response = facade.set(7, b"key", b"value")
        assert isinstance(response, Admitted)
        assert (response.client, response.uid) == (7, 1)
        cluster.deliver_all()
        assert facade.get(b"key") == b"value"
        assert facade.converged()
        assert completions == [(7, 1, 0.0)]
        assert int(facade.m_completed.value) == 1

    def test_uids_auto_increment_per_client(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8))
        r1 = facade.set(1, b"a", b"1")
        r2 = facade.set(1, b"b", b"2")
        r3 = facade.set(2, b"c", b"3")
        assert (r1.uid, r2.uid, r3.uid) == (1, 2, 1)

    def test_delete_and_publish_apply(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8))
        seen = []
        facade.subscribe(2, b"topic", lambda t, d: seen.append((t, d)))
        facade.set(1, b"key", b"value")
        facade.delete(1, b"key")
        facade.publish(1, b"topic", b"news")
        cluster.deliver_all()
        assert facade.get(b"key") is None
        assert seen == [(b"topic", b"news")]
        assert facade.converged()

    def test_subscribe_unknown_member_raises(self):
        _, facade = build()
        with pytest.raises(ConfigError, match="unknown member"):
            facade.subscribe(9, b"t", lambda t, d: None)

    def test_expired_deadline_shed_at_submit(self):
        cluster, facade = build()
        cluster.scheduler.run_until(0.01)
        response = facade.set(1, b"k", b"v", deadline=0.005)
        assert isinstance(response, Shed)
        assert response.reason is ShedReason.DEADLINE_EXPIRED

    def test_rate_limited_when_queueing_disabled(self):
        _, facade = build(ServiceConfig(rate=1000.0, burst=1,
                                        queue_when_limited=False))
        assert isinstance(facade.set(1, b"a", b"1"), Admitted)
        response = facade.set(1, b"b", b"2")
        assert isinstance(response, Overload)
        assert response.reason is ShedReason.RATE_LIMITED
        assert response.retry_after > 0.0

    def test_queued_request_admitted_by_pump(self):
        cluster, facade = build()
        decisions = []
        facade.on_decision(lambda req, resp: decisions.append(resp))
        assert isinstance(facade.set(1, b"a", b"1"), Admitted)
        assert facade.set(1, b"b", b"2") is None          # queued
        assert int(facade.m_queue_depth.value) == 1
        cluster.scheduler.run_until(0.01)                 # bucket refills
        admits = [r for r in decisions if isinstance(r, Admitted)]
        assert len(admits) == 2
        assert admits[1].queued_for > 0.0
        assert len(facade.queue) == 0

    def test_queue_full_shed_when_token_available(self):
        cluster, facade = build(ServiceConfig(rate=10_000.0, burst=1,
                                              queue_capacity=1))
        facade.set(1, b"a", b"1")                 # consumes the only token
        assert facade.set(1, b"b", b"2") is None  # fills the queue
        cluster.scheduler.run_until(0.0004)       # refill, pump not yet due
        response = facade.set(1, b"c", b"3")
        assert isinstance(response, Overload)
        assert response.reason is ShedReason.QUEUE_FULL

    def test_rate_limited_shed_when_queue_full_without_token(self):
        _, facade = build(ServiceConfig(rate=1000.0, burst=1,
                                        queue_capacity=1))
        facade.set(1, b"a", b"1")
        assert facade.set(1, b"b", b"2") is None
        response = facade.set(1, b"c", b"3")
        assert isinstance(response, Overload)
        assert response.reason is ShedReason.RATE_LIMITED

    def test_backpressure_shed_before_ring_stalls(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8,
                                              inflight_windows=1.0))
        # Fill the gateway backlog to the inflight budget (4 messages).
        cluster.nodes[1].srp.send_queue.extend([b"x"] * 4)
        response = facade.set(1, b"k", b"v")
        assert isinstance(response, Overload)
        assert response.reason is ShedReason.BACKPRESSURE
        assert int(facade.m_stalls.value) == 0

    def test_refused_submit_counts_as_stall(self):
        cluster, facade = build()
        cluster.nodes[1].accept = False
        response = facade.set(1, b"k", b"v")
        assert isinstance(response, Shed)
        assert response.reason is ShedReason.UNAVAILABLE
        assert int(facade.m_stalls.value) == 1

    def test_pump_holds_queue_while_ring_lacks_headroom(self):
        cluster, facade = build()
        facade.set(1, b"a", b"1")
        assert facade.set(1, b"b", b"2") is None
        cluster.nodes[1].srp.send_queue.extend([b"x"] * 4)   # no headroom
        cluster.scheduler.run_until(0.01)
        assert len(facade.queue) == 1                        # still waiting
        cluster.nodes[1].srp.send_queue.clear()
        cluster.scheduler.run_until(0.02)
        assert len(facade.queue) == 0
        assert int(facade.m_admitted.value) == 2

    def test_pump_sheds_expired_queued_requests(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=1))
        decisions = []
        facade.on_decision(lambda req, resp: decisions.append(resp))
        facade.set(1, b"a", b"1")
        assert facade.set(1, b"b", b"2",
                          deadline=0.0001) is None   # expires in queue
        cluster.scheduler.run_until(0.01)
        sheds = [r for r in decisions if isinstance(r, Shed)]
        assert [s.reason for s in sheds] == [ShedReason.DEADLINE_EXPIRED]

    def test_default_deadline_stamped(self):
        _, facade = build(ServiceConfig(rate=1000.0, burst=8,
                                        default_deadline=0.5))
        request = facade.make_request(1, b"k", b"body")
        assert request.deadline == pytest.approx(0.5)

    def test_quiesce_sheds_remaining(self):
        cluster, facade = build()
        facade.set(1, b"a", b"1")
        assert facade.set(1, b"b", b"2") is None
        facade.quiesce(shed_remaining=True)
        assert len(facade.queue) == 0
        assert int(facade.m_shed[ShedReason.UNAVAILABLE].value) == 1
        # Decision log has exactly one line per request, admits first.
        log = facade.decision_log_text()
        assert log.count("\n") == 2
        assert "admit" in log and "shed reason=unavailable" in log


class TestLogsAndSnapshot:
    def test_decision_log_and_digest_stable(self):
        _, facade = build(ServiceConfig(rate=1000.0, burst=8))
        facade.set(3, b"a", b"1")
        text = facade.decision_log_text()
        assert text == "t=0.000000 client=3 uid=1 admit queued=0.000000\n"
        assert len(facade.decision_digest()) == 16
        assert facade.decisions == (text.strip(),)

    def test_applied_log_per_member(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8))
        facade.set(3, b"a", b"1")
        facade.set(4, b"b", b"2")
        cluster.deliver_all()
        for member in (1, 2, 3, 4):
            assert facade.applied_log(member) == [(0, 3, 1), (0, 4, 1)]
            assert facade.applied_log_bytes(member) == b"0.3.1;0.4.1;"
        assert facade.applied_ids() == frozenset({(3, 1), (4, 1)})
        assert facade.applied_digest(1) == facade.applied_digest(2)

    def test_foreign_payloads_ignored(self):
        cluster, facade = build()
        cluster.nodes[1].srp.send_queue.append(b"CP01 not service traffic")
        cluster.deliver_all()
        assert facade.applied_log(1) == []

    def test_slo_snapshot_shape(self):
        cluster, facade = build(ServiceConfig(name="svc", rate=1000.0,
                                              burst=1))
        facade.set(1, b"a", b"1")
        facade.set(1, b"b", b"2")
        facade.quiesce()
        cluster.deliver_all()
        snapshot = facade.slo_snapshot()
        assert snapshot["service"] == "svc"
        assert snapshot["requests"] == 2
        assert snapshot["admitted"] == 1
        assert snapshot["completed"] == 1
        assert snapshot["shed"] == {"unavailable": 1}
        assert snapshot["shed_total"] == 1
        assert snapshot["ring_stalls"] == 0
        assert snapshot["pressure"] == {"0": 0.0}

    def test_rebind_node_swaps_monitor_engine(self):
        cluster, facade = build()
        cluster.nodes[1].srp.send_queue.extend([b"x"] * 4)
        fresh = FakeNode(1)
        cluster.nodes[1] = fresh        # what the campaign runner's restart does
        facade.rebind_node(fresh)
        assert facade.monitor.depth(0) == 0
        assert isinstance(facade.set(1, b"k", b"v"), Admitted)
        assert fresh.srp.send_queue          # submit went to the fresh node


class TestReads:
    def test_multi_get_ok(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8))
        facade.set(1, b"k", b"v")
        cluster.deliver_all()
        (result,) = facade.multi_get([b"k"])
        assert result.ok and result.value == b"v"
        assert int(facade.m_reads.value) == 1
        assert int(facade.m_reads_degraded.value) == 0

    def test_unhealthy_shard_degrades_then_opens_breaker(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8,
                                              breaker_failures=3))
        facade.set(1, b"k", b"stale")
        cluster.deliver_all()
        for node in cluster.nodes.values():      # quorum lost
            node.srp.membership = SimpleNamespace(members=(1,))
        statuses = [facade.multi_get([b"k"])[0].status for _ in range(4)]
        assert statuses == ["degraded", "degraded", "degraded",
                            "circuit-open"]
        # Stale local value still served while the breaker is open.
        assert facade.multi_get([b"k"])[0].value == b"stale"
        assert int(facade.m_reads_degraded.value) == 5

    def test_shed_band_counts_as_unhealthy(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8,
                                              inflight_windows=1.0))
        cluster.nodes[1].srp.send_queue.extend([b"x"] * 4)
        (result,) = facade.multi_get([b"k"])
        assert result.status == "degraded"

    def test_deadline_budget_exhaustion(self):
        cluster, facade = build(ServiceConfig(rate=1000.0, burst=8,
                                              read_cost=0.0002))
        results = facade.multi_get([b"a", b"b", b"c", b"d"],
                                   timeout=0.0005)
        assert [r.status for r in results] == [
            "ok", "ok", "deadline-expired", "deadline-expired"]
        assert results[2].value is None
