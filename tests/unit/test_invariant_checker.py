"""Unit tests for the invariant checker (:mod:`repro.check`)."""

from __future__ import annotations

import pytest

from conftest import make_cluster
from repro.check import (
    INVARIANTS,
    CheckMode,
    InvariantChecker,
    InvariantViolation,
)
from repro.config import ClusterConfig
from repro.errors import ConfigError, InvariantViolationError
from repro.types import ReplicationStyle, RingId, TIMEOUT_NETWORK
from repro.wire.packets import DataPacket, Token


def observed_cluster(style=ReplicationStyle.ACTIVE, **kwargs):
    cluster = make_cluster(style, invariants="observe", **kwargs)
    assert cluster.checker is not None
    return cluster


class TestWiring:
    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            ClusterConfig(invariants="paranoid")

    def test_off_means_no_checker_and_no_probes(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, invariants="off")
        assert cluster.checker is None
        node = cluster.nodes[1]
        assert node.rrp.probe is None
        assert node.srp.probe is None
        assert node.rrp.faults.probe is None

    def test_probes_installed_on_every_node(self):
        cluster = observed_cluster()
        assert len(cluster.checker.probes) == len(cluster.nodes)
        for node in cluster.nodes.values():
            assert node.rrp.probe is node.srp.probe
            assert node.rrp.faults.probe is node.rrp.probe

    def test_restart_attaches_fresh_probe_keeps_old_one(self):
        cluster = observed_cluster()
        cluster.start()
        cluster.run_for(0.05)
        old_probe = cluster.nodes[2].rrp.probe
        cluster.crash_node(2)
        fresh = cluster.restart_node(2)
        assert fresh.rrp.probe is not old_probe
        assert old_probe in cluster.checker.probes
        assert fresh.rrp.probe in cluster.checker.probes

    def test_clean_run_records_no_violations(self):
        cluster = observed_cluster()
        cluster.start()
        for node in cluster.nodes.values():
            node.submit(b"payload")
        cluster.run_for(0.2)
        cluster.check_invariants()
        assert cluster.checker.violations == []


class TestRules:
    def test_merge_once_detected(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        tok = Token(ring_id=RingId(4, 1), seq=5)
        probe.engine_token_up(tok, 0)
        probe.engine_token_up(tok, 1)  # same (ring, stamp) passed up twice
        assert [v.invariant for v in cluster.checker.violations] == ["merge-once"]

    def test_token_once_detected(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        tok = Token(ring_id=RingId(4, 1), seq=5)
        probe.srp_token_accepted(tok, 0)
        probe.srp_token_accepted(tok, 1)
        assert [v.invariant for v in cluster.checker.violations] == ["token-once"]

    def test_timer_after_stop_detected(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        probe.engine_timer_fired("token", stopped=False)  # fine
        assert cluster.checker.violations == []
        probe.engine_timer_fired("token", stopped=True)
        assert [v.invariant for v in cluster.checker.violations] == [
            "timer-after-stop"]

    def test_last_network_detected(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        probe.network_marked_faulty(0, operational_left=1)  # fine
        probe.network_marked_faulty(1, operational_left=0)  # the bug
        assert [v.invariant for v in cluster.checker.violations] == [
            "last-network"]

    def test_network_index_detected(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        tok = Token(ring_id=RingId(4, 1), seq=5)
        # TIMEOUT_NETWORK is fine on delivery paths...
        probe.engine_token_up(tok, TIMEOUT_NETWORK)
        assert cluster.checker.violations == []
        # ...but never on the receive path, and out-of-range is never fine.
        # (The synthetic token_up above also unbalances the token ledger,
        # which the receive hook checks — only count the index rule here.)
        probe.engine_recv_token(tok, TIMEOUT_NETWORK)
        probe.engine_recv_token(tok, 7)
        kinds = [v.invariant for v in cluster.checker.violations]
        assert kinds.count("network-index") == 2

    def test_token_ledger_detected_on_tampered_counter(self):
        cluster = observed_cluster()
        cluster.start()
        cluster.run_for(0.05)
        cluster.nodes[1].rrp.stats.tokens_delivered += 1  # break accounting
        cluster.check_invariants()
        assert any(v.invariant == "token-ledger"
                   for v in cluster.checker.violations)

    def test_strict_mode_raises_immediately(self):
        cluster = make_cluster(ReplicationStyle.ACTIVE, invariants="strict")
        probe = cluster.checker.probes[0]
        with pytest.raises(InvariantViolationError):
            probe.engine_timer_fired("decay", stopped=True)

    def test_violations_are_traced(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        probe.engine_timer_fired("token", stopped=True)
        events = cluster.tracer.events(category="invariant")
        assert len(events) == 1
        assert events[0].event == "timer-after-stop"


class TestRtrInflight:
    def _ring(self):
        return RingId(4, 1)

    def _schedule_frame(self, cluster, dst, seq, arrival, network=0):
        packet = DataPacket(sender=2, ring_id=self._ring(), seq=seq, chunks=())
        cluster.checker._on_frame_scheduled(network, 2, dst, packet, arrival)

    def test_request_for_inflight_message_flagged(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        self._schedule_frame(cluster, dst=1, seq=9, arrival=1.0)
        probe._token_via = 0  # token arrived on a real network
        probe.retransmission_requested(self._ring(), 9)
        assert [v.invariant for v in cluster.checker.violations] == [
            "rtr-inflight"]

    def test_timeout_path_requests_are_exempt(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        self._schedule_frame(cluster, dst=1, seq=9, arrival=1.0)
        probe._token_via = TIMEOUT_NETWORK
        probe.retransmission_requested(self._ring(), 9)
        assert cluster.checker.violations == []

    def test_request_for_lost_message_is_fine(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        probe._token_via = 0
        probe.retransmission_requested(self._ring(), 9)  # nothing in flight
        assert cluster.checker.violations == []

    def test_delivered_frames_age_out(self):
        cluster = observed_cluster()
        # Frame arrives at t=1.0; at t=0 it is in flight, afterwards not.
        self._schedule_frame(cluster, dst=1, seq=9, arrival=1.0)
        assert cluster.checker.data_in_flight(1, self._ring(), 9) == 0
        cluster.run_until(2.0)
        assert cluster.checker.data_in_flight(1, self._ring(), 9) is None

    def test_frames_on_requesters_faulty_network_ignored(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        self._schedule_frame(cluster, dst=1, seq=9, arrival=1.0, network=1)
        cluster.nodes[1].rrp.faults.mark_faulty(1)
        probe._token_via = 0
        probe.retransmission_requested(self._ring(), 9)
        assert cluster.checker.violations == []


class TestEndToEnd:
    def test_checker_catches_reintroduced_timer_leak(self, monkeypatch):
        """Reverting the S3 fix (stop() cancelling timers) is flagged."""
        from repro.core.base import ReplicationEngine
        monkeypatch.setattr(
            ReplicationEngine, "stop",
            lambda self: setattr(self, "_stopped", True))
        cluster = observed_cluster()
        cluster.start()
        cluster.run_for(0.05)
        cluster.restart_node(2)  # old incarnation's timers leak past stop()
        cluster.run_for(0.5)     # decay timer interval is 0.2 s
        assert any(v.invariant == "timer-after-stop"
                   for v in cluster.checker.violations)

    def test_assert_clean_raises_in_observe_mode(self):
        cluster = observed_cluster()
        probe = cluster.checker.probes[0]
        probe.engine_timer_fired("token", stopped=True)
        with pytest.raises(InvariantViolationError):
            cluster.checker.assert_clean()

    def test_report_and_str_are_readable(self):
        checker = InvariantChecker(mode=CheckMode.OBSERVE)
        assert checker.report() == "no invariant violations"
        violation = InvariantViolation(
            time=0.5, node=3, invariant="merge-once", detail="twice")
        assert "merge-once" in str(violation)
        assert "node 3" in str(violation)

    def test_every_rule_used_is_catalogued(self):
        import inspect

        from repro.check import invariants as module
        source = inspect.getsource(module)
        for name in INVARIANTS:
            assert f'"{name}"' in source
