"""Unit tests for ReplicatedStateMachine internals (driven with a stub node)."""

from __future__ import annotations

import struct

import pytest

from repro.app.smr import ReplicatedStateMachine, _HEADER
from repro.types import (
    ConfigurationChange,
    DeliveredMessage,
    Membership,
    RingId,
)


class StubNode:
    def __init__(self, node_id=1):
        self.node_id = node_id
        self.submitted = []
        self.on_deliver = None
        self.on_config_change = None

    def set_user_callbacks(self, on_deliver=None, on_config_change=None,
                           on_fault_report=None):
        self.on_deliver = on_deliver
        self.on_config_change = on_config_change

    def submit(self, payload):
        self.submitted.append(payload)

    def try_submit(self, payload):
        self.submitted.append(payload)
        return True


class ListMachine:
    def __init__(self):
        self.log = []

    def apply(self, command):
        self.log.append(command)

    def snapshot(self):
        return b"|".join(self.log)

    def restore(self, snapshot):
        self.log = snapshot.split(b"|") if snapshot else []


def deliver(node, payload, sender=1, seq=1, ring_seq=4):
    node.on_deliver(DeliveredMessage(
        sender=sender, seq=seq, payload=payload,
        ring_id=RingId(ring_seq, 1)))


def config(node, members, ring_seq, transitional=False):
    node.on_config_change(ConfigurationChange(
        membership=Membership(RingId(ring_seq, min(members)),
                              tuple(sorted(members))),
        transitional=transitional))


def marker(config_seq, sender):
    return b"\x02" + _HEADER.pack(config_seq, sender)


def snapshot_msg(config_seq, sender, blob):
    return b"\x03" + _HEADER.pack(config_seq, sender) + blob


class TestLineageQualification:
    def _rsm(self, node_id, lineage, members):
        rsm = ReplicatedStateMachine(StubNode(node_id), ListMachine())
        rsm._lineage = set(lineage)
        return rsm, set(members)

    def test_strict_majority_qualifies(self):
        rsm, members = self._rsm(1, {1, 2, 3}, {1, 2, 3, 4})
        assert rsm._lineage_qualifies(members)

    def test_minority_does_not(self):
        rsm, members = self._rsm(4, {4}, {1, 2, 3, 4})
        assert not rsm._lineage_qualifies(members)

    def test_exact_tie_goes_to_group_with_smallest_member(self):
        rsm, members = self._rsm(1, {1, 2}, {1, 2, 3, 4})
        assert rsm._lineage_qualifies(members)
        rsm2, members = self._rsm(3, {3, 4}, {1, 2, 3, 4})
        assert not rsm2._lineage_qualifies(members)


class TestCommandFlow:
    def test_synced_applies_immediately(self):
        node = StubNode()
        rsm = ReplicatedStateMachine(node, ListMachine())
        config(node, {1, 2}, 4)
        deliver(node, b"\x01hello")
        assert rsm.machine.log == [b"hello"]
        assert rsm.stats.commands_applied == 1

    def test_submit_prefixes_cmd_tag(self):
        node = StubNode()
        rsm = ReplicatedStateMachine(node, ListMachine())
        rsm.submit(b"payload")
        assert node.submitted == [b"\x01payload"]

    def test_unsynced_ignores_precommands_buffers_post_marker(self):
        node = StubNode(node_id=4)
        rsm = ReplicatedStateMachine(node, ListMachine(),
                                     initially_synced=False)
        config(node, {1, 2, 3, 4}, 8)  # first config, with others
        assert rsm._awaiting_marker
        deliver(node, b"\x01before-marker")
        assert rsm.machine.log == []
        deliver(node, marker(8, sender=1))
        deliver(node, b"\x01after-marker")
        assert rsm.stats.commands_buffered == 1
        deliver(node, snapshot_msg(8, 1, b"a|b"))
        assert rsm.synced
        assert rsm.machine.log == [b"a", b"b", b"after-marker"]

    def test_winning_member_sends_snapshot_on_own_marker(self):
        node = StubNode(node_id=1)
        rsm = ReplicatedStateMachine(node, ListMachine())
        config(node, {1, 2}, 4)
        deliver(node, b"\x01cmd")
        # A newcomer appears.
        config(node, {1, 2}, 8, transitional=True)
        config(node, {1, 2, 3}, 8)
        # We volunteered a marker.
        assert any(p.startswith(b"\x02") for p in node.submitted)
        deliver(node, marker(8, sender=1))
        snapshots = [p for p in node.submitted if p.startswith(b"\x03")]
        assert len(snapshots) == 1
        assert snapshots[0].endswith(b"cmd")

    def test_losing_marker_not_answered(self):
        node = StubNode(node_id=2)
        rsm = ReplicatedStateMachine(node, ListMachine())
        config(node, {1, 2}, 4)
        config(node, {1, 2}, 8, transitional=True)
        config(node, {1, 2, 3}, 8)
        deliver(node, marker(8, sender=1))  # node 1's marker won
        assert not any(p.startswith(b"\x03") for p in node.submitted)
        assert rsm.synced  # same lineage as the winner

    def test_stale_marker_ignored(self):
        node = StubNode(node_id=4)
        rsm = ReplicatedStateMachine(node, ListMachine(),
                                     initially_synced=False)
        config(node, {1, 2, 3, 4}, 8)
        deliver(node, marker(4, sender=1))  # old config's marker
        assert not rsm._marker_seen

    def test_second_marker_for_same_round_ignored(self):
        node = StubNode(node_id=4)
        rsm = ReplicatedStateMachine(node, ListMachine(),
                                     initially_synced=False)
        config(node, {1, 2, 3, 4}, 8)
        deliver(node, marker(8, sender=1))
        deliver(node, marker(8, sender=2))
        deliver(node, snapshot_msg(8, 1, b"s"))
        assert rsm.synced
        assert rsm.stats.snapshots_installed == 1

    def test_losing_lineage_discards(self):
        node = StubNode(node_id=4)
        rsm = ReplicatedStateMachine(node, ListMachine())
        config(node, {4}, 4)  # our own established group of one
        deliver(node, b"\x01local-write")
        config(node, {4}, 8, transitional=True)
        config(node, {1, 2, 3, 4}, 8)
        assert not any(p.startswith(b"\x02") for p in node.submitted)
        deliver(node, marker(8, sender=1))  # the majority's marker
        assert not rsm.synced
        assert rsm.stats.state_discards == 1
        deliver(node, snapshot_msg(8, 1, b"their-state"))
        assert rsm.synced
        assert rsm.machine.log == [b"their-state"]

    def test_shrink_needs_no_round(self):
        node = StubNode(node_id=1)
        rsm = ReplicatedStateMachine(node, ListMachine())
        config(node, {1, 2, 3}, 4)
        config(node, {1, 2}, 8, transitional=True)
        config(node, {1, 2}, 8)
        assert not rsm._awaiting_marker
        assert not any(p.startswith(b"\x02") for p in node.submitted)

    def test_unsynced_alone_becomes_synced(self):
        node = StubNode(node_id=2)
        rsm = ReplicatedStateMachine(node, ListMachine(),
                                     initially_synced=False)
        config(node, {2}, 4)
        assert rsm.synced
