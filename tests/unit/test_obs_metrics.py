"""Unit tests for the repro.obs metric registry and exporters."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricRegistry,
    normalize_labels,
)
from repro.obs.export import prometheus_text, samples_to_jsonl


class TestLabels:
    def test_normalized_sorted_and_stringified(self):
        assert normalize_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_none_is_empty(self):
        assert normalize_labels(None) == ()


class TestCounter:
    def test_inc(self):
        c = Counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_mirrors_monotone_source(self):
        c = Counter("x_total")
        c.set_total(10)
        c.set_total(10)
        c.set_total(12)
        assert c.value == 12
        with pytest.raises(ValueError):
            c.set_total(11)

    def test_mirror_stays_monotone_across_resets(self):
        c = Counter("x_total")
        c.mirror(10)
        c.mirror(15)
        assert c.value == 15
        c.mirror(3)  # source restarted and counted 3 since
        assert c.value == 18
        c.mirror(4)
        assert c.value == 19


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram("lat", bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]  # last bucket = overflow
        assert h.mean == pytest.approx((0.005 + 0.05 + 0.05 + 0.5 + 2.0) / 5)
        assert h.max == 2.0

    def test_quantiles_monotone(self):
        h = Histogram("lat", bounds=LATENCY_BUCKETS)
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms .. 100ms
        assert h.quantile(0.5) <= h.quantile(0.99)
        assert 0.0 < h.quantile(0.5) < 0.1

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigError):
            Histogram("lat", bounds=(0.1, 0.1))

    def test_snapshot_keys(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert set(snap) == {"count", "mean", "max", "p50", "p99"}


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        r = MetricRegistry()
        a = r.counter("x_total", labels={"node": 1})
        b = r.counter("x_total", labels={"node": 1})
        c = r.counter("x_total", labels={"node": 2})
        assert a is b
        assert a is not c

    def test_one_name_one_kind(self):
        r = MetricRegistry()
        r.counter("x_total")
        with pytest.raises(ConfigError):
            r.gauge("x_total")

    def test_collect_sorted(self):
        r = MetricRegistry()
        r.gauge("b")
        r.counter("a_total", labels={"node": 2})
        r.counter("a_total", labels={"node": 1})
        names = [(m.name, m.labels) for m in r.collect()]
        assert names == sorted(names)

    def test_snapshot_flat_keys(self):
        r = MetricRegistry()
        r.counter("a_total", labels={"node": 1}).inc(3)
        r.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap['a_total{node="1"}'] == 3
        assert snap["h:count"] == 1


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        r = MetricRegistry()
        r.counter("x_total", labels={"node": 1}, help="things").inc(2)
        r.gauge("depth").set(1.5)
        text = prometheus_text(r)
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{node="1"} 2' in text
        assert "depth 1.5" in text

    def test_histogram_cumulative_buckets(self):
        r = MetricRegistry()
        h = r.histogram("lat", bounds=(0.1, 1.0), help="latency")
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = prometheus_text(r)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricRegistry()) == ""


class TestJsonl:
    def test_one_compact_sorted_line_per_row(self):
        rows = [{"b": 1, "a": {"z": 2, "y": 3}}, {"t": 0.5}]
        text = samples_to_jsonl(rows)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0] == '{"a":{"y":3,"z":2},"b":1}'
        assert json.loads(lines[1]) == {"t": 0.5}
