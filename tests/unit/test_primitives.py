"""Unit tests for the replicated coordination primitives."""

from __future__ import annotations

import pytest

from repro.app import CounterMachine, LockManagerMachine, StateMachine


class TestLockManagerMachine:
    def test_implements_state_machine(self):
        assert isinstance(LockManagerMachine(), StateMachine)

    def test_acquire_free_lock(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("db", 1))
        assert lm.owner("db") == 1
        assert lm.grants == 1

    def test_contention_queues_fairly(self):
        lm = LockManagerMachine()
        for node in (1, 2, 3):
            lm.apply(LockManagerMachine.acquire("db", node))
        assert lm.owner("db") == 1
        assert lm.waiters("db") == [2, 3]
        lm.apply(LockManagerMachine.release("db", 1))
        assert lm.owner("db") == 2
        assert lm.waiters("db") == [3]
        lm.apply(LockManagerMachine.release("db", 2))
        lm.apply(LockManagerMachine.release("db", 3))
        assert lm.owner("db") is None

    def test_duplicate_acquire_not_requeued(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("db", 1))
        lm.apply(LockManagerMachine.acquire("db", 2))
        lm.apply(LockManagerMachine.acquire("db", 2))
        assert lm.waiters("db") == [2]

    def test_reacquire_by_owner_is_noop(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("db", 1))
        lm.apply(LockManagerMachine.acquire("db", 1))
        assert lm.owner("db") == 1
        assert lm.waiters("db") == []

    def test_release_by_non_owner_drops_wait_only(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("db", 1))
        lm.apply(LockManagerMachine.acquire("db", 2))
        lm.apply(LockManagerMachine.release("db", 2))  # gives up waiting
        assert lm.owner("db") == 1
        assert lm.waiters("db") == []

    def test_purge_releases_dead_owners_and_waiters(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("a", 1))
        lm.apply(LockManagerMachine.acquire("a", 2))
        lm.apply(LockManagerMachine.acquire("b", 2))
        lm.apply(LockManagerMachine.acquire("b", 3))
        lm.apply(LockManagerMachine.purge({2}))
        assert lm.owner("a") == 1
        assert lm.waiters("a") == []
        assert lm.owner("b") == 3

    def test_purge_chained_to_dead_waiter(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("a", 1))
        lm.apply(LockManagerMachine.acquire("a", 2))
        lm.apply(LockManagerMachine.acquire("a", 3))
        lm.apply(LockManagerMachine.purge({1, 2}))
        assert lm.owner("a") == 3

    def test_holds(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("a", 1))
        lm.apply(LockManagerMachine.acquire("b", 1))
        lm.apply(LockManagerMachine.acquire("c", 2))
        assert lm.holds(1) == ["a", "b"]

    def test_snapshot_restore_roundtrip(self):
        lm = LockManagerMachine()
        lm.apply(LockManagerMachine.acquire("a", 1))
        lm.apply(LockManagerMachine.acquire("a", 2))
        clone = LockManagerMachine()
        clone.restore(lm.snapshot())
        assert clone.owner("a") == 1
        assert clone.waiters("a") == [2]
        assert clone.snapshot() == lm.snapshot()


class TestCounterMachine:
    def test_increment_and_value(self):
        counter = CounterMachine()
        counter.apply(CounterMachine.increment("seq"))
        counter.apply(CounterMachine.increment("seq", by=5))
        assert counter.value("seq") == 6
        assert counter.value("other") == 0

    def test_snapshot_restore(self):
        counter = CounterMachine()
        counter.apply(CounterMachine.increment("x", by=3))
        clone = CounterMachine()
        clone.restore(counter.snapshot())
        assert clone.value("x") == 3

    def test_implements_state_machine(self):
        assert isinstance(CounterMachine(), StateMachine)


class TestReplicatedLockManager:
    def test_lock_manager_over_the_ring(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import make_cluster
        from repro.app import ReplicatedStateMachine
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE)
        rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid],
                                            LockManagerMachine())
                for nid in cluster.nodes}
        cluster.start()
        # All four race for the same lock; the total order decides.
        for nid in cluster.nodes:
            rsms[nid].submit(LockManagerMachine.acquire("leader", nid))
        cluster.run_for(0.1)
        owners = {rsm.machine.owner("leader") for rsm in rsms.values()}
        assert len(owners) == 1  # everyone agrees on one winner
        winner = owners.pop()
        # The winner releases; everyone agrees on the next owner.
        rsms[winner].submit(LockManagerMachine.release("leader", winner))
        cluster.run_for(0.1)
        new_owners = {rsm.machine.owner("leader") for rsm in rsms.values()}
        assert len(new_owners) == 1
        assert new_owners.pop() != winner

    def test_purge_on_membership_change(self):
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from conftest import make_cluster
        from repro.app import ReplicatedStateMachine
        from repro.types import ReplicationStyle

        cluster = make_cluster(ReplicationStyle.ACTIVE)
        rsms = {nid: ReplicatedStateMachine(cluster.nodes[nid],
                                            LockManagerMachine())
                for nid in cluster.nodes}
        cluster.start()
        rsms[2].submit(LockManagerMachine.acquire("leader", 2))
        cluster.run_for(0.05)
        rsms[1].submit(LockManagerMachine.acquire("leader", 1))
        cluster.run_for(0.1)
        assert rsms[1].machine.owner("leader") == 2
        cluster.crash_node(2)
        cluster.run_until_condition(
            lambda: len(cluster.nodes[1].membership) == 3, timeout=5.0)
        # The application reacts to the config change by purging the dead.
        rsms[1].submit(LockManagerMachine.purge({2}))
        cluster.run_for(0.1)
        for nid in (1, 3, 4):
            assert rsms[nid].machine.owner("leader") == 1
