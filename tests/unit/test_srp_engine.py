"""Unit tests for the Totem SRP engine, driven with a fake transport.

These exercise the token-handling rules of §2 in isolation: sequencing,
retransmission requests, flow control, the rotation counter, duplicate
token detection, token retransmission, and self-delivery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.config import TotemConfig
from repro.errors import NotMemberError, SendQueueFullError
from repro.sim.runtime import SimRuntime
from repro.sim.scheduler import EventScheduler
from repro.srp.engine import SrpState, TotemSrp
from repro.types import DeliveryLog, ReplicationStyle, RingId
from repro.wire.packets import Chunk, DataPacket, Token


class FakeTransport:
    """Records everything the SRP sends."""

    def __init__(self) -> None:
        self.data: List[DataPacket] = []
        self.tokens: List[Tuple[Token, int]] = []
        self.joins: List[object] = []
        self.commits: List[Tuple[object, int]] = []

    def broadcast_data(self, packet):
        self.data.append(packet)

    def send_token(self, token, dest):
        self.tokens.append((token, dest))

    def broadcast_join(self, join):
        self.joins.append(join)

    def send_commit_token(self, commit, dest):
        self.commits.append((commit, dest))


def make_srp(node_id: int = 1, members=(1, 2, 3), start: bool = True,
             **overrides):
    scheduler = EventScheduler()
    config = TotemConfig(replication=ReplicationStyle.NONE, num_networks=1,
                         **overrides)
    transport = FakeTransport()
    log = DeliveryLog()
    srp = TotemSrp(node_id, config, SimRuntime(scheduler), transport,
                   on_deliver=log.on_deliver,
                   on_config_change=log.on_config_change)
    if start:
        srp.start(members)
        scheduler.run_until(0.0)  # representative's initial token injection
    return scheduler, srp, transport, log


def data_packet(seq: int, ring: RingId, sender: int = 2,
                payload: bytes = b"m") -> DataPacket:
    return DataPacket(sender=sender, ring_id=ring, seq=seq,
                      chunks=(Chunk.whole(seq, payload),))


class TestStartup:
    def test_preinstalled_ring(self):
        _, srp, _, log = make_srp()
        assert srp.state is SrpState.OPERATIONAL
        assert tuple(srp.membership.members) == (1, 2, 3)
        assert len(log.config_changes) == 1
        assert not log.config_changes[0].transitional

    def test_representative_injects_first_token(self):
        _, srp, transport, _ = make_srp(node_id=1)
        # Node 1 (the representative) accepted the injected token and
        # forwarded it to node 2.
        assert transport.tokens
        assert transport.tokens[0][1] == 2

    def test_non_representative_waits(self):
        _, srp, transport, _ = make_srp(node_id=2)
        assert transport.tokens == []

    def test_must_be_member_of_initial_ring(self):
        with pytest.raises(NotMemberError):
            make_srp(node_id=9, members=(1, 2))

    def test_start_without_members_enters_gather(self):
        _, srp, transport, _ = make_srp(start=False)
        srp.start(None)
        assert srp.state is SrpState.GATHER
        assert transport.joins

    def test_start_idempotent(self):
        scheduler, srp, transport, _ = make_srp()
        sent = len(transport.tokens)
        srp.start((1, 2, 3))
        assert len(transport.tokens) == sent


class TestSubmitAndBroadcast:
    def test_submit_then_token_broadcasts(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.submit(b"hello")
        token = Token(ring_id=srp.ring_id, seq=0, rotation=1)
        srp.on_token(token)
        assert len(transport.data) == 1
        sent_token = transport.tokens[-1][0]
        assert sent_token.seq == 1
        assert transport.data[0].seq == 1

    def test_flow_control_limits_per_visit(self):
        # Flow control counts packets; disable packing so 1 msg = 1 packet.
        scheduler, srp, transport, _ = make_srp(
            node_id=2, max_messages_per_token=3, enable_packing=False)
        for i in range(10):
            srp.submit(b"m%d" % i)
        srp.on_token(Token(ring_id=srp.ring_id, seq=0, rotation=1))
        assert len(transport.data) == 3

    def test_window_exhausted_blocks(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, window_size=10, max_messages_per_token=10)
        srp.submit(b"x")
        token = Token(ring_id=srp.ring_id, seq=20, rotation=1, fcc=10)
        # We have a gap (seq 1..20 missing) but flow control is the point:
        srp.on_token(token)
        assert transport.data == []  # window full: nothing broadcast

    def test_own_messages_self_delivered_in_order(self):
        scheduler, srp, transport, log = make_srp(node_id=2)
        srp.submit(b"mine")
        srp.on_token(Token(ring_id=srp.ring_id, seq=0, rotation=1))
        assert log.payloads == [b"mine"]

    def test_queue_full_raises(self):
        _, srp, _, _ = make_srp(node_id=2, send_queue_capacity=1)
        srp.submit(b"a")
        with pytest.raises(SendQueueFullError):
            srp.submit(b"b")
        assert not srp.try_submit(b"c")

    def test_backlog_reported_in_token(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, max_messages_per_token=1, enable_packing=False)
        for _ in range(5):
            srp.submit(b"x")
        srp.on_token(Token(ring_id=srp.ring_id, seq=0, rotation=1))
        assert transport.tokens[-1][0].backlog == 4


class TestTokenRules:
    def test_duplicate_token_ignored(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        token = Token(ring_id=srp.ring_id, seq=0, rotation=1)
        srp.on_token(token)
        sent = len(transport.tokens)
        srp.on_token(token.copy())  # retransmission, same stamp
        assert len(transport.tokens) == sent
        assert srp.stats.duplicate_tokens == 1

    def test_foreign_ring_token_ignored(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_token(Token(ring_id=RingId(99, 9), seq=5))
        assert transport.tokens == []

    def test_rotation_counter_incremented_by_leader_only(self):
        _, srp1, transport1, _ = make_srp(node_id=1)
        first = transport1.tokens[-1][0]
        assert first.rotation == 1  # node 1 is the representative

        _, srp2, transport2, _ = make_srp(node_id=2)
        srp2.on_token(Token(ring_id=srp2.ring_id, seq=0, rotation=1))
        assert transport2.tokens[-1][0].rotation == 1  # unchanged

    def test_gap_adds_retransmission_request(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_data(data_packet(2, srp.ring_id))  # seq 1 missing
        srp.on_token(Token(ring_id=srp.ring_id, seq=2, rotation=1))
        assert transport.tokens[-1][0].rtr == [1]

    def test_rtr_served_by_holder(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        packet = data_packet(1, srp.ring_id)
        srp.on_data(packet)
        token = Token(ring_id=srp.ring_id, seq=1, rotation=1, rtr=[1])
        srp.on_token(token)
        assert transport.data == [packet]  # rebroadcast
        assert transport.tokens[-1][0].rtr == []
        assert srp.stats.retransmissions_served == 1

    def test_rtr_left_for_others_when_not_held(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_data(data_packet(2, srp.ring_id))
        token = Token(ring_id=srp.ring_id, seq=2, rotation=1, rtr=[1])
        srp.on_token(token)
        assert 1 in transport.tokens[-1][0].rtr

    def test_aru_lowered_by_lagging_node(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        srp.on_data(data_packet(1, srp.ring_id))
        token = Token(ring_id=srp.ring_id, seq=3, aru=3, aru_id=1, rotation=1)
        srp.on_token(token)
        forwarded = transport.tokens[-1][0]
        assert forwarded.aru == 1
        assert forwarded.aru_id == 2

    def test_aru_raised_back_by_owner(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        for seq in (1, 2, 3):
            srp.on_data(data_packet(seq, srp.ring_id))
        token = Token(ring_id=srp.ring_id, seq=3, aru=1, aru_id=2, rotation=1)
        srp.on_token(token)
        assert transport.tokens[-1][0].aru == 3

    def test_delivery_in_sequence_order(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        srp.on_data(data_packet(2, srp.ring_id, payload=b"two"))
        assert log.payloads == []  # gap at 1
        srp.on_data(data_packet(1, srp.ring_id, payload=b"one"))
        assert log.payloads == [b"one", b"two"]

    def test_duplicate_data_filtered(self):
        scheduler, srp, _, log = make_srp(node_id=2)
        packet = data_packet(1, srp.ring_id)
        srp.on_data(packet)
        srp.on_data(packet)
        assert len(log.messages) == 1
        assert srp.stats.duplicate_packets == 1
        assert srp.is_duplicate_data(packet)

    def test_stability_gc(self):
        scheduler, srp, transport, _ = make_srp(node_id=2)
        for seq in (1, 2, 3):
            srp.on_data(data_packet(seq, srp.ring_id))
        srp.on_token(Token(ring_id=srp.ring_id, seq=3, aru=3, aru_id=1,
                           rotation=1))
        assert srp.stable_seq == 0  # needs a second visit
        srp.on_token(Token(ring_id=srp.ring_id, seq=3, aru=3, aru_id=1,
                           rotation=2))
        assert srp.stable_seq == 3
        assert srp.recv_buffer.get(1) is None  # collected


class TestTokenRetransmission:
    def test_token_resent_until_evidence(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, token_retransmit_interval=0.005)
        srp.on_token(Token(ring_id=srp.ring_id, seq=0, rotation=1))
        sent = len(transport.tokens)
        scheduler.run_until(scheduler.now() + 0.012)
        assert len(transport.tokens) >= sent + 2
        assert srp.stats.token_retransmits >= 2
        # All retransmissions carry the same stamp.
        stamps = {t.stamp for t, _ in transport.tokens[sent - 1:]}
        assert len(stamps) == 1

    def test_evidence_cancels_retransmission(self):
        """Paper §2: a message with a higher seq proves the successor got
        the token."""
        scheduler, srp, transport, _ = make_srp(
            node_id=2, token_retransmit_interval=0.005)
        srp.on_token(Token(ring_id=srp.ring_id, seq=0, rotation=1))
        sent = len(transport.tokens)
        srp.on_data(data_packet(1, srp.ring_id, sender=3))
        scheduler.run_until(scheduler.now() + 0.03)
        assert len(transport.tokens) == sent

    def test_token_loss_starts_membership(self):
        scheduler, srp, transport, _ = make_srp(
            node_id=2, token_loss_timeout=0.05)
        scheduler.run_until(0.2)
        assert srp.state is SrpState.GATHER
        assert transport.joins
        assert srp.stats.token_loss_events >= 1


class TestSafeDelivery:
    def test_safe_mode_holds_until_stable(self):
        scheduler, srp, _, log = make_srp(node_id=2, safe_delivery=True)
        srp.on_data(data_packet(1, srp.ring_id))
        assert log.payloads == []  # delivered only when stable
        srp.on_token(Token(ring_id=srp.ring_id, seq=1, aru=1, aru_id=1,
                           rotation=1))
        assert log.payloads == []
        srp.on_token(Token(ring_id=srp.ring_id, seq=1, aru=1, aru_id=1,
                           rotation=2))
        assert log.payloads == [b"m"]
        assert log.messages[0].safe
