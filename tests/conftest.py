"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import pytest

from repro.api.cluster import SimCluster
from repro.config import ClusterConfig, LanConfig, TotemConfig
from repro.types import ReplicationStyle


#: Default for make_cluster's ``invariants``; pytest_configure sets this
#: to "strict" unless the suite runs with --no-strict-invariants.
_DEFAULT_INVARIANTS = "off"


def pytest_addoption(parser):
    group = parser.getgroup("totem")
    group.addoption(
        "--strict-invariants", action="store_true", dest="strict_invariants",
        default=True,
        help="run every make_cluster() cluster under the strict "
             "repro.check invariant checker (default: on)")
    group.addoption(
        "--no-strict-invariants", action="store_false",
        dest="strict_invariants",
        help="disable the invariant checker (measure the bare protocol)")


def pytest_configure(config):
    global _DEFAULT_INVARIANTS
    _DEFAULT_INVARIANTS = (
        "strict" if config.getoption("strict_invariants") else "off")


def make_cluster(style: ReplicationStyle = ReplicationStyle.ACTIVE,
                 num_nodes: int = 4,
                 num_networks: Optional[int] = None,
                 lan: Optional[LanConfig] = None,
                 seed: int = 1,
                 invariants: Optional[str] = None,
                 **totem_overrides) -> SimCluster:
    """A cluster with sensible defaults per style (tests' workhorse).

    ``invariants`` defaults to the suite-wide setting (strict unless the
    run passed --no-strict-invariants); pass "off"/"observe"/"strict" to
    override for one cluster.
    """
    if num_networks is None:
        num_networks = {ReplicationStyle.NONE: 1,
                        ReplicationStyle.ACTIVE: 2,
                        ReplicationStyle.PASSIVE: 2,
                        ReplicationStyle.ACTIVE_PASSIVE: 3}[style]
    totem = TotemConfig(replication=style, num_networks=num_networks,
                        **totem_overrides)
    config = ClusterConfig(num_nodes=num_nodes, totem=totem,
                           lan=lan or LanConfig(), seed=seed,
                           invariants=(_DEFAULT_INVARIANTS
                                       if invariants is None else invariants))
    return SimCluster(config)


def drain(cluster: SimCluster, quiet_for: float = 0.05,
          timeout: float = 5.0) -> None:
    """Run until no node has undelivered submitted messages, then settle."""
    def all_drained() -> bool:
        return all(len(node.srp.send_queue) == 0
                   and not node.srp._packer.has_pending()
                   for node in cluster.nodes.values())
    cluster.run_until_condition(all_drained, timeout=timeout)
    cluster.run_for(quiet_for)
    cluster.check_invariants()


ALL_STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE,
              ReplicationStyle.PASSIVE, ReplicationStyle.ACTIVE_PASSIVE)
REDUNDANT_STYLES = (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE,
                    ReplicationStyle.ACTIVE_PASSIVE)


@pytest.fixture
def active_cluster() -> SimCluster:
    return make_cluster(ReplicationStyle.ACTIVE)


@pytest.fixture
def passive_cluster() -> SimCluster:
    return make_cluster(ReplicationStyle.PASSIVE)
