#!/usr/bin/env python
"""Dependency-free line coverage for the repro package.

``coverage``/``pytest-cov`` are the real tools (CI runs them); this is the
no-install fallback for environments that only have the standard library.
It installs a ``sys.settrace`` hook filtered to ``src/repro``, runs pytest
in-process, and reports per-module line coverage against the executable
lines recovered from each module's compiled code objects.

Usage::

    python tools/linecov.py [pytest args...]
    python tools/linecov.py tests/unit -q --min-report 25

Anything after the script name is passed to pytest verbatim, except
``--min-report N`` (only list modules below N% coverage, default 100).
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Set, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
PKG = os.path.join(SRC, "repro")


def executable_lines(path: str) -> Set[int]:
    """Line numbers the compiler marks executable (docstrings excluded)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The compiler attributes module docstrings/constants to line ranges
    # that include the `"""` lines; that is fine for a report.
    return lines


def main() -> int:
    argv = sys.argv[1:]
    min_report = 100.0
    if "--min-report" in argv:
        i = argv.index("--min-report")
        min_report = float(argv[i + 1])
        del argv[i:i + 2]
    if not argv:
        argv = ["tests", "-q", "-p", "no:cacheprovider"]

    sys.path.insert(0, SRC)
    hits: Dict[str, Set[int]] = {}
    prefix = PKG + os.sep

    def local_trace(frame, event, arg):
        if event == "line":
            hits_for_file.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        nonlocal hits_for_file
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        hits_for_file = hits.setdefault(filename, set())
        return local_trace

    hits_for_file: Set[int] = set()

    import pytest

    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(argv)
    finally:
        sys.settrace(None)

    rows: list[Tuple[float, str, int, int]] = []
    total_hit = total_lines = 0
    for root, _dirs, files in os.walk(PKG):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            lines = executable_lines(path)
            if not lines:
                continue
            covered = len(lines & hits.get(path, set()))
            total_hit += covered
            total_lines += len(lines)
            percent = 100.0 * covered / len(lines)
            rows.append((percent,
                         os.path.relpath(path, SRC).replace(os.sep, "/"),
                         covered, len(lines)))

    rows.sort()
    print("\nline coverage (settrace approximation, lowest first):")
    for percent, module, covered, count in rows:
        if percent <= min_report:
            print(f"  {percent:6.1f}%  {module}  ({covered}/{count})")
    if total_lines:
        print(f"  total: {100.0 * total_hit / total_lines:.1f}% "
              f"({total_hit}/{total_lines} lines)")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
