#!/usr/bin/env python
"""Build the optional compiled core (repro._fast._corec) in place.

Usage::

    python tools/build_accel.py            # build into src/repro/_fast/
    python tools/build_accel.py --check    # exit 0 iff the built core imports

The extension is deliberately *not* part of the default package build:
``pip install .`` must succeed on a machine with no C compiler, and the
pure-Python implementations are the behavioural reference.  This script is
the whole opt-in build step — it compiles one C file with the running
interpreter's headers and drops the shared object next to
``src/repro/_fast/__init__.py``, where the normal import machinery finds
it (see docs/PERFORMANCE.md).

Requires only a C compiler and setuptools (the ``[accel]`` extra).
"""

from __future__ import annotations

import os
import shutil
import sys
import sysconfig
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
FAST_DIR = os.path.join(SRC_DIR, "repro", "_fast")
C_SOURCE = os.path.join(FAST_DIR, "_corec.c")


def check() -> int:
    sys.path.insert(0, SRC_DIR)
    os.environ.pop("REPRO_PURE", None)
    try:
        from repro._fast import _corec
    except ImportError as exc:
        print(f"compiled core NOT importable: {exc}")
        return 1
    print(f"compiled core OK: {_corec.__file__}")
    return 0


def build() -> int:
    from setuptools import Distribution, Extension

    ext = Extension(
        "repro._fast._corec",
        sources=[os.path.relpath(C_SOURCE, REPO_ROOT)],
        extra_compile_args=["-O2"],
    )
    # Drive only build_ext (no dist metadata, no install): compile into a
    # scratch dir, then copy the artifact next to the package source —
    # equivalent to `build_ext --inplace` for a src-layout tree.
    build_dir = tempfile.mkdtemp(prefix="repro-accel-")
    try:
        dist = Distribution({"name": "repro-accel", "ext_modules": [ext]})
        cmd = dist.get_command_obj("build_ext")
        cmd.build_lib = build_dir
        cmd.build_temp = os.path.join(build_dir, "temp")
        cmd.ensure_finalized()
        cmd.run()
        built = cmd.get_outputs()[0]
        target = os.path.join(FAST_DIR, os.path.basename(built))
        shutil.copy2(built, target)
        print(f"built {target}")
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)
    # Smoke-check the artifact in a fresh interpreter so a broken build
    # fails here, not at the first `import repro` later.
    rc = os.spawnv(os.P_WAIT, sys.executable,
                   [sys.executable, os.path.abspath(__file__), "--check"])
    return rc


def main() -> int:
    os.chdir(REPO_ROOT)
    if "--check" in sys.argv[1:]:
        return check()
    return build()


if __name__ == "__main__":
    sys.exit(main())
