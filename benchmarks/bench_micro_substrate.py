"""Micro-benchmarks of the substrates (codec, scheduler, receive buffer).

Unlike the figure benchmarks (which run a deterministic simulation once),
these measure real Python hot paths and benefit from pytest-benchmark's
statistical repetition.
"""

from __future__ import annotations

from repro.sim.scheduler import EventScheduler
from repro.srp.ordering import ReceiveBuffer
from repro.types import RingId
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.packets import Chunk, DataPacket, Token

RING = RingId(seq=4, representative=1)


def _sample_packet(size: int = 1024) -> DataPacket:
    return DataPacket(sender=1, ring_id=RING, seq=42,
                      chunks=(Chunk.whole(7, b"x" * size),))


def test_codec_encode_data(benchmark):
    packet = _sample_packet()
    encoded = benchmark(encode_packet, packet)
    assert len(encoded) > 1024


def test_codec_decode_data(benchmark):
    blob = encode_packet(_sample_packet())
    packet = benchmark(decode_packet, blob)
    assert packet.seq == 42


def test_codec_roundtrip_token(benchmark):
    token = Token(ring_id=RING, seq=100, aru=90, aru_id=2, fcc=40,
                  backlog=7, rotation=12, rtr=[91, 92, 95])

    def roundtrip():
        return decode_packet(encode_packet(token))
    assert benchmark(roundtrip) == token


def test_scheduler_event_throughput(benchmark):
    def run_events():
        scheduler = EventScheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                scheduler.call_after(1e-6, tick)
        scheduler.call_after(0.0, tick)
        scheduler.run()
        return count[0]
    assert benchmark(run_events) == 10_000


def test_receive_buffer_insert_and_gc(benchmark):
    def churn():
        buffer = ReceiveBuffer()
        for seq in range(1, 5001):
            buffer.insert(DataPacket(sender=1, ring_id=RING, seq=seq,
                                     chunks=()))
            if seq % 100 == 0:
                buffer.gc_below(seq - 50)
        return buffer.my_aru
    assert benchmark(churn) == 5000
