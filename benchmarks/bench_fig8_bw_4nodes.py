"""Figure 8: Totem RRP utilised bandwidth (Kbytes/s), four nodes.

Paper shape: no-replication plateaus near the 100 Mbit/s wire (~10,000
KB/s); passive replication exceeds it (the second network carries the
surplus); active replication sits below no-replication; packing peaks show
at 700 and 1400 bytes.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import QUICK_SIZES
from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
@pytest.mark.parametrize("size", QUICK_SIZES)
def test_fig8_bandwidth(benchmark, style, size):
    result = run_once(benchmark, run_throughput, style, 4, size,
                      duration=DURATION, warmup=WARMUP)
    benchmark.extra_info["kbytes_per_sec"] = round(result.kbytes_per_sec)
    benchmark.extra_info["network_utilization"] = [
        round(u, 3) for u in result.network_utilization]
    record_row(f"fig8 {style.value:8s} {size:>6d}B "
               f"{result.kbytes_per_sec:>9,.0f} KB/s")
    assert result.kbytes_per_sec > 0
