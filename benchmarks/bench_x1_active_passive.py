"""X1: active-passive replication (N=3, K=2) — the experiment the paper
could not run ("it requires a minimum of three networks and we had only two
networks available to us", §8).

Expected placement, from the style's design (§4/§7): bandwidth cost K-fold
(between passive's 1x and active's Nx), loss masking up to K-1 networks —
so throughput should land between active and passive.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once

SIZES = (700, 1024, 1400)


@pytest.mark.parametrize("size", SIZES)
def test_x1_active_passive_rate(benchmark, size):
    result = run_once(benchmark, run_throughput,
                      ReplicationStyle.ACTIVE_PASSIVE, 4, size,
                      duration=DURATION, warmup=WARMUP)
    benchmark.extra_info["msgs_per_sec"] = round(result.msgs_per_sec)
    record_row(f"X1   active-passive(3,2) {size:>6d}B "
               f"{result.msgs_per_sec:>9,.0f} msgs/s")
    assert result.msgs_per_sec > 0


def test_x1_placement_between_active_and_passive(benchmark):
    """AP(3,2) throughput sits between active(2) and passive(2) at 1 KB."""
    def measure():
        return (
            run_throughput(ReplicationStyle.ACTIVE, 4, 1024,
                           duration=DURATION, warmup=WARMUP),
            run_throughput(ReplicationStyle.ACTIVE_PASSIVE, 4, 1024,
                           duration=DURATION, warmup=WARMUP),
            run_throughput(ReplicationStyle.PASSIVE, 4, 1024,
                           duration=DURATION, warmup=WARMUP),
        )
    active, ap, passive = run_once(benchmark, measure)
    record_row(f"X1   placement @1024B: active {active.msgs_per_sec:,.0f} <= "
               f"ap {ap.msgs_per_sec:,.0f} <= passive {passive.msgs_per_sec:,.0f}")
    assert active.msgs_per_sec <= ap.msgs_per_sec * 1.05
    assert ap.msgs_per_sec <= passive.msgs_per_sec * 1.05
