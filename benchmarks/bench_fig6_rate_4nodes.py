"""Figure 6: Totem RRP transmission rate (msgs/s), four nodes.

Paper shape: no-replication and passive track each other at small sizes,
passive pulls ahead around 1 Kbyte, active sits below no-replication, and
all rates fall with message size past the packing peaks at 700/1400 bytes.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import QUICK_SIZES
from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
@pytest.mark.parametrize("size", QUICK_SIZES)
def test_fig6_send_rate(benchmark, style, size):
    result = run_once(benchmark, run_throughput, style, 4, size,
                      duration=DURATION, warmup=WARMUP)
    benchmark.extra_info["msgs_per_sec"] = round(result.msgs_per_sec)
    benchmark.extra_info["kbytes_per_sec"] = round(result.kbytes_per_sec)
    record_row(f"fig6 {style.value:8s} {size:>6d}B "
               f"{result.msgs_per_sec:>9,.0f} msgs/s")
    assert result.msgs_per_sec > 0
