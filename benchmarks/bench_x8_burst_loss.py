"""X8: throughput under bursty omission faults (extension).

The paper's fault model (§3) includes omission faults but its evaluation
runs on healthy networks.  Real Ethernet loss is bursty (switch buffer
overruns), which separates the styles much more sharply than i.i.d. loss:

* **active** masks any burst confined to one network completely —
  the other copy is unaffected (requirement A2 at work);
* **passive** loses roughly half of each burst's packets irrecoverably
  until retransmission, paying a token-timeout stall per loss;
* **none** (single network) eats every burst with retransmission stalls.
"""

from __future__ import annotations

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import record_row, run_once

#: Bursts of ~7 frames about every 130 frames: ~5 % average loss.
BURST = dict(p_good_to_bad=0.008, p_bad_to_good=0.15)


def _bursty_throughput(style: ReplicationStyle) -> tuple:
    config = build_config(style, num_nodes=4)
    cluster = SimCluster(config)
    plan = FaultPlan().set_burst_loss(at=0.0, network=0, **BURST)
    cluster.apply_fault_plan(plan)
    cluster.start()
    SaturatingWorkload(cluster, 1024).start()
    cluster.run_for(0.15)
    reference = cluster.nodes[1]
    base = reference.srp.stats.msgs_delivered
    cluster.run_for(0.4)
    rate = (reference.srp.stats.msgs_delivered - base) / 0.4
    rtr = sum(n.srp.stats.retransmission_requests
              for n in cluster.nodes.values())
    return rate, rtr


@pytest.mark.parametrize("style", (ReplicationStyle.NONE,
                                   ReplicationStyle.ACTIVE,
                                   ReplicationStyle.PASSIVE),
                         ids=lambda s: s.value)
def test_x8_throughput_under_bursts(benchmark, style):
    rate, rtr = run_once(benchmark, _bursty_throughput, style)
    benchmark.extra_info["msgs_per_sec"] = round(rate)
    benchmark.extra_info["rtr"] = rtr
    record_row(f"X8   bursts on net0  {style.value:8s} "
               f"{rate:>9,.0f} msgs/s  (rtr requests: {rtr})")
    assert rate > 0


def test_x8_active_masks_single_network_bursts(benchmark):
    """Active replication needs zero retransmissions when the bursts hit
    only one of its networks; passive cannot avoid them."""
    def measure():
        return (_bursty_throughput(ReplicationStyle.ACTIVE),
                _bursty_throughput(ReplicationStyle.PASSIVE))
    (active_rate, active_rtr), (passive_rate, passive_rtr) = \
        run_once(benchmark, measure)
    record_row(f"X8   rtr: active {active_rtr} vs passive {passive_rtr}; "
               f"rate: active {active_rate:,.0f} vs passive {passive_rate:,.0f}")
    assert active_rtr == 0
    assert passive_rtr > 0
    # Under bursts on one network, active replication's throughput holds
    # while passive pays a stall per lost packet.
    assert active_rate > passive_rate