"""X2: fault-detection latency vs monitor threshold (ablation of A5/P4).

The paper fixes the problem-counter and receive-count thresholds without
exploring them.  This ablation measures, per threshold, how long after a
total network failure the first fault report is raised — the window during
which an administrator is not yet alerted (the system itself keeps running
either way).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import record_row, run_once

FAIL_AT = 0.2


def _detection_latency(style: ReplicationStyle, **overrides) -> float:
    config = build_config(style, num_nodes=4)
    config = dataclasses.replace(
        config, totem=dataclasses.replace(config.totem, **overrides))
    cluster = SimCluster(config)
    failed = config.totem.num_networks - 1
    cluster.apply_fault_plan(FaultPlan().fail_network(at=FAIL_AT, network=failed))
    cluster.start()
    SaturatingWorkload(cluster, 1024).start()
    cluster.run_until_condition(
        lambda: bool(cluster.all_fault_reports()), timeout=5.0)
    first = cluster.all_fault_reports()[0]
    return first.time - FAIL_AT


@pytest.mark.parametrize("threshold", (2, 10, 30))
def test_x2_active_problem_counter_threshold(benchmark, threshold):
    latency = run_once(benchmark, _detection_latency,
                       ReplicationStyle.ACTIVE,
                       problem_counter_threshold=threshold)
    benchmark.extra_info["detection_latency_s"] = round(latency, 4)
    record_row(f"X2   active threshold={threshold:>3d}: first fault report "
               f"{latency * 1000:,.1f} ms after failure")
    assert latency > 0


@pytest.mark.parametrize("threshold", (10, 50, 200))
def test_x2_passive_recv_count_threshold(benchmark, threshold):
    latency = run_once(benchmark, _detection_latency,
                       ReplicationStyle.PASSIVE,
                       recv_count_threshold=threshold)
    benchmark.extra_info["detection_latency_s"] = round(latency, 4)
    record_row(f"X2   passive threshold={threshold:>3d}: first fault report "
               f"{latency * 1000:,.1f} ms after failure")
    assert latency > 0


def test_x2_detection_latency_grows_with_threshold(benchmark):
    """Sanity of the trade-off: a higher threshold reports later."""
    def measure():
        return (_detection_latency(ReplicationStyle.ACTIVE,
                                   problem_counter_threshold=2),
                _detection_latency(ReplicationStyle.ACTIVE,
                                   problem_counter_threshold=30))
    low, high = run_once(benchmark, measure)
    record_row(f"X2   ordering: threshold 2 -> {low*1000:.1f} ms, "
               f"threshold 30 -> {high*1000:.1f} ms")
    assert low < high
