"""Figure 9: Totem RRP utilised bandwidth (Kbytes/s), six nodes."""

from __future__ import annotations

import pytest

from repro.bench.figures import QUICK_SIZES
from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
@pytest.mark.parametrize("size", QUICK_SIZES)
def test_fig9_bandwidth(benchmark, style, size):
    result = run_once(benchmark, run_throughput, style, 6, size,
                      duration=DURATION, warmup=WARMUP)
    benchmark.extra_info["kbytes_per_sec"] = round(result.kbytes_per_sec)
    record_row(f"fig9 {style.value:8s} {size:>6d}B "
               f"{result.kbytes_per_sec:>9,.0f} KB/s")
    assert result.kbytes_per_sec > 0
