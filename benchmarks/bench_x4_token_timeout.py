"""X4: passive token-timer timeout ablation (the paper chose 10 ms, §6).

Under sporadic frame loss, a token buffered behind a genuinely lost message
waits out the token timer before the retransmission machinery can run, so
the timeout bounds the loss-recovery stall.  The ablation measures delivered
throughput under 1% loss for several timeout values.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import record_row, run_once

LOSS = 0.01


def _lossy_throughput(timeout: float) -> float:
    config = build_config(ReplicationStyle.PASSIVE, num_nodes=4)
    config = dataclasses.replace(
        config, totem=dataclasses.replace(
            config.totem, passive_token_timeout=timeout))
    cluster = SimCluster(config)
    plan = FaultPlan().set_loss(at=0.0, network=0, rate=LOSS)
    plan.set_loss(at=0.0, network=1, rate=LOSS)
    cluster.apply_fault_plan(plan)
    cluster.start()
    SaturatingWorkload(cluster, 1024).start()
    cluster.run_until(0.1)
    reference = cluster.nodes[1]
    base = reference.srp.stats.msgs_delivered
    cluster.run_until(0.5)
    return (reference.srp.stats.msgs_delivered - base) / 0.4


@pytest.mark.parametrize("timeout_ms", (2, 10, 50))
def test_x4_passive_token_timeout(benchmark, timeout_ms):
    rate = run_once(benchmark, _lossy_throughput, timeout_ms / 1000.0)
    benchmark.extra_info["msgs_per_sec"] = round(rate)
    record_row(f"X4   passive timeout {timeout_ms:>3d} ms under {LOSS:.0%} loss: "
               f"{rate:,.0f} msgs/s")
    assert rate > 0


def test_x4_short_timeout_recovers_faster(benchmark):
    """A 2 ms timeout should not deliver less than a 100 ms timeout under
    loss (shorter stalls per lost message)."""
    def measure():
        return _lossy_throughput(0.002), _lossy_throughput(0.100)
    fast, slow = run_once(benchmark, measure)
    record_row(f"X4   2 ms -> {fast:,.0f} msgs/s vs 100 ms -> {slow:,.0f} msgs/s")
    assert fast >= slow * 0.9
