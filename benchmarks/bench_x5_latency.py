"""X5: one-way delivery latency per replication style (extension).

The paper evaluates throughput only.  Latency is where the styles differ
qualitatively under loss: active rides the surviving copy, passive stalls
on its token timer until retransmission.
"""

from __future__ import annotations

import pytest

from repro.bench.latency import measure_delivery_latency
from repro.types import ReplicationStyle

from conftest import record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE,
          ReplicationStyle.PASSIVE, ReplicationStyle.ACTIVE_PASSIVE)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_x5_latency_clean_network(benchmark, style):
    result = run_once(benchmark, measure_delivery_latency, style,
                      samples=80)
    benchmark.extra_info["p50_us"] = round(result.p50 * 1e6)
    record_row(f"X5   clean  {result.row()}")
    # One-way latency on an idle 100 Mbit ring is sub-millisecond.
    assert result.p50 < 0.005


@pytest.mark.parametrize("style", (ReplicationStyle.ACTIVE,
                                   ReplicationStyle.PASSIVE),
                         ids=lambda s: s.value)
def test_x5_latency_under_loss(benchmark, style):
    result = run_once(benchmark, measure_delivery_latency, style,
                      samples=120, loss_rate=0.05, seed=5)
    benchmark.extra_info["p99_us"] = round(result.p99 * 1e6)
    record_row(f"X5   lossy  {result.row()}")
    assert result.worst < 1.0


def test_x5_active_masks_loss_in_tail_latency(benchmark):
    """§4's qualitative claim, measured: under loss, active's tail latency
    beats passive's (which pays the token-timeout stall)."""
    def measure():
        active = measure_delivery_latency(ReplicationStyle.ACTIVE,
                                          samples=120, loss_rate=0.05, seed=5)
        passive = measure_delivery_latency(ReplicationStyle.PASSIVE,
                                           samples=120, loss_rate=0.05, seed=5)
        return active, passive
    active, passive = run_once(benchmark, measure)
    record_row(f"X5   p99 under 5% loss: active {active.p99 * 1e3:.2f} ms vs "
               f"passive {passive.p99 * 1e3:.2f} ms")
    assert active.p99 <= passive.p99