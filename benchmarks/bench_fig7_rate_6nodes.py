"""Figure 7: Totem RRP transmission rate (msgs/s), six nodes.

Paper shape: aggregate rates comparable to the four-node configuration —
the token schedule shares the same wire among more senders.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import QUICK_SIZES
from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
@pytest.mark.parametrize("size", QUICK_SIZES)
def test_fig7_send_rate(benchmark, style, size):
    result = run_once(benchmark, run_throughput, style, 6, size,
                      duration=DURATION, warmup=WARMUP)
    benchmark.extra_info["msgs_per_sec"] = round(result.msgs_per_sec)
    record_row(f"fig7 {style.value:8s} {size:>6d}B "
               f"{result.msgs_per_sec:>9,.0f} msgs/s")
    assert result.msgs_per_sec > 0
