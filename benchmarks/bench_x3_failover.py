"""X3: transparency of a total network failure (the paper's headline claim).

§1/§3: "The partial or total failure of a network remains transparent to the
application processes" — no membership change, delivery continues, and the
monitors raise fault reports for the administrator.
"""

from __future__ import annotations

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.net.faults import FaultPlan
from repro.types import ReplicationStyle

from conftest import record_row, run_once

STYLES = (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE,
          ReplicationStyle.ACTIVE_PASSIVE)


def _run_failover(style: ReplicationStyle):
    config = build_config(style, num_nodes=4)
    cluster = SimCluster(config)
    failed_net = config.totem.num_networks - 1
    cluster.apply_fault_plan(FaultPlan().fail_network(at=0.3, network=failed_net))
    cluster.start()
    workload = SaturatingWorkload(cluster, 1024)
    workload.start()
    reference = cluster.nodes[1]
    cluster.run_until(0.3)
    before = reference.srp.stats.msgs_delivered / 0.3
    cluster.run_until(0.9)
    after = (reference.srp.stats.msgs_delivered - before * 0.3) / 0.6
    return cluster, before, after


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_x3_network_failure_transparency(benchmark, style):
    cluster, before, after = run_once(benchmark, _run_failover, style)
    reference = cluster.nodes[1]
    # Transparent: the ring never reconfigured (1 = the initial install).
    assert reference.srp.stats.membership_changes == 1
    # The system kept delivering after the failure.
    assert after > 0.3 * before
    # Every node eventually reported the fault to its application.
    reporting_nodes = {r.node for r in cluster.all_fault_reports()}
    assert reporting_nodes == set(cluster.nodes)
    # The order is still a total order.
    cluster.assert_total_order()
    benchmark.extra_info["rate_before"] = round(before)
    benchmark.extra_info["rate_after"] = round(after)
    record_row(f"X3   {style.value:15s}: {before:,.0f} msgs/s before failure, "
               f"{after:,.0f} after, 0 membership changes")
