"""T2 (paper §8 in-text claims): packing peaks, active deficit, passive gain.

Asserted as *shape* claims (who wins, direction of the gap), with the
measured magnitudes recorded for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once


def _rate(style, size, nodes=4):
    return run_throughput(style, nodes, size, duration=DURATION, warmup=WARMUP)


def test_packing_peak_700(benchmark):
    """Throughput in KB/s peaks at 700 B (two messages per Ethernet frame)."""
    def measure():
        return (_rate(ReplicationStyle.NONE, 700),
                _rate(ReplicationStyle.NONE, 1024))
    at_700, at_1024 = run_once(benchmark, measure)
    record_row(f"T2   packing peak: {at_700.kbytes_per_sec:,.0f} KB/s @700B vs "
               f"{at_1024.kbytes_per_sec:,.0f} KB/s @1024B")
    assert at_700.kbytes_per_sec > at_1024.kbytes_per_sec


def test_packing_peak_1400(benchmark):
    """Throughput in KB/s peaks at 1400 B (one full frame per message)."""
    def measure():
        return (_rate(ReplicationStyle.NONE, 1400),
                _rate(ReplicationStyle.NONE, 2048))
    at_1400, at_2048 = run_once(benchmark, measure)
    record_row(f"T2   packing peak: {at_1400.kbytes_per_sec:,.0f} KB/s @1400B vs "
               f"{at_2048.kbytes_per_sec:,.0f} KB/s @2048B")
    assert at_1400.kbytes_per_sec > at_2048.kbytes_per_sec


def test_active_costs_throughput(benchmark):
    """Active replication sits below no-replication (paper: up to
    1,000-1,500 msgs/s at the ~1 Kbyte operating point)."""
    def measure():
        return (_rate(ReplicationStyle.NONE, 1024),
                _rate(ReplicationStyle.ACTIVE, 1024))
    base, active = run_once(benchmark, measure)
    deficit = base.msgs_per_sec - active.msgs_per_sec
    benchmark.extra_info["deficit_msgs_per_sec"] = round(deficit)
    record_row(f"T2   active deficit @1024B: {deficit:,.0f} msgs/s "
               f"(paper: up to 1,000-1,500)")
    assert deficit > 0, "active replication must cost throughput"
    assert deficit < 3000, "deficit should be a fraction, not a collapse"


def test_passive_exceeds_unreplicated(benchmark):
    """Passive replication beats no-replication (paper: 2,000-4,000 KB/s)."""
    def measure():
        return (_rate(ReplicationStyle.NONE, 1024),
                _rate(ReplicationStyle.PASSIVE, 1024))
    base, passive = run_once(benchmark, measure)
    gain = passive.kbytes_per_sec - base.kbytes_per_sec
    benchmark.extra_info["gain_kbytes_per_sec"] = round(gain)
    record_row(f"T2   passive gain @1024B: {gain:,.0f} KB/s "
               f"(paper: 2,000-4,000)")
    assert gain > 1000, "passive replication must add usable bandwidth"


def test_passive_below_twice_unreplicated(benchmark):
    """Passive on two networks does not reach 2x the unreplicated rate at the
    1-Kbyte operating point (paper: protocol processing, not wire, limits)."""
    def measure():
        return (_rate(ReplicationStyle.NONE, 1024),
                _rate(ReplicationStyle.PASSIVE, 1024))
    base, passive = run_once(benchmark, measure)
    ratio = passive.msgs_per_sec / base.msgs_per_sec
    benchmark.extra_info["ratio"] = round(ratio, 3)
    record_row(f"T2   passive/none ratio @1024B: {ratio:.2f}x (paper: <2x)")
    assert 1.0 < ratio < 2.0
