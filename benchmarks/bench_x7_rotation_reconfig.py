"""X7: token rotation time and reconfiguration latency (extensions).

Two operational quantities the paper leaves implicit:

* **token rotation time** — the heartbeat of the ring; bounds both the
  per-message latency floor and the retransmission turn-around.  Measured
  idle and under saturation, per style.
* **reconfiguration latency** — how long after a node crash the survivors
  install the new ring (the availability gap for membership faults, which
  — unlike network faults — the RRP cannot hide).
"""

from __future__ import annotations

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.srp.engine import SrpState
from repro.types import ReplicationStyle

from conftest import record_row, run_once

STYLES = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE,
          ReplicationStyle.PASSIVE)


def _rotation_stats(style: ReplicationStyle, saturate: bool):
    cluster = SimCluster(build_config(style, num_nodes=4))
    cluster.start()
    if saturate:
        SaturatingWorkload(cluster, 1024).start()
    cluster.run_for(0.1)
    stats = cluster.nodes[1].srp.stats
    base_total, base_count = stats.rotation_time_total, stats.rotation_count
    cluster.run_for(0.4)
    mean = ((stats.rotation_time_total - base_total)
            / max(1, stats.rotation_count - base_count))
    return mean, stats.rotation_time_max


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_x7_rotation_time_idle(benchmark, style):
    mean, _ = run_once(benchmark, _rotation_stats, style, False)
    benchmark.extra_info["mean_us"] = round(mean * 1e6)
    record_row(f"X7   idle rotation      {style.value:8s} "
               f"{mean * 1e6:>8,.0f} us")
    assert mean < 0.002  # an idle 4-node ring rotates in well under 2 ms


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_x7_rotation_time_saturated(benchmark, style):
    mean, worst = run_once(benchmark, _rotation_stats, style, True)
    benchmark.extra_info["mean_us"] = round(mean * 1e6)
    record_row(f"X7   saturated rotation {style.value:8s} "
               f"{mean * 1e6:>8,.0f} us (max {worst * 1e6:,.0f})")
    assert mean > 0


def _reconfiguration_latency(style: ReplicationStyle) -> float:
    cluster = SimCluster(build_config(style, num_nodes=4))
    cluster.start()
    SaturatingWorkload(cluster, 1024, senders=[1, 2, 3]).start()
    cluster.run_for(0.1)
    crash_at = cluster.now
    cluster.crash_node(4)
    cluster.run_until_condition(
        lambda: all(cluster.nodes[n].srp.state is SrpState.OPERATIONAL
                    and len(cluster.nodes[n].membership) == 3
                    for n in (1, 2, 3)),
        timeout=10.0)
    installs = [e.time for e in cluster.tracer.events(event="ring-installed")
                if e.time > crash_at]
    return max(installs) - crash_at


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_x7_reconfiguration_latency(benchmark, style):
    latency = run_once(benchmark, _reconfiguration_latency, style)
    benchmark.extra_info["latency_ms"] = round(latency * 1e3, 2)
    record_row(f"X7   reconfig after crash {style.value:8s} "
               f"{latency * 1e3:>7,.1f} ms")
    # Bounded by token-loss timeout (100 ms) + consensus + recovery.
    assert latency < 1.0
