"""X6: flow-control window and active-passive K ablations (extensions).

DESIGN.md calls out two tunables the paper fixes silently: the Totem flow
control window (80 packets/rotation here) and the active-passive K.  These
ablations quantify both.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.cluster import SimCluster
from repro.bench.runner import build_config
from repro.bench.workload import SaturatingWorkload
from repro.types import ReplicationStyle

from conftest import DURATION, WARMUP, record_row, run_once


def _throughput(style: ReplicationStyle, num_networks=None,
                active_passive_k=2, **totem_overrides) -> float:
    config = build_config(style, num_nodes=4, num_networks=num_networks,
                          active_passive_k=active_passive_k)
    if totem_overrides:
        config = dataclasses.replace(
            config, totem=dataclasses.replace(config.totem, **totem_overrides))
    cluster = SimCluster(config)
    cluster.start()
    SaturatingWorkload(cluster, 1024).start()
    cluster.run_for(WARMUP)
    reference = cluster.nodes[1]
    base = reference.srp.stats.msgs_delivered
    cluster.run_for(DURATION)
    return (reference.srp.stats.msgs_delivered - base) / DURATION


@pytest.mark.parametrize("window", (10, 40, 80, 160))
def test_x6_window_size_sweep(benchmark, window):
    rate = run_once(benchmark, _throughput, ReplicationStyle.NONE,
                    window_size=window,
                    max_messages_per_token=max(1, window // 4))
    benchmark.extra_info["msgs_per_sec"] = round(rate)
    record_row(f"X6   window={window:>4d}: {rate:>9,.0f} msgs/s")
    assert rate > 0


def test_x6_small_window_throttles(benchmark):
    """A tiny window caps broadcasts per rotation and thus throughput."""
    def measure():
        return (_throughput(ReplicationStyle.NONE, window_size=8,
                            max_messages_per_token=2),
                _throughput(ReplicationStyle.NONE, window_size=80,
                            max_messages_per_token=20))
    small, default = run_once(benchmark, measure)
    record_row(f"X6   window 8 -> {small:,.0f} msgs/s vs 80 -> {default:,.0f}")
    assert small < default


@pytest.mark.parametrize("k", (2, 3))
def test_x6_active_passive_k_sweep(benchmark, k):
    rate = run_once(benchmark, _throughput, ReplicationStyle.ACTIVE_PASSIVE,
                    num_networks=4, active_passive_k=k)
    benchmark.extra_info["msgs_per_sec"] = round(rate)
    record_row(f"X6   AP(N=4, K={k}): {rate:>9,.0f} msgs/s")
    assert rate > 0


def test_x6_higher_k_costs_throughput(benchmark):
    """§4: bandwidth consumption increases K-fold, so K=3 cannot beat K=2."""
    def measure():
        return (_throughput(ReplicationStyle.ACTIVE_PASSIVE,
                            num_networks=4, active_passive_k=2),
                _throughput(ReplicationStyle.ACTIVE_PASSIVE,
                            num_networks=4, active_passive_k=3))
    k2, k3 = run_once(benchmark, measure)
    record_row(f"X6   K=2 -> {k2:,.0f} msgs/s vs K=3 -> {k3:,.0f} msgs/s")
    assert k3 <= k2 * 1.05
