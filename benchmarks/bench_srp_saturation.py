"""T1 (paper §2/§8): the Totem SRP alone saturates a 100 Mbit/s Ethernet.

Claim: "a throughput of more than 9,000 1 Kbyte msgs/sec has been achieved
on a 100Mbit/sec Ethernet, which corresponds to a utilization of almost
90%."  The benchmark asserts both halves of the claim (with a tolerance for
the simulated substrate).
"""

from __future__ import annotations

from repro.bench.runner import run_throughput
from repro.types import ReplicationStyle

from conftest import record_row, run_once


def test_srp_ethernet_saturation(benchmark):
    result = run_once(benchmark, run_throughput,
                      ReplicationStyle.NONE, 4, 1024,
                      duration=0.4, warmup=0.15)
    benchmark.extra_info["msgs_per_sec"] = round(result.msgs_per_sec)
    benchmark.extra_info["utilization"] = round(result.network_utilization[0], 3)
    record_row(f"T1   srp saturation: {result.msgs_per_sec:,.0f} msgs/s at "
               f"{result.network_utilization[0]:.1%} utilisation "
               f"(paper: >9,000 at ~90%)")
    assert result.msgs_per_sec > 9000, "paper claims >9,000 1-KB msgs/s"
    assert result.network_utilization[0] > 0.85, "paper claims ~90% utilisation"


def test_srp_saturation_six_nodes(benchmark):
    """The claim is not node-count sensitive; check the 6-node testbed too."""
    result = run_once(benchmark, run_throughput,
                      ReplicationStyle.NONE, 6, 1024,
                      duration=0.4, warmup=0.15)
    record_row(f"T1   srp saturation (6 nodes): {result.msgs_per_sec:,.0f} msgs/s "
               f"at {result.network_utilization[0]:.1%}")
    assert result.msgs_per_sec > 9000
    assert result.network_utilization[0] > 0.85
