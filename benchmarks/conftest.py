"""Shared helpers for the pytest-benchmark suite.

Each benchmark runs a *virtual-time* simulation once per round (the
simulation is deterministic, so repeating it would measure only the Python
interpreter).  The interesting output is the reproduced figure/table data,
attached to each benchmark as ``extra_info`` and printed at the end of the
session.
"""

from __future__ import annotations

import pytest

#: Reduced sweep parameters so the whole benchmark suite stays fast.
DURATION = 0.2
WARMUP = 0.1

_summary_lines = []


def record_row(line: str) -> None:
    _summary_lines.append(line)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _summary_lines:
        return
    terminalreporter.write_sep("=", "paper reproduction data")
    for line in _summary_lines:
        terminalreporter.write_line(line)
