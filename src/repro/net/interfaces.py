"""Transport-facing protocols shared by the simulator and the UDP backend."""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from ..types import NodeId

#: Callback invoked when a packet arrives: ``handler(packet, network_index)``.
PacketHandler = Callable[[object, int], None]


@runtime_checkable
class Port(Protocol):
    """One node's attachment to one network.

    A port can broadcast to every other node on the network or unicast to a
    single destination (Totem unicasts tokens, broadcasts everything else).
    """

    def broadcast(self, packet: object) -> None:
        """Send ``packet`` to all other nodes attached to this network."""
        ...

    def unicast(self, dest: NodeId, packet: object) -> None:
        """Send ``packet`` to ``dest`` only."""
        ...
