"""Per-node CPU model and the network stack glue.

The paper attributes its performance results to protocol-stack processing
cost, not just wire bandwidth: active replication loses throughput because it
"doubles the number of calls to the network protocol stack" (§8), and passive
replication scales sub-linearly because ordering/retransmission/liveness
processing saturates the CPU before the second network does.

:class:`NodeCpu` is a single-server FIFO queue in virtual time: every
stack traversal (send or receive) and every per-message protocol action
occupies the CPU for a configured cost.  :class:`NetworkStack` routes frames
between a node's protocol engine and its N :class:`~repro.net.simlan.LanPort`
attachments, charging CPU on both paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .. import _fast
from ..config import LanConfig
from ..errors import TransportError
from ..sim.scheduler import EventScheduler
from ..types import NodeId
from .interfaces import PacketHandler
from .simlan import LanPort

#: Returns the CPU seconds to charge for receiving ``packet``.
RecvCostFn = Callable[[object], float]


@dataclass
class CpuStats:
    """CPU accounting for one node."""

    busy_time: float = 0.0
    operations: int = 0

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class NodeCpu:
    """A single-server FIFO CPU in virtual time.

    ``submit(cost, fn)`` runs ``fn`` once all previously submitted work has
    finished and ``cost`` further seconds have elapsed.  ``cost`` may be a
    callable, evaluated when the job *starts* — this matters for the
    duplicate-receive discount: whether a frame is a duplicate is only known
    once every earlier frame has actually been processed.
    """

    def __init__(self, scheduler: EventScheduler) -> None:
        self._scheduler = scheduler
        self._queue: "deque" = deque()
        self._running = False
        self.stats = CpuStats()

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._running else 0)

    def submit(self, cost, fn: Callable[..., None], *args: object) -> None:
        """Queue ``fn(*args)`` behind all pending work.

        ``cost`` is seconds of CPU time, or a zero-argument callable
        returning seconds, evaluated when the job reaches the head of the
        queue.
        """
        fast = _fast.cpu_submit
        if fast is not None:
            # Compiled twin of the queue/begin logic below; the scheduled
            # entry stays `[when, counter, self._finish, (fn, args)]`, so
            # explorer classification and deepcopy snapshots are unchanged.
            fast(self, cost, fn, args)
            return
        if self._running:
            self._queue.append((cost, fn, args))
            return
        self._running = True
        self._begin(cost, fn, args)

    def _start_next(self) -> None:
        queue = self._queue
        if not queue:
            self._running = False
            return
        cost, fn, args = queue.popleft()
        self._begin(cost, fn, args)

    def _begin(self, cost, fn: Callable[..., None], args: tuple) -> None:
        if callable(cost):
            cost = cost()
        if cost < 0:
            raise TransportError(f"negative CPU cost {cost}")
        stats = self.stats
        stats.busy_time += cost
        stats.operations += 1
        scheduler = self._scheduler
        scheduler.schedule(scheduler.clock._now + cost, self._finish, fn, args)

    def _finish(self, fn: Callable[..., None], args: tuple) -> None:
        fast = _fast.cpu_finish
        if fast is not None:
            fast(self, fn, args)
            return
        try:
            fn(*args)
        finally:
            self._start_next()


class _DefaultRecvCost:
    """Flat per-frame receive cost, used until the protocol glue installs a
    classifier via :meth:`NetworkStack.set_recv_cost_fn`.

    A callable object rather than a closure: ``copy.deepcopy`` treats plain
    functions as atomic, so a closure here would keep a copied stack wired
    to the original's config.  Every long-lived callable the simulated world
    stores must be an object (or a bound method) for cluster snapshots to be
    self-contained.
    """

    __slots__ = ("_lan_config",)

    def __init__(self, lan_config: LanConfig) -> None:
        self._lan_config = lan_config

    def __call__(self, packet: object) -> float:
        return self._lan_config.cpu_per_recv


class _RecvJobCost:
    """Deferred receive-cost evaluation for one queued frame.

    Cost is resolved when the CPU job *starts*, so a copy arriving just
    behind its twin is correctly billed as a duplicate.  Deepcopy-safe
    (see :class:`_DefaultRecvCost`).
    """

    __slots__ = ("_stack", "_packet")

    def __init__(self, stack: "NetworkStack", packet: object) -> None:
        self._stack = stack
        self._packet = packet

    def __call__(self) -> float:
        return self._stack._recv_cost_fn(self._packet)


class _PortDeliver:
    """The per-network delivery callback a stack registers with a LAN.

    Instances live in ``SimLan._receivers`` and inside in-flight fanout
    events, so they must be deepcopy-safe (see :class:`_DefaultRecvCost`).
    """

    __slots__ = ("_stack", "_network")

    def __init__(self, stack: "NetworkStack", network: int) -> None:
        self._stack = stack
        self._network = network

    def __call__(self, src: NodeId, packet: object) -> None:
        stack = self._stack
        stack._cpu.submit(_RecvJobCost(stack, packet),
                          stack._dispatch, packet, self._network)


class NetworkStack:
    """A node's view of its N redundant networks.

    Downward: ``broadcast(i, pkt)`` / ``unicast(i, dest, pkt)`` charge one
    stack-call CPU cost, then hand the frame to network ``i``.  Upward:
    frames arriving from any network are queued on the CPU (cost decided by
    ``recv_cost_fn``, which the protocol glue sets so duplicate frames are
    cheaper) and then passed to the receive handler with the network index —
    the ``recvMsg(m, nx)`` / ``recvToken(t, nx)`` interface of Figures 2
    and 4.
    """

    def __init__(self, node: NodeId, cpu: NodeCpu, lan_config: LanConfig,
                 ports: Sequence[LanPort] = ()) -> None:
        self.node = node
        self._cpu = cpu
        self._lan_config = lan_config
        self._ports: List[LanPort] = list(ports)
        self._handler: Optional[PacketHandler] = None
        self._recv_cost_fn: RecvCostFn = _DefaultRecvCost(lan_config)
        #: Frames dropped because no handler was installed yet.
        self.undelivered = 0

    @property
    def num_networks(self) -> int:
        return len(self._ports)

    def add_port(self, port: LanPort) -> None:
        """Attach one more network (ports are indexed in attachment order)."""
        self._ports.append(port)

    def set_receive_handler(self, handler: PacketHandler) -> None:
        """Install the upward handler: ``handler(packet, network_index)``."""
        self._handler = handler

    def set_recv_cost_fn(self, fn: RecvCostFn) -> None:
        """Install the receive CPU-cost classifier (duplicates are cheaper)."""
        self._recv_cost_fn = fn

    # ----- downward path (engine -> network) -----

    def _send_cost(self, packet: object) -> float:
        lan = self._lan_config
        return lan.cpu_per_send + lan.cpu_per_byte_send * packet.wire_size()  # type: ignore[attr-defined]

    def broadcast(self, network: int, packet: object) -> None:
        port = self._port(network)
        self._cpu.submit(self._send_cost(packet), port.broadcast, packet)

    def unicast(self, network: int, dest: NodeId, packet: object) -> None:
        port = self._port(network)
        self._cpu.submit(self._send_cost(packet), port.unicast, dest, packet)

    def _port(self, network: int) -> LanPort:
        try:
            return self._ports[network]
        except IndexError:
            raise TransportError(
                f"node {self.node} has no network {network} "
                f"(has {len(self._ports)})") from None

    # ----- upward path (network -> engine) -----

    def make_deliver_fn(self, network: int) -> _PortDeliver:
        """The per-network delivery callback to register with a LAN."""
        return _PortDeliver(self, network)

    def _dispatch(self, packet: object, network: int) -> None:
        if self._handler is None:
            self.undelivered += 1
            return
        self._handler(packet, network)
