"""Fault injection for the simulated networks (paper §3 fault model).

The paper's RRP tolerates exactly three kinds of network fault:

* a node unable to *send* on a particular network,
* a node unable to *receive* on a particular network,
* a network unable to deliver from some subset of nodes to some other subset
  (up to and including total network failure).

:class:`NetworkFaultModel` holds the live fault state of one LAN and answers
"can this frame be sent / delivered?".  :class:`FaultPlan` is a declarative,
virtual-time-stamped script of fault transitions that a cluster applies via
the event scheduler, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError
from ..types import NetworkIndex, NodeId


class GilbertElliottLoss:
    """Two-state (good/bad) burst-loss model.

    Real Ethernet omission faults are bursty — a switch buffer overrun or
    an interference event drops a *run* of frames, not independent ones.
    The classic Gilbert-Elliott chain captures this: in the GOOD state
    frames survive; in the BAD state they are dropped with ``bad_loss``;
    the chain flips state per frame with the given probabilities.

    ``p_good_to_bad = 0.005, p_bad_to_good = 0.2`` gives bursts of ~5
    frames roughly every 200 frames (≈ 2.4 % average loss).
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float,
                 bad_loss: float = 1.0) -> None:
        for name, value in (("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if not 0.0 <= bad_loss <= 1.0:
            raise ConfigError("bad_loss must be in [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.bad_loss = bad_loss
        self.in_bad_state = False
        self.bursts = 0

    def frame_lost(self, rng) -> bool:
        """Advance the chain one frame; returns True if the frame drops."""
        if self.in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
                self.bursts += 1
        return self.in_bad_state and rng.random() < self.bad_loss

    @property
    def average_loss(self) -> float:
        """Stationary loss rate of the chain."""
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0:
            return 0.0
        bad_fraction = self.p_good_to_bad / denominator
        return bad_fraction * self.bad_loss


class NetworkFaultModel:
    """Live fault state of one simulated LAN."""

    def __init__(self) -> None:
        #: Total network failure: nothing is delivered at all.
        self.down: bool = False
        #: Nodes whose transmissions this network silently discards.
        self.send_blocked: Set[NodeId] = set()
        #: Nodes to which this network never delivers.
        self.recv_blocked: Set[NodeId] = set()
        #: Specific (src, dst) pairs that are severed.
        self.blocked_pairs: Set[Tuple[NodeId, NodeId]] = set()
        #: Partition groups; None means no partition.  Delivery requires the
        #: sender and receiver to share a group.
        self.partition: Optional[List[FrozenSet[NodeId]]] = None
        #: Additional frame loss probability injected on top of the LAN's
        #: configured base loss rate.
        self.extra_loss_rate: float = 0.0
        #: Optional burst-loss chain, evaluated once per frame (all
        #: receivers of a broadcast share the burst — the drop happens at
        #: the switch/medium, not per receiver).
        self.burst_loss: Optional[GilbertElliottLoss] = None
        #: Targeted single-frame drops: ``(src, serial)`` pairs, where
        #: ``serial`` is the 1-based index of the frame among all frames
        #: ``src`` ever offered to this network.  The addressed frame is
        #: lost at the medium (all receivers of a broadcast share the drop).
        #: This is how ``repro.check explore`` counterexamples express "the
        #: k-th frame from node s was lost" deterministically.
        self.drop_serials: Set[Tuple[NodeId, int]] = set()

    def consume_drop(self, src: NodeId, serial: int) -> bool:
        """Whether frame ``serial`` from ``src`` is scripted to drop.

        Consuming: each scripted drop fires at most once.
        """
        try:
            self.drop_serials.remove((src, serial))
            return True
        except KeyError:
            return False

    def digest_state(self) -> tuple:
        """Canonical state tuple for explorer digests (repro.check explore)."""
        burst = self.burst_loss
        return ("netfaults", self.down,
                tuple(sorted(self.send_blocked)),
                tuple(sorted(self.recv_blocked)),
                tuple(sorted(self.blocked_pairs)),
                None if self.partition is None
                else tuple(sorted(tuple(sorted(g)) for g in self.partition)),
                self.extra_loss_rate,
                None if burst is None
                else (burst.p_good_to_bad, burst.p_bad_to_good,
                      burst.bad_loss, burst.in_bad_state),
                tuple(sorted(self.drop_serials)))

    def can_send(self, src: NodeId) -> bool:
        """Whether a frame from ``src`` even reaches the medium."""
        return not self.down and src not in self.send_blocked

    def can_deliver(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the network will deliver a frame from ``src`` to ``dst``."""
        if self.down or dst in self.recv_blocked:
            return False
        if (src, dst) in self.blocked_pairs:
            return False
        if self.partition is not None:
            for group in self.partition:
                if src in group and dst in group:
                    return True
            return False
        return True

    def set_partition(self, groups: Sequence[Sequence[NodeId]]) -> None:
        """Partition the network into the given node groups."""
        frozen = [frozenset(g) for g in groups]
        seen: Set[NodeId] = set()
        for group in frozen:
            if seen & group:
                raise ConfigError("partition groups must be disjoint")
            seen |= group
        self.partition = frozen

    def heal(self) -> None:
        """Clear every fault on this network."""
        self.down = False
        self.send_blocked.clear()
        self.recv_blocked.clear()
        self.blocked_pairs.clear()
        self.partition = None
        self.extra_loss_rate = 0.0
        self.burst_loss = None
        self.drop_serials.clear()


@dataclass(frozen=True)
class _FaultEvent:
    """One scheduled fault transition."""

    time: float
    network: NetworkIndex
    apply: Callable[[NetworkFaultModel], None]
    label: str

    def __str__(self) -> str:
        return f"t={self.time}: net{self.network} {self.label}"


@dataclass
class FaultPlan:
    """A reproducible, virtual-time script of network fault transitions.

    Build a plan with the fluent helpers, then hand it to
    :meth:`repro.api.cluster.SimCluster.apply_fault_plan`, which schedules
    each transition on the event scheduler::

        plan = (FaultPlan()
                .fail_network(at=1.0, network=1)
                .restore_network(at=3.0, network=1))
    """

    events: List[_FaultEvent] = field(default_factory=list)

    def _add(self, time: float, network: NetworkIndex,
             apply: Callable[[NetworkFaultModel], None], label: str) -> "FaultPlan":
        if time < 0:
            raise ConfigError("fault times must be non-negative")
        self.events.append(_FaultEvent(time, network, apply, label))
        return self

    def fail_network(self, at: float, network: NetworkIndex) -> "FaultPlan":
        """Total failure of a network (e.g. its switch loses power)."""
        def apply(model: NetworkFaultModel) -> None:
            model.down = True
        return self._add(at, network, apply, "fail")

    def restore_network(self, at: float, network: NetworkIndex) -> "FaultPlan":
        """Clear every fault on a network."""
        return self._add(at, network, NetworkFaultModel.heal, "restore")

    def sever_send(self, at: float, network: NetworkIndex, node: NodeId) -> "FaultPlan":
        """``node`` becomes unable to send on ``network`` (dead TX path)."""
        def apply(model: NetworkFaultModel) -> None:
            model.send_blocked.add(node)
        return self._add(at, network, apply, f"sever-send node {node}")

    def sever_recv(self, at: float, network: NetworkIndex, node: NodeId) -> "FaultPlan":
        """``node`` becomes unable to receive on ``network`` (dead RX path)."""
        def apply(model: NetworkFaultModel) -> None:
            model.recv_blocked.add(node)
        return self._add(at, network, apply, f"sever-recv node {node}")

    def sever_pair(self, at: float, network: NetworkIndex,
                   src: NodeId, dst: NodeId) -> "FaultPlan":
        """Frames from ``src`` to ``dst`` are dropped on ``network``."""
        def apply(model: NetworkFaultModel) -> None:
            model.blocked_pairs.add((src, dst))
        return self._add(at, network, apply, f"sever {src}->{dst}")

    def partition(self, at: float, network: NetworkIndex,
                  groups: Sequence[Sequence[NodeId]]) -> "FaultPlan":
        """Split ``network`` into non-communicating node groups."""
        frozen = [tuple(g) for g in groups]

        def apply(model: NetworkFaultModel) -> None:
            model.set_partition(frozen)
        return self._add(at, network, apply, f"partition {frozen}")

    def drop_frame(self, at: float, network: NetworkIndex,
                   src: NodeId, serial: int) -> "FaultPlan":
        """Drop the ``serial``-th frame ``src`` offers to ``network``.

        Serials are 1-based and count every frame the node's port offers
        (including frames later blocked by other faults), so the address is
        stable under replay.  ``at`` must precede the frame's transmission.
        """
        if serial < 1:
            raise ConfigError("frame serial must be >= 1")

        def apply(model: NetworkFaultModel) -> None:
            model.drop_serials.add((src, serial))
        return self._add(at, network, apply, f"drop frame {src}#{serial}")

    def set_loss(self, at: float, network: NetworkIndex, rate: float) -> "FaultPlan":
        """Inject extra i.i.d. frame loss on ``network``."""
        if not 0.0 <= rate < 1.0:
            raise ConfigError("loss rate must be in [0, 1)")

        def apply(model: NetworkFaultModel) -> None:
            model.extra_loss_rate = rate
        return self._add(at, network, apply, f"loss={rate}")

    def set_burst_loss(self, at: float, network: NetworkIndex,
                       p_good_to_bad: float, p_bad_to_good: float,
                       bad_loss: float = 1.0) -> "FaultPlan":
        """Inject Gilbert-Elliott burst loss on ``network``.

        Pass ``p_good_to_bad=0`` to disable an earlier burst model.
        """
        def apply(model: NetworkFaultModel) -> None:
            if p_good_to_bad == 0.0:
                model.burst_loss = None
            else:
                model.burst_loss = GilbertElliottLoss(
                    p_good_to_bad, p_bad_to_good, bad_loss)
        return self._add(at, network, apply,
                         f"burst-loss p={p_good_to_bad}/{p_bad_to_good}")
