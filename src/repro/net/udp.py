"""Real-socket transport: N redundant networks as N UDP port spaces.

The protocol engines are sans-io, so the same SRP/RRP code that runs on the
simulator runs here over asyncio UDP sockets.  Each redundant "network" is a
separate UDP socket per node; broadcast is emulated by unicast fan-out to
every peer's address on that network (on a real deployment each network
would be a separate NIC/subnet and the fan-out a subnet broadcast, exactly
as in the paper's testbed).

The address map is static configuration, mirroring the paper's fixed
testbed wiring::

    addresses = {1: [("127.0.0.1", 9000), ("127.0.0.1", 9001)],
                 2: [("127.0.0.1", 9010), ("127.0.0.1", 9011)]}
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CodecError, TransportError
from ..types import NodeId
from ..wire.codec import PackedPacketCache, decode_packet
from .interfaces import PacketHandler

Address = Tuple[str, int]
#: node -> one address per network.
AddressMap = Dict[NodeId, Sequence[Address]]


def local_address_map(node_ids: Sequence[NodeId], num_networks: int,
                      base_port: int = 19000,
                      host: str = "127.0.0.1") -> AddressMap:
    """A loopback address map for demos and tests."""
    return {
        node: [(host, base_port + 16 * i + j) for j in range(num_networks)]
        for i, node in enumerate(sorted(node_ids))
    }


class _NetworkProtocol(asyncio.DatagramProtocol):
    """Datagram handler for one node's socket on one network."""

    def __init__(self, owner: "UdpStack", network: int) -> None:
        self._owner = owner
        self._network = network

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data, self._network)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self._owner.errors.append(exc)


class UdpStack:
    """The network-stack interface of :class:`ReplicationEngine`, over UDP."""

    def __init__(self, node: NodeId, addresses: AddressMap) -> None:
        if node not in addresses:
            raise TransportError(f"node {node} missing from address map")
        lengths = {len(addrs) for addrs in addresses.values()}
        if len(lengths) != 1:
            raise TransportError("all nodes must have one address per network")
        self.node = node
        self.addresses = addresses
        self._num_networks = lengths.pop()
        self._transports: List[asyncio.DatagramTransport] = []
        self._handler: Optional[PacketHandler] = None
        self.errors: List[Exception] = []
        self.decode_failures = 0
        self.datagrams_sent = 0
        self.bytes_sent = 0
        self.datagrams_received = 0
        self.bytes_received = 0
        #: Active replication re-sends the same packet object on every
        #: network; cache the encoded bytes so N sends serialise once.
        self._encode_cache = PackedPacketCache()

    @property
    def num_networks(self) -> int:
        return self._num_networks

    def set_receive_handler(self, handler: PacketHandler) -> None:
        self._handler = handler

    def set_recv_cost_fn(self, fn: Callable[[object], float]) -> None:
        """No-op: real hardware charges its own CPU."""

    async def open(self) -> None:
        """Bind one socket per network at this node's configured addresses."""
        loop = asyncio.get_running_loop()
        for network in range(self._num_networks):
            host, port = self.addresses[self.node][network]
            transport, _ = await loop.create_datagram_endpoint(
                lambda network=network: _NetworkProtocol(self, network),
                local_addr=(host, port))
            self._transports.append(transport)

    def close(self) -> None:
        for transport in self._transports:
            transport.close()
        self._transports.clear()

    # ----- downward (engine -> wire) -----

    def _send(self, network: int, dest: NodeId, data: bytes) -> None:
        if not self._transports:
            raise TransportError("UdpStack not opened")
        addr = tuple(self.addresses[dest][network])
        self._transports[network].sendto(data, addr)
        self.datagrams_sent += 1
        self.bytes_sent += len(data)

    def broadcast(self, network: int, packet: object) -> None:
        data = self._encode_cache.encode(packet)  # type: ignore[arg-type]
        for dest in self.addresses:
            if dest != self.node:
                self._send(network, dest, data)

    def unicast(self, network: int, dest: NodeId, packet: object) -> None:
        data = self._encode_cache.encode(packet)  # type: ignore[arg-type]
        self._send(network, dest, data)

    def metrics_snapshot(self) -> Dict[str, int]:
        """Wire-level counters (the real-transport face of :mod:`repro.obs`)."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "bytes_sent": self.bytes_sent,
            "datagrams_received": self.datagrams_received,
            "bytes_received": self.bytes_received,
            "decode_failures": self.decode_failures,
        }

    # ----- upward (wire -> engine) -----

    def _on_datagram(self, data: bytes, network: int) -> None:
        self.datagrams_received += 1
        self.bytes_received += len(data)
        if self._handler is None:
            return
        try:
            packet = decode_packet(data)
        except CodecError:
            self.decode_failures += 1
            return
        self._handler(packet, network)
