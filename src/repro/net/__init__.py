"""Network substrate: simulated redundant Ethernet LANs and fault injection.

This package stands in for the paper's physical testbed (two 100 Mbit/s
Ethernets per node).  :class:`SimLan` models one shared-medium Ethernet with
frame-level serialisation, per-(sender, network) FIFO delivery — the exact
ordering assumption §5 of the paper relies on — plus configurable loss.
:class:`NetworkFaultModel` and :class:`FaultPlan` inject the §3 fault model:
send faults, receive faults, partial partitions and total network failure.
:class:`NodeCpu` and :class:`NetworkStack` model protocol-stack CPU cost,
which is what makes the paper's performance shapes (active slower, passive
faster-but-sub-2x) emerge.
"""

from .faults import FaultPlan, NetworkFaultModel
from .interfaces import PacketHandler, Port
from .simlan import LanPort, LanStats, SimLan
from .stack import CpuStats, NetworkStack, NodeCpu

__all__ = [
    "FaultPlan",
    "NetworkFaultModel",
    "PacketHandler",
    "Port",
    "SimLan",
    "LanPort",
    "LanStats",
    "NodeCpu",
    "CpuStats",
    "NetworkStack",
]
