"""A simulated shared-medium Ethernet LAN.

The model follows the paper's testbed semantics:

* one shared 100 Mbit/s medium per network — frames serialise one after
  another (Totem's token schedule means senders rarely contend, which is how
  the SRP drives an Ethernet to ~90 % utilisation, §2/§8),
* per-(sender, network) FIFO delivery to each receiver in the fault-free
  case — exactly the assumption the RRP correctness argument uses (§5),
* FIFO is violated only by frame loss (base rate, injected extra loss, or a
  scripted fault), never by reordering,
* the sender does not hear its own broadcast (Totem self-delivers locally),
* a :class:`~repro.wire.packets.BatchPacket` frame train is one frame here:
  it occupies the medium for its full serialised length, takes one loss draw,
  and reaches all receivers through the same single fanout event as any other
  frame — batching n packets costs one heap operation, not n.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..config import LanConfig
from ..errors import TransportError
from ..sim.scheduler import EventScheduler
from ..types import NodeId
from ..wire.packets import BatchPacket
from .faults import NetworkFaultModel

#: Delivery callback: ``deliver(src, packet)`` on the receiving node.
DeliverFn = Callable[[NodeId, object], None]


@dataclass
class LanStats:
    """Traffic accounting for one simulated LAN."""

    frames_offered: int = 0
    frames_sent: int = 0
    deliveries: int = 0
    frames_lost: int = 0
    frames_blocked: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    #: Seconds the medium spent transmitting (for utilisation measurement).
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the medium was transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def snapshot(self, elapsed: float) -> dict:
        """All counters as one plain dict (for :mod:`repro.obs`)."""
        return {
            "frames_offered": self.frames_offered,
            "frames_sent": self.frames_sent,
            "deliveries": self.deliveries,
            "frames_lost": self.frames_lost,
            "frames_blocked": self.frames_blocked,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "busy_time": self.busy_time,
            "utilization": self.utilization(elapsed),
        }


class SimLan:
    """One simulated Ethernet network with an arbitrary set of attached nodes."""

    def __init__(self, scheduler: EventScheduler, config: LanConfig,
                 rng: random.Random, index: int = 0) -> None:
        self._scheduler = scheduler
        self.config = config
        self.index = index
        self._rng = rng
        self.faults = NetworkFaultModel()
        self.stats = LanStats()
        self._receivers: Dict[NodeId, DeliverFn] = {}
        #: Multicast-group-style channels: frames still serialise on the one
        #: shared medium (shared bandwidth, loss, and backlog), but a frame
        #: only fans out to receivers attached to the *sender's* channel —
        #: the simulated analogue of per-ring multicast group addresses.
        #: Channel 0 is the default and preserves classic behaviour.
        self._channels: Dict[NodeId, int] = {}
        self._channel_receivers: Dict[int, Dict[NodeId, DeliverFn]] = {}
        #: Attachment generation per node: a re-attached node gets a new
        #: generation and ports of older incarnations go dead (a restarted
        #: process must not ghost-transmit through its predecessor's NIC).
        self._generations: Dict[NodeId, int] = {}
        #: Virtual time at which the medium finishes its current backlog.
        self._medium_free_at: float = 0.0
        #: Frames offered per source node (1-based serials): the address
        #: space for targeted drops and for the explorer's drop decisions.
        self._tx_serial: Dict[NodeId, int] = {}
        #: Optional delivery observer ``(network, src, dst, packet, arrival)``
        #: called for every frame actually scheduled for delivery (used by
        #: :mod:`repro.check` to know which packets are in flight).
        self.observer: Optional[Callable[[int, NodeId, NodeId, object, float], None]] = None

    # ----- attachment -----

    def attach(self, node: NodeId, deliver: DeliverFn,
               channel: int = 0) -> "LanPort":
        """Attach ``node``; ``deliver(src, packet)`` fires on frame arrival.

        ``channel`` scopes fanout: broadcasts from ``node`` reach only
        receivers attached with the same channel (multicast-group
        semantics).  The medium itself — bandwidth, backlog, loss — stays
        shared across all channels.
        """
        if node in self._receivers:
            raise TransportError(f"node {node} already attached to net{self.index}")
        self._receivers[node] = deliver
        self._channels[node] = channel
        self._channel_receivers.setdefault(channel, {})[node] = deliver
        generation = self._generations.get(node, 0) + 1
        self._generations[node] = generation
        return LanPort(self, node, generation)

    def detach(self, node: NodeId) -> None:
        """Remove a node (e.g. a crashed process) from the network."""
        self._receivers.pop(node, None)
        channel = self._channels.pop(node, None)
        if channel is not None:
            self._channel_receivers.get(channel, {}).pop(node, None)

    @property
    def nodes(self) -> tuple:
        return tuple(self._receivers)

    def channel_of(self, node: NodeId) -> int:
        """The channel ``node`` is attached on (0 when unattached)."""
        return self._channels.get(node, 0)

    # ----- transmission -----

    def transmit(self, src: NodeId, packet: object,
                 dest: Optional[NodeId] = None,
                 generation: Optional[int] = None) -> None:
        """Send ``packet`` from ``src``; broadcast when ``dest`` is None.

        The frame occupies the medium for its serialisation time, then is
        delivered (after propagation latency) to every eligible receiver.
        The sender never receives its own frame.  A ``generation`` that no
        longer matches the node's current attachment is a dead incarnation's
        port and transmits nothing.
        """
        stats = self.stats
        faults = self.faults
        config = self.config
        stats.frames_offered += 1
        serial = self._tx_serial.get(src, 0) + 1
        self._tx_serial[src] = serial
        if (generation is not None
                and self._generations.get(src) != generation):
            stats.frames_blocked += 1
            return
        if not faults.can_send(src):
            stats.frames_blocked += 1
            return
        payload = packet.wire_size()  # type: ignore[attr-defined]
        wire_time = config.wire_time(payload)
        now = self._scheduler.clock._now
        start = self._medium_free_at
        if now > start:
            start = now
        done = start + wire_time
        self._medium_free_at = done
        stats.frames_sent += 1
        stats.payload_bytes += payload
        wire = payload + config.frame_overhead
        min_frame = config.min_frame
        stats.wire_bytes += wire if wire > min_frame else min_frame
        stats.busy_time += wire_time
        if type(packet) is BatchPacket:
            # A frame train's packets reach the receiver progressively while
            # the medium is still serialising the tail, and a pipelined
            # receiver starts processing as soon as the head frame lands.
            # Delivering the single fanout event at the *head* frame's
            # arrival models that overlap; charging the train's full receive
            # cost from then overlaps CPU with the remaining wire time, just
            # as per-frame traffic does.  (Delivering at end-of-train would
            # serialise wire and CPU and stall the token behind the whole
            # train's ordering work — a pipelining loss real receivers do
            # not pay.)  FIFO is safe: anything sent after this train starts
            # at ``done`` and still arrives strictly later.
            arrival = (start + config.wire_time(packet.packets[0].wire_size())
                       + config.latency)
        else:
            arrival = done + config.latency

        # Burst loss happens at the medium/switch: one draw per frame, all
        # receivers of a broadcast share the outcome.
        if (faults.burst_loss is not None
                and faults.burst_loss.frame_lost(self._rng)):
            stats.frames_lost += 1
            return
        # Targeted drops (scripted by serial) share the medium/switch
        # semantics: the frame was transmitted, then lost for everyone.
        if faults.drop_serials and faults.consume_drop(src, serial):
            stats.frames_lost += 1
            return

        # Fanout is scoped to the sender's channel (multicast-group
        # semantics); an unattached sender transmits on channel 0.
        receivers = self._channel_receivers.get(self._channels.get(src, 0), {})
        if dest is not None:
            targets = (dest,) if dest in receivers else ()
        else:
            targets = [node for node in receivers if node != src]
        # Per-receiver eligibility (fault state and loss draws) is decided
        # now, in attachment order, so the RNG stream is independent of how
        # delivery is later scheduled.  All surviving receivers then share a
        # single fanout event instead of one heap entry each — the deliver
        # callbacks are captured here, so a frame already in flight still
        # reaches a node that detaches before it arrives (same semantics as
        # the old per-receiver scheduling).
        fanout: List[Tuple[DeliverFn, NodeId]] = []
        loss = config.loss_rate + faults.extra_loss_rate
        rng_random = self._rng.random
        can_deliver = faults.can_deliver
        observer = self.observer
        # One emptiness check per frame skips the per-target fault probe in
        # the (overwhelmingly common) fault-free case.
        faulty = (faults.down or faults.recv_blocked or faults.blocked_pairs
                  or faults.partition is not None)
        for node in targets:
            if faulty and not can_deliver(src, node):
                stats.frames_blocked += 1
                continue
            if loss > 0.0 and rng_random() < loss:
                stats.frames_lost += 1
                continue
            stats.deliveries += 1
            fanout.append((receivers[node], node))
            if observer is not None:
                observer(self.index, src, node, packet, arrival)
        if fanout:
            self._scheduler.schedule(arrival, self._fanout, src, packet,
                                     fanout, serial)

    def _fanout(self, src: NodeId, packet: object,
                targets: List[Tuple[DeliverFn, NodeId]],
                serial: int = 0) -> None:
        """Deliver one frame to every receiver that survived the loss draws.

        ``serial`` is carried in the event args purely so an in-flight frame
        is addressable from outside (the explorer's drop decisions record
        it); delivery itself does not use it.
        """
        for deliver, _node in targets:
            deliver(src, packet)


class LanPort:
    """One node's attachment to one :class:`SimLan` (implements ``Port``)."""

    __slots__ = ("_lan", "_node", "_generation")

    def __init__(self, lan: SimLan, node: NodeId, generation: int = 1) -> None:
        self._lan = lan
        self._node = node
        self._generation = generation

    @property
    def network_index(self) -> int:
        return self._lan.index

    def broadcast(self, packet: object) -> None:
        self._lan.transmit(self._node, packet, generation=self._generation)

    def unicast(self, dest: NodeId, packet: object) -> None:
        self._lan.transmit(self._node, packet, dest=dest,
                           generation=self._generation)
