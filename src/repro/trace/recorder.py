"""The trace recorder and its event type."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional

from ..types import NodeId


@dataclass(frozen=True)
class TraceEvent:
    """One protocol milestone."""

    time: float
    node: NodeId
    category: str  # e.g. "membership", "token", "fault"
    event: str     # e.g. "gather", "ring-installed"
    detail: str = ""

    def __str__(self) -> str:
        detail = f" — {self.detail}" if self.detail else ""
        return (f"[t={self.time:.6f}] node {self.node} "
                f"{self.category}/{self.event}{detail}")


class Tracer:
    """A bounded buffer of :class:`TraceEvent` for one cluster.

    Accounting invariant (checked by the unit tests): every call to
    :meth:`emit` lands in exactly one bucket —

    * recorded and still buffered (``len(tracer)``),
    * recorded then evicted by the capacity bound (``dropped``), or
    * suppressed because the tracer was disabled (``suppressed``) —

    so ``emitted == len(tracer) + dropped`` always holds.
    """

    def __init__(self, now_fn: Callable[[], float],
                 capacity: int = 50_000) -> None:
        if capacity < 1:
            raise ValueError("Tracer capacity must be >= 1")
        self._now_fn = now_fn
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events recorded ever (buffered + later evicted), excluding
        #: suppressed ones.
        self.emitted = 0
        #: Events evicted from the buffer by the capacity bound.
        self.dropped = 0
        #: Events discarded because ``enabled`` was False.
        self.suppressed = 0
        self.enabled = True

    @property
    def capacity(self) -> int:
        return self._events.maxlen

    def emit(self, node: NodeId, category: str, event: str,
             detail: str = "") -> None:
        if not self.enabled:
            self.suppressed += 1
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self.emitted += 1
        self._events.append(TraceEvent(
            time=self._now_fn(), node=node, category=category,
            event=event, detail=detail))

    def bind(self, node: NodeId, category: str) -> "BoundTrace":
        """A per-node, per-category emit function for engine hooks."""
        return BoundTrace(self, node, category)

    # ----- queries -----

    def events(self, category: Optional[str] = None,
               node: Optional[NodeId] = None,
               event: Optional[str] = None) -> List[TraceEvent]:
        out: Iterable[TraceEvent] = self._events
        if category is not None:
            out = (e for e in out if e.category == category)
        if node is not None:
            out = (e for e in out if e.node == node)
        if event is not None:
            out = (e for e in out if e.event == event)
        return list(out)

    def __len__(self) -> int:
        return len(self._events)

    def tail(self, count: int = 50) -> List[TraceEvent]:
        return list(self._events)[-count:]

    def clear(self) -> None:
        """Forget buffered events; totals (`emitted` etc.) keep counting."""
        self.dropped += len(self._events)
        self._events.clear()

    def format(self, count: int = 50) -> str:
        lines = [str(e) for e in self.tail(count)]
        if self.dropped:
            lines.insert(0, f"({self.dropped} earlier events dropped)")
        return "\n".join(lines) if lines else "(no events)"


class BoundTrace:
    """A per-node, per-category trace hook (what :meth:`Tracer.bind` returns).

    A callable object rather than a closure: engines hold these for their
    whole life, and ``copy.deepcopy`` treats plain functions as atomic — a
    closure here would leave a deep-copied cluster emitting trace events
    into the *original* tracer.  Cluster snapshots (``repro.check explore``)
    rely on every long-lived callable being an object or bound method.
    """

    __slots__ = ("_tracer", "_node", "_category")

    def __init__(self, tracer: Tracer, node: NodeId, category: str) -> None:
        self._tracer = tracer
        self._node = node
        self._category = category

    def __call__(self, event: str, detail: str = "") -> None:
        self._tracer.emit(self._node, self._category, event, detail)
