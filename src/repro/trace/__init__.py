"""Protocol flight recorder: bounded, structured event tracing.

The simulator is deterministic, but *why* a run unfolded the way it did —
which node started a gather and for what reason, when rings were installed,
when tokens were declared lost — is buried in state machines.  The tracer
records those protocol milestones in a bounded ring buffer per cluster, so
tests and operators can ask "what happened?" after the fact.

Every :class:`~repro.api.cluster.SimCluster` carries a tracer by default
(the overhead is one tuple append per membership-level event; steady-state
data flow is never traced).
"""

from .recorder import TraceEvent, Tracer

__all__ = ["TraceEvent", "Tracer"]
