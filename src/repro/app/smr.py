"""State-machine replication with snapshot state transfer.

Deterministic state machines applied to Totem's totally ordered stream stay
byte-identical across the group — the classic use the paper motivates (§1).
What the ordered stream alone does not give you is **state transfer**: a
node that joins (or rejoins after a crash) has an empty machine and must
catch up.  :class:`ReplicatedStateMachine` adds that, entirely on top of
the public API, using three message kinds multiplexed onto the ordered
stream:

* ``CMD``      — an application command (applied by every synced member),
* ``MARKER``   — a synchronisation point submitted after a membership
  change that introduced newcomers; because it is totally ordered, every
  member of one lineage has *identical* state at the marker's delivery
  position,
* ``SNAPSHOT`` — the marker sender's ``machine.snapshot()`` taken at the
  marker position; newcomers restore it, replay the commands they buffered
  since the marker, and are then synced.

Which lineage provides the state after a merge?  The group that makes up a
strict majority of the new configuration (each member can decide this
locally from its transitional configuration); an exact tie goes to the
group containing the smallest member id.  Members outside the winning
lineage **discard their divergent state** and re-sync — the standard
primary-lineage semantics; applications that need to *merge* divergent
partitions must do so at a higher level.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Set, runtime_checkable

from ..types import ConfigurationChange, DeliveredMessage, NodeId

_CMD = b"\x01"
_MARKER = b"\x02"
_SNAPSHOT = b"\x03"
_HEADER = struct.Struct(">QI")  # config seq, sender


@runtime_checkable
class StateMachine(Protocol):
    """What an application implements to be replicated.

    ``apply`` must be deterministic: identical command sequences must
    produce identical state on every replica.
    """

    def apply(self, command: bytes) -> None:
        """Apply one totally ordered command."""
        ...

    def snapshot(self) -> bytes:
        """Serialise the full current state."""
        ...

    def restore(self, snapshot: bytes) -> None:
        """Replace the state with a previously serialised snapshot."""
        ...


@dataclass
class SmrStats:
    commands_submitted: int = 0
    commands_applied: int = 0
    commands_buffered: int = 0
    markers_sent: int = 0
    snapshots_sent: int = 0
    snapshots_installed: int = 0
    state_discards: int = 0


class ReplicatedStateMachine:
    """Replicates a :class:`StateMachine` over a Totem node.

    Construct around a not-yet-started node, then start the node::

        node = cluster.nodes[3]
        rsm = ReplicatedStateMachine(node, machine)
        node.start(initial_members)   # or node.start(None) to join

    ``initially_synced=True`` (the default) means this node shares the
    group's initial state — correct for every member of a coordinated boot
    (and for a node deliberately starting its own group).  Pass ``False``
    for a node that *joins* a running group (including a restart after a
    crash): it then waits for the group's snapshot before applying
    anything, regardless of whether the membership protocol takes it
    through a singleton ring first or merges it directly.  At least one
    initial member must be ``initially_synced=True`` or no one will ever
    volunteer a snapshot.
    """

    def __init__(self, node, machine: StateMachine,
                 initially_synced: bool = True) -> None:
        self.node = node
        self.machine = machine
        self.stats = SmrStats()
        self.synced = initially_synced
        #: Members sharing our state lineage (same old ring, same bytes).
        self._lineage: Set[NodeId] = {node.node_id}
        self._first_config = True
        self._current_config_seq = 0
        self._config_members: Set[NodeId] = {node.node_id}
        #: Sequence of the config whose sync round we are waiting on.
        self._awaiting_marker = False
        self._marker_seen = False
        self._my_marker_won = False
        self._buffer: List[bytes] = []
        node.set_user_callbacks(on_deliver=self._on_deliver,
                                on_config_change=self._on_config_change)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def submit(self, command: bytes) -> None:
        """Submit a command for totally ordered, replicated application."""
        self.stats.commands_submitted += 1
        self.node.submit(_CMD + command)

    def try_submit(self, command: bytes) -> bool:
        if self.node.try_submit(_CMD + command):
            self.stats.commands_submitted += 1
            return True
        return False

    # ------------------------------------------------------------------
    # configuration changes
    # ------------------------------------------------------------------

    def _on_config_change(self, change: ConfigurationChange) -> None:
        members = set(change.membership.members)
        if change.transitional:
            # The survivors of our old ring: our state lineage going into
            # the new configuration.
            self._lineage &= members
            self._lineage.add(self.node.node_id)
            return
        self._current_config_seq = change.membership.ring_id.seq
        self._config_members = members
        if self._first_config:
            self._first_config = False
            if self.synced:
                # Coordinated boot (``initially_synced=True``): everyone in
                # this first configuration shares the initial state.
                self._lineage = set(members)
                self._awaiting_marker = False
                return
            # A fresh joiner (``initially_synced=False``).  Alone, it
            # defines its own (empty) state; with others, it is a newcomer
            # to *their* lineage and awaits their sync round.
            self._lineage = {self.node.node_id}
            if members == {self.node.node_id}:
                self.synced = True
                self._awaiting_marker = False
            else:
                self._awaiting_marker = True
                self._buffer.clear()
            return
        newcomers = members - self._lineage
        self._marker_seen = False
        self._my_marker_won = False
        if not newcomers:
            # Shrink (or no change): the lineage continues, no transfer.
            self._lineage = set(members)
            self._awaiting_marker = False
            if not self.synced and members == {self.node.node_id}:
                # Alone: a group of one defines its own state.
                self.synced = True
            return
        # A sync round is needed.  Everyone waits for the winning marker;
        # qualified lineages volunteer one.
        self._awaiting_marker = True
        self._buffer.clear()
        if self.synced and self._lineage_qualifies(members):
            header = _HEADER.pack(self._current_config_seq,
                                  self.node.node_id)
            self.node.submit(_MARKER + header)
            self.stats.markers_sent += 1

    def _lineage_qualifies(self, members: Set[NodeId]) -> bool:
        """Whether our lineage provides the state for the new config."""
        t, n = len(self._lineage & members), len(members)
        if 2 * t > n:
            return True
        if 2 * t == n and min(members) in self._lineage:
            return True
        return False

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _on_deliver(self, message: DeliveredMessage) -> None:
        kind, body = message.payload[:1], message.payload[1:]
        if kind == _CMD:
            self._on_command(body)
        elif kind == _MARKER:
            self._on_marker(body, message)
        elif kind == _SNAPSHOT:
            self._on_snapshot(body)

    def _on_command(self, command: bytes) -> None:
        if self.synced:
            # Synced members always apply.  If our lineage is about to lose
            # a sync round, the demotion happens AT the winning marker —
            # strictly before any command the snapshot will not cover.
            self.machine.apply(command)
            self.stats.commands_applied += 1
        elif self._marker_seen:
            self._buffer.append(command)
            self.stats.commands_buffered += 1

    def _on_marker(self, body: bytes, message: DeliveredMessage) -> None:
        config_seq, sender = _HEADER.unpack(body)
        if config_seq != self._current_config_seq or self._marker_seen:
            return  # stale round, or a later (losing) volunteer
        self._marker_seen = True
        if sender in self._lineage and self.synced:
            # Our lineage won: we stay synced.  The sender publishes the
            # snapshot for the newcomers.
            self._buffer.clear()
            if sender == self.node.node_id:
                self._my_marker_won = True
                header = _HEADER.pack(config_seq, sender)
                self.node.submit(_SNAPSHOT + header + self.machine.snapshot())
                self.stats.snapshots_sent += 1
        else:
            # Another lineage provides the state: ours is divergent.
            if self.synced:
                self.stats.state_discards += 1
            self.synced = False
            self._buffer.clear()

    def _on_snapshot(self, body: bytes) -> None:
        config_seq, sender = _HEADER.unpack(body[:_HEADER.size])
        snapshot = body[_HEADER.size:]
        if config_seq != self._current_config_seq:
            return
        if self.synced:
            # We are on the winning lineage; the snapshot settles the round
            # and the whole configuration now shares one lineage.
            self._lineage = set(self._config_members)
            self._awaiting_marker = False
            return
        if not self._marker_seen:
            return  # cannot happen on one ring (ordered), defensive
        self.machine.restore(snapshot)
        self.stats.snapshots_installed += 1
        for command in self._buffer:
            self.machine.apply(command)
            self.stats.commands_applied += 1
        self._buffer.clear()
        self.synced = True
        self._lineage = set(self._config_members)
        self._awaiting_marker = False
