"""A sharded replicated key-value store over a multi-ring cluster.

Each key is sharded to one ring by the cluster's partitioner; every ring
member applies that ring's totally ordered operation stream to its local
store, so all replicas of a shard converge.  Subscribers that audit the
*whole* keyspace attach a :class:`~repro.multiring.CrossRingMerger` and
replay the deterministic cross-ring merge — every auditor sees the same
operation sequence in the same order, byte for byte.

Operation wire format (the application payload inside the multiring data
frame): ``op:1 key_len:2 key value`` with ``op`` one of ``S`` (set) or
``D`` (delete).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Sequence, Tuple

from ..errors import CodecError
from ..types import NodeId

OP_SET = b"S"
OP_DEL = b"D"

_KEY_LEN = struct.Struct(">H")


def encode_op(op: bytes, key: bytes, value: bytes = b"") -> bytes:
    """Serialise one store operation."""
    if op not in (OP_SET, OP_DEL):
        raise CodecError(f"unknown kv op {op!r}")
    if len(key) > 0xFFFF:
        raise CodecError("key too long")
    return op + _KEY_LEN.pack(len(key)) + key + value


def decode_op(payload: bytes) -> Tuple[bytes, bytes, bytes]:
    """Parse one store operation into ``(op, key, value)``."""
    if len(payload) < 1 + _KEY_LEN.size:
        raise CodecError("kv op truncated")
    op = payload[:1]
    if op not in (OP_SET, OP_DEL):
        raise CodecError(f"unknown kv op {op!r}")
    (key_len,) = _KEY_LEN.unpack_from(payload, 1)
    key_end = 1 + _KEY_LEN.size + key_len
    if len(payload) < key_end:
        raise CodecError("kv op truncated")
    return op, payload[1 + _KEY_LEN.size:key_end], payload[key_end:]


class _Apply:
    """Per-member apply callback (callable object: deepcopy-safe)."""

    __slots__ = ("_kv", "_member")

    def __init__(self, kv: "ShardedKv", member: NodeId) -> None:
        self._kv = kv
        self._member = member

    def __call__(self, group: int, message, body: bytes) -> None:
        self._kv._apply(self._member, group, body)


class ShardedKv:
    """The sharded KV application driving a multi-ring cluster.

    One logical store replicated at every physical member: member *m*'s
    replica of shard *s* lives on *m*'s engine in shard *s*'s ring group.
    ``audit_members`` additionally subscribe a full cross-ring merger, so
    their audit logs are byte-identical (the determinism check).
    """

    def __init__(self, cluster, audit_members: Sequence[NodeId] = ()) -> None:
        self.cluster = cluster
        num_nodes = cluster.config.num_nodes
        #: Converged state per physical member: ``stores[m][key] = value``.
        self.stores: Dict[NodeId, Dict[bytes, bytes]] = {
            m: {} for m in range(1, num_nodes + 1)}
        #: Operations applied per physical member.
        self.applied: Dict[NodeId, int] = {m: 0 for m in self.stores}
        for member in self.stores:
            cluster.set_app_handler(member, _Apply(self, member))
        self.auditors = {
            member: cluster.add_merger(member) for member in audit_members}

    # ----- client operations -----

    def set(self, key: bytes, value: bytes, sender: NodeId = 1) -> bool:
        """Replicate ``key = value``; returns False when the shard's send
        queue at ``sender`` is full."""
        return self.cluster.submit(key, encode_op(OP_SET, key, value), sender)

    def delete(self, key: bytes, sender: NodeId = 1) -> bool:
        return self.cluster.submit(key, encode_op(OP_DEL, key), sender)

    # ----- replica state -----

    def _apply(self, member: NodeId, group: int, body: bytes) -> None:
        op, key, value = decode_op(body)
        store = self.stores[member]
        if op == OP_SET:
            store[key] = value
        else:
            store.pop(key, None)
        self.applied[member] += 1

    def get(self, member: NodeId, key: bytes) -> Optional[bytes]:
        """Read ``key`` from ``member``'s replica."""
        return self.stores[member].get(key)

    def converged(self) -> bool:
        """True when every member's replica holds identical state."""
        stores = list(self.stores.values())
        return all(store == stores[0] for store in stores[1:])

    def audit_digest(self, member: NodeId) -> str:
        """The auditor's merged-log digest (identical across auditors)."""
        return self.auditors[member].digest()

    def audit_log(self, member: NodeId) -> bytes:
        return self.auditors[member].log_bytes()
