"""Application toolkit on top of the Totem RRP group communication API.

The paper motivates Totem as the substrate for fault-tolerance
infrastructures (§1: AQuA, Eternal) that replicate application state over
a process group.  This package provides the canonical such layer:

* :class:`~repro.app.smr.ReplicatedStateMachine` — deterministic
  state-machine replication over the totally ordered stream, including
  snapshot-based **state transfer** so nodes that join (or rejoin after a
  crash) catch up to the group's current state;
* :class:`~repro.app.smr.StateMachine` — the small protocol an application
  implements (apply / snapshot / restore).
"""

from .primitives import CounterMachine, LockManagerMachine
from .sharded_kv import ShardedKv, decode_op, encode_op
from .smr import ReplicatedStateMachine, SmrStats, StateMachine

__all__ = [
    "ReplicatedStateMachine",
    "StateMachine",
    "SmrStats",
    "LockManagerMachine",
    "CounterMachine",
    "ShardedKv",
    "encode_op",
    "decode_op",
]
