"""Coordination primitives built on state-machine replication.

Classic cluster services the paper's motivating applications need
(§1: financial/avionics back-ends), expressed as deterministic state
machines for :class:`~repro.app.smr.ReplicatedStateMachine`:

* :class:`LockManagerMachine` — fair distributed locks with waiter queues
  and automatic release of a dead owner's locks on membership change;
* :class:`CounterMachine` — named counters (sequencers / id allocators).

Both serialise their full state for snapshot transfer, so joiners and
restarted replicas recover the coordination state automatically.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..types import NodeId


class LockManagerMachine:
    """A deterministic lock service.

    Commands (JSON, via :meth:`command`):

    * ``acquire(lock, node)`` — grant if free, else enqueue fairly;
    * ``release(lock, node)`` — release; the head waiter (if any) is
      granted immediately;
    * ``purge(nodes)`` — release every lock held (and drop every wait) by
      nodes that left the membership; typically submitted by the
      application on a configuration change.

    Queries (local, no communication): :meth:`owner`, :meth:`waiters`,
    :meth:`holds`.
    """

    def __init__(self) -> None:
        #: lock name -> owner node.
        self.owners: Dict[str, NodeId] = {}
        #: lock name -> FIFO of waiting nodes.
        self.queues: Dict[str, List[NodeId]] = {}
        self.grants = 0
        self.releases = 0

    # ----- command construction (what applications submit) -----

    @staticmethod
    def acquire(lock: str, node: NodeId) -> bytes:
        return json.dumps({"op": "acquire", "lock": lock, "node": node}).encode()

    @staticmethod
    def release(lock: str, node: NodeId) -> bytes:
        return json.dumps({"op": "release", "lock": lock, "node": node}).encode()

    @staticmethod
    def purge(nodes) -> bytes:
        return json.dumps({"op": "purge", "nodes": sorted(nodes)}).encode()

    # ----- StateMachine protocol -----

    def apply(self, command: bytes) -> None:
        op = json.loads(command.decode())
        kind = op["op"]
        if kind == "acquire":
            self._apply_acquire(op["lock"], op["node"])
        elif kind == "release":
            self._apply_release(op["lock"], op["node"])
        elif kind == "purge":
            self._apply_purge(set(op["nodes"]))

    def _apply_acquire(self, lock: str, node: NodeId) -> None:
        owner = self.owners.get(lock)
        if owner is None:
            self.owners[lock] = node
            self.grants += 1
        elif owner != node:
            queue = self.queues.setdefault(lock, [])
            if node not in queue:
                queue.append(node)

    def _apply_release(self, lock: str, node: NodeId) -> None:
        if self.owners.get(lock) != node:
            # Not the owner: also forget any waiting position.
            queue = self.queues.get(lock)
            if queue and node in queue:
                queue.remove(node)
            return
        self.releases += 1
        queue = self.queues.get(lock, [])
        if queue:
            self.owners[lock] = queue.pop(0)
            self.grants += 1
        else:
            del self.owners[lock]

    def _apply_purge(self, nodes) -> None:
        for lock, queue in list(self.queues.items()):
            self.queues[lock] = [n for n in queue if n not in nodes]
        for lock, owner in list(self.owners.items()):
            if owner in nodes:
                self._apply_release(lock, owner)
        self.queues = {lock: q for lock, q in self.queues.items() if q}

    def snapshot(self) -> bytes:
        return json.dumps({"owners": self.owners, "queues": self.queues,
                           "grants": self.grants, "releases": self.releases},
                          sort_keys=True).encode()

    def restore(self, snapshot: bytes) -> None:
        state = json.loads(snapshot.decode())
        self.owners = dict(state["owners"])
        self.queues = {k: list(v) for k, v in state["queues"].items()}
        self.grants = state["grants"]
        self.releases = state["releases"]

    # ----- local queries -----

    def owner(self, lock: str) -> Optional[NodeId]:
        return self.owners.get(lock)

    def waiters(self, lock: str) -> List[NodeId]:
        return list(self.queues.get(lock, ()))

    def holds(self, node: NodeId) -> List[str]:
        return sorted(lock for lock, owner in self.owners.items()
                      if owner == node)


class CounterMachine:
    """Named monotonically increasing counters (sequencers)."""

    def __init__(self) -> None:
        self.values: Dict[str, int] = {}

    @staticmethod
    def increment(name: str, by: int = 1) -> bytes:
        return json.dumps({"op": "incr", "name": name, "by": by}).encode()

    def apply(self, command: bytes) -> None:
        op = json.loads(command.decode())
        if op["op"] == "incr":
            self.values[op["name"]] = self.values.get(op["name"], 0) + op["by"]

    def snapshot(self) -> bytes:
        return json.dumps(self.values, sort_keys=True).encode()

    def restore(self, snapshot: bytes) -> None:
        self.values = json.loads(snapshot.decode())

    def value(self, name: str) -> int:
        return self.values.get(name, 0)
