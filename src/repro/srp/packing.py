"""Message packing and fragmentation (paper §8).

The paper: "If several messages can fit into that space [the 1424-byte
Ethernet payload], they are placed into a single packet by the message
packing algorithm.  If a message is longer than 1424 bytes, Totem splits it
up into multiple packets."  This is what produces the throughput peaks at
700 and 1400 bytes in Figures 6-9.

:class:`Packer` drains a :class:`~repro.srp.send_queue.SendQueue` into
packets worth of chunks; :class:`Reassembler` is its inverse on the receive
side.  Fragments of one message always travel in consecutive packets from
the same sender, so the reassembler only needs (sender, msg_id) keys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import _fast
from ..types import NodeId
from ..wire.packets import (
    CHUNK_HEADER_BYTES,
    FLAG_FIRST,
    FLAG_LAST,
    FLAG_WHOLE,
    Chunk,
    ChunkKind,
)
from .send_queue import SendQueue


class Packer:
    """Builds packet payloads (chunk lists) from the send queue.

    Packing policy: fill a packet greedily with whole messages; a message
    larger than the packet budget is fragmented across consecutive packets.
    A message that does not fit the *remaining* space of a non-empty packet
    starts the next packet instead of being split (splitting small messages
    would buy nothing and cost a reassembly).
    """

    def __init__(self, queue: SendQueue, max_payload: int,
                 enable_packing: bool = True) -> None:
        self._queue = queue
        self._max_payload = max_payload
        self._enable_packing = enable_packing
        self._next_msg_id = 1
        #: In-flight fragmentation state: (msg_id, remaining bytes, first_sent).
        self._partial: Optional[Tuple[int, bytes, bool]] = None

    @property
    def max_payload(self) -> int:
        return self._max_payload

    def backlog(self) -> int:
        """Messages still waiting (including a partially sent one)."""
        return len(self._queue) + (1 if self._partial is not None else 0)

    def has_pending(self) -> bool:
        return self._partial is not None or len(self._queue) > 0

    def next_packet_chunks(self) -> List[Chunk]:
        """Chunks for one packet, or an empty list when nothing is pending."""
        budget = self._max_payload
        chunks: List[Chunk] = []

        # Resume an in-flight fragmented message first: its fragments must be
        # consecutive.
        if self._partial is not None:
            msg_id, remaining, first_sent = self._partial
            room = budget - CHUNK_HEADER_BYTES
            flags = 0 if first_sent else FLAG_FIRST
            if len(remaining) <= room:
                flags |= FLAG_LAST
                chunks.append(Chunk(ChunkKind.APP, msg_id, flags, remaining))
                self._partial = None
                budget -= CHUNK_HEADER_BYTES + len(remaining)
            else:
                chunks.append(Chunk(ChunkKind.APP, msg_id, flags, remaining[:room]))
                self._partial = (msg_id, remaining[room:], True)
                return chunks  # packet is full

        queue = self._queue
        while True:
            payload = queue.peek()
            if payload is None:
                break
            need = CHUNK_HEADER_BYTES + len(payload)
            if need <= budget:
                queue.dequeue()
                chunks.append(Chunk(ChunkKind.APP, self._allocate_msg_id(),
                                    FLAG_WHOLE, payload))
                budget -= need
                if not self._enable_packing:
                    break
                continue
            if chunks:
                break  # does not fit the remainder; start the next packet
            # Message alone exceeds a whole packet: begin fragmenting it.
            queue.dequeue()
            msg_id = self._allocate_msg_id()
            room = self._max_payload - CHUNK_HEADER_BYTES
            chunks.append(Chunk(ChunkKind.APP, msg_id,
                                FLAG_FIRST, payload[:room]))
            self._partial = (msg_id, payload[room:], True)
            break
        return chunks

    def next_batch(self, max_packets: int) -> List[List[Chunk]]:
        """Chunk lists for up to ``max_packets`` packets in one call.

        The token-visit coalescing path: everything pending (within the
        caller's flow-control allowance) is drained into consecutive packet
        payloads, which the SRP then broadcasts as one batch frame train.
        Returns an empty list when nothing is pending.
        """
        batch: List[List[Chunk]] = []
        while len(batch) < max_packets:
            chunks = self.next_packet_chunks()
            if not chunks:
                break
            batch.append(chunks)
        return batch

    def digest_state(self) -> Tuple:
        """Canonical state tuple for explorer digests."""
        return ("packer", self._next_msg_id, self._partial)

    def _allocate_msg_id(self) -> int:
        msg_id = self._next_msg_id
        self._next_msg_id = (self._next_msg_id + 1) & 0xFFFFFFFF or 1
        return msg_id


class Reassembler:
    """Rebuilds application messages from chunks, per sending node.

    ``feed`` is called with chunks in delivery (sequence) order; it returns
    the completed payload when a LAST fragment closes a message, else None.
    """

    def __init__(self) -> None:
        self._partial: Dict[Tuple[NodeId, int], List[bytes]] = {}

    def feed(self, sender: NodeId, chunk: Chunk) -> Optional[bytes]:
        flags = chunk.flags
        if flags & FLAG_WHOLE == FLAG_WHOLE:
            return chunk.data  # unfragmented: the common, hot case
        key = (sender, chunk.msg_id)
        if flags & FLAG_FIRST:
            self._partial[key] = [chunk.data]
            return None
        fragments = self._partial.get(key)
        if fragments is None:
            # FIRST fragment was lost to a membership change; drop the tail.
            return None
        fragments.append(chunk.data)
        if flags & FLAG_LAST:
            del self._partial[key]
            return b"".join(fragments)
        return None

    def digest_state(self) -> Tuple:
        """Canonical state tuple for explorer digests."""
        return ("reasm", tuple(
            (key, tuple(fragments))
            for key, fragments in sorted(self._partial.items())))

    def pending_count(self) -> int:
        return len(self._partial)

    def clear(self) -> None:
        """Discard partial messages (on a configuration change)."""
        self._partial.clear()


if _fast.corec is not None:
    class CompiledReassembler(_fast.corec.Reassembler):
        """The C ``feed`` plus the cold Python digest method.

        State is the same ``_partial`` dict, under the same name, as the
        pure :class:`Reassembler` — digests, ``deepcopy`` world-forking and
        the delivery sweeps treat both classes interchangeably.
        """

        __slots__ = ()

        digest_state = Reassembler.digest_state
else:  # pragma: no cover - exercised by the REPRO_PURE CI leg
    CompiledReassembler = None  # type: ignore[assignment,misc]


def make_reassembler() -> Reassembler:
    """A reassembler of the active implementation (see repro.core.accel)."""
    from ..core import accel
    if CompiledReassembler is not None and accel.enabled():
        return CompiledReassembler()  # type: ignore[return-value]
    return Reassembler()
