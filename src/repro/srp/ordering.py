"""The receive buffer: sequence-ordered packet store with gap tracking.

One :class:`ReceiveBuffer` exists per ring incarnation.  It triples as

* the total-order delivery buffer (deliver contiguous sequence numbers),
* the duplicate filter the RRP layer relies on (paper §5, requirement A1),
* the retransmission store (a token-holder answers rtr requests from here).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .. import _fast
from ..types import SeqNum
from ..wire.packets import DataPacket


class ReceiveBuffer:
    """Packets of one ring, indexed by global sequence number.

    ``my_aru`` ("all received up to") is the highest sequence such that every
    packet ``1..my_aru`` is present; ``high_seq`` is the highest sequence
    seen at all.  A gap is any missing sequence in between.
    """

    def __init__(self) -> None:
        self._packets: Dict[SeqNum, DataPacket] = {}
        self._my_aru: SeqNum = 0
        self._high_seq: SeqNum = 0
        #: Lowest sequence still retained (everything below was collected).
        self._gc_floor: SeqNum = 0

    # ----- inspection -----

    @property
    def my_aru(self) -> SeqNum:
        return self._my_aru

    @property
    def high_seq(self) -> SeqNum:
        return self._high_seq

    @property
    def gc_floor(self) -> SeqNum:
        return self._gc_floor

    def __len__(self) -> int:
        return len(self._packets)

    def digest_state(self) -> Tuple:
        """Canonical state tuple for explorer digests (see docs/MODELCHECK.md).

        Packets are rendered via their wire encoding so the digest depends
        only on protocol-visible content, not object identity.
        """
        from ..wire.codec import encode_packet
        return ("rbuf", self._my_aru, self._high_seq, self._gc_floor,
                tuple((seq, encode_packet(self._packets[seq]))
                      for seq in sorted(self._packets)))

    def has(self, seq: SeqNum) -> bool:
        """Whether ``seq`` was ever received (even if since collected)."""
        return seq <= self._gc_floor or seq <= self._my_aru or seq in self._packets

    def get(self, seq: SeqNum) -> Optional[DataPacket]:
        return self._packets.get(seq)

    def missing_up_to(self, upto: SeqNum) -> Iterator[SeqNum]:
        """Sequence numbers in ``(my_aru, upto]`` not present (the gaps)."""
        for seq in range(self._my_aru + 1, upto + 1):
            if seq not in self._packets:
                yield seq

    def has_gaps_up_to(self, upto: SeqNum) -> bool:
        """True when some packet ``<= upto`` is missing.

        This is the ``anyMessagesMissing()`` predicate of the passive
        replication algorithm (paper Figure 4).
        """
        return self._my_aru < upto

    # ----- mutation -----

    def insert(self, packet: DataPacket) -> bool:
        """Store a packet.  Returns False if it was a duplicate.

        This return value implements the SRP sequence-number duplicate
        filter, which also suppresses copies arriving on redundant networks
        (paper §5, requirement A1).
        """
        seq = packet.seq
        if seq <= self._gc_floor or seq in self._packets:
            return False
        self._packets[seq] = packet
        if seq > self._high_seq:
            self._high_seq = seq
        if seq == self._my_aru + 1:
            aru = seq
            while aru + 1 in self._packets:
                aru += 1
            self._my_aru = aru
        return True

    def gc_below(self, seq: SeqNum) -> int:
        """Drop packets with sequence ``<= seq`` (they are stable everywhere).

        Returns the number of packets collected.  Only contiguous, delivered
        prefixes should be collected; the engine guarantees ``seq <= my_aru``.
        """
        seq = min(seq, self._my_aru)
        if seq <= self._gc_floor:
            return 0
        collected = 0
        for s in range(self._gc_floor + 1, seq + 1):
            if self._packets.pop(s, None) is not None:
                collected += 1
        self._gc_floor = seq
        return collected


if _fast.corec is not None:
    class CompiledReceiveBuffer(_fast.corec.ReceiveBuffer):
        """The C store plus the cold Python methods (digests, gap scans).

        The hot operations (``insert``/``has``/``get``/``my_aru``) run in C
        on state held in an ordinary Python dict and three ints, exposed as
        ``_packets``/``_my_aru``/``_high_seq``/``_gc_floor`` — the same
        protocol-visible state, under the same names, as the pure
        :class:`ReceiveBuffer`, so digests, ``deepcopy`` world-forking and
        these cold methods are implementation-agnostic.
        """

        __slots__ = ()

        digest_state = ReceiveBuffer.digest_state
        missing_up_to = ReceiveBuffer.missing_up_to
else:  # pragma: no cover - exercised by the REPRO_PURE CI leg
    CompiledReceiveBuffer = None  # type: ignore[assignment,misc]


def make_receive_buffer() -> ReceiveBuffer:
    """A receive buffer of the active implementation (see repro.core.accel).

    Chosen at construction time: a buffer keeps its implementation for the
    life of its ring incarnation even if the accel mode later flips (both
    delivery sweeps accept either class).
    """
    from ..core import accel
    if CompiledReceiveBuffer is not None and accel.enabled():
        return CompiledReceiveBuffer()  # type: ignore[return-value]
    return ReceiveBuffer()
