"""The Totem Single Ring Protocol (SRP) — the substrate the RRP builds on.

The SRP (paper §2; Amir et al., ACM TOCS 1995) imposes a logical
token-passing ring on the nodes of a broadcast LAN:

* a node broadcasts only while holding the token, which both prevents
  collisions and provides a global sequence number per message,
* the token carries retransmission requests, flow-control state
  (fcc/backlog) and the all-received-up-to (aru) watermark for stability,
* token loss triggers the membership protocol (gather → commit → recovery),
  which installs a new ring and delivers configuration changes with
  extended-virtual-synchrony semantics.

:class:`TotemSrp` is a sans-io engine: it talks to a
:class:`~repro.sim.runtime.Runtime` for time/timers and to a
:class:`RingTransport` (normally the RRP layer) for the wire.
"""

from .engine import RingTransport, SrpStats, SrpState, TotemSrp
from .flow import FlowController
from .ordering import ReceiveBuffer
from .packing import Packer, Reassembler
from .send_queue import SendQueue

__all__ = [
    "TotemSrp",
    "RingTransport",
    "SrpState",
    "SrpStats",
    "SendQueue",
    "Packer",
    "Reassembler",
    "ReceiveBuffer",
    "FlowController",
]
