"""Token-based flow control (paper §2; Totem SRP).

The token carries ``fcc`` — the number of messages broadcast by all nodes
during the last rotation — and ``backlog`` — the sum of senders' queued
messages.  A node may broadcast at most

    min(max_messages_per_token, window_size - (fcc - my last contribution))

messages per visit, so the ring as a whole never exceeds ``window_size``
broadcasts per rotation.  This strict schedule is what lets Totem drive an
Ethernet to ~90 % utilisation without collisions.
"""

from __future__ import annotations

from ..wire.packets import Token


class FlowController:
    """Per-node flow-control state (reset on each new ring)."""

    def __init__(self, window_size: int, max_messages_per_token: int) -> None:
        self.window_size = window_size
        self.max_messages_per_token = max_messages_per_token
        #: Messages this node broadcast on its previous token visit.
        self._prev_sent = 0
        #: Backlog this node reported on its previous visit.
        self._prev_backlog = 0

    def reset(self) -> None:
        self._prev_sent = 0
        self._prev_backlog = 0

    def digest_state(self) -> tuple:
        """Canonical state tuple for explorer digests."""
        return ("flow", self._prev_sent, self._prev_backlog)

    def allowance(self, token: Token) -> int:
        """How many messages this node may broadcast on this visit."""
        others = max(0, token.fcc - self._prev_sent)
        return max(0, min(self.max_messages_per_token,
                          self.window_size - others))

    def update(self, token: Token, sent: int, backlog: int) -> None:
        """Fold this visit's contribution into the token before forwarding."""
        token.fcc = max(0, token.fcc - self._prev_sent) + sent
        token.backlog = max(0, token.backlog - self._prev_backlog) + backlog
        self._prev_sent = sent
        self._prev_backlog = backlog
