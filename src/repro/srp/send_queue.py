"""The application send queue (paper §2).

Messages wait here until the node next holds the token; flow control decides
how many are drained per token visit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import SendQueueFullError


class SendQueue:
    """Bounded FIFO of application payloads awaiting broadcast."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._queue: Deque[bytes] = deque()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    @property
    def full(self) -> bool:
        return len(self._queue) >= self._capacity

    def digest_state(self) -> Tuple:
        """Canonical state tuple for explorer digests."""
        return ("sendq", tuple(self._queue))

    def enqueue(self, payload: bytes) -> None:
        """Append a message; raises :class:`SendQueueFullError` when full."""
        if self.full:
            raise SendQueueFullError(
                f"send queue at capacity ({self._capacity} messages)")
        self._queue.append(payload)
        self._bytes += len(payload)

    def try_enqueue(self, payload: bytes) -> bool:
        """Best-effort enqueue; returns False instead of raising when full."""
        if self.full:
            return False
        self.enqueue(payload)
        return True

    def enqueue_many(self, payloads) -> int:
        """Append messages until the queue fills; returns how many fit.

        The bulk path for workload generators topping up a queue: one
        capacity check and one byte-count update for the whole run instead
        of a method call per message.
        """
        room = self._capacity - len(self._queue)
        if room <= 0:
            return 0
        accepted = payloads[:room] if len(payloads) > room else payloads
        self._queue.extend(accepted)
        self._bytes += sum(map(len, accepted))
        return len(accepted)

    def dequeue(self) -> Optional[bytes]:
        """Pop the oldest message, or None when empty."""
        if not self._queue:
            return None
        payload = self._queue.popleft()
        self._bytes -= len(payload)
        return payload

    def peek(self) -> Optional[bytes]:
        return self._queue[0] if self._queue else None
