"""The Totem Single Ring Protocol engine (paper §2).

:class:`TotemSrp` is a sans-io state machine.  It receives packets and timer
expirations, and emits packets through a :class:`RingTransport` — normally
the Totem RRP layer (:mod:`repro.core`), or a trivial single-network adapter
for the paper's "no replication" baseline.

Responsibilities (all from the Totem SRP, Amir et al. TOCS 1995, as
summarised in §2 of the RRP paper):

* **Total order** — broadcast only while holding the token; stamp each
  packet with the token's global sequence number; deliver in sequence order.
* **Reliability** — gaps detected from sequence numbers; retransmission
  requests ride the token's ``rtr`` list; any holder of a requested packet
  rebroadcasts it (so one retransmission heals all gap-sufferers at once —
  the behaviour §2 notes "simplifies the design of the Totem RRP").
* **Token robustness** — the last token is periodically re-sent until there
  is evidence the successor received it; the ring leader bumps a rotation
  counter so an idle ring's retransmitted token is recognisable (§2
  footnote).
* **Fault detection** — no token for ``token_loss_timeout`` starts the
  membership protocol.
* **Membership** — gather (join-message consensus) → commit (two-pass
  commit token) → recovery (old-ring messages exchanged, encapsulated, on
  the new ring), delivering transitional and regular configuration changes
  with extended-virtual-synchrony semantics.
* **Flow control** — fcc/backlog window (:mod:`repro.srp.flow`).
* **Packing/fragmentation** — (:mod:`repro.srp.packing`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple

from .. import _fast
from ..config import TotemConfig
from ..errors import NotMemberError
from ..sim.runtime import Runtime
from ..types import (
    ConfigurationChange,
    ConfigChangeFn,
    DeliveredMessage,
    DeliverFn,
    Membership,
    NodeId,
    RingId,
    SeqNum,
)
from ..wire.codec import decode_packet, encode_packet
from ..wire.packets import (
    BATCH_MAX_PACKETS,
    BatchPacket,
    CHUNK_HEADER_BYTES,
    Chunk,
    ChunkFlags,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    Token,
    TOKEN_MAX_RTR,
)
from .flow import FlowController
from .ordering import ReceiveBuffer, make_receive_buffer
from .packing import Packer, Reassembler, make_reassembler
from .send_queue import SendQueue


class RingTransport(Protocol):
    """What the SRP needs from the layer below (the RRP or a single LAN)."""

    def broadcast_data(self, packet: DataPacket) -> None: ...

    def broadcast_batch(self, batch: BatchPacket) -> None: ...

    def send_token(self, token: Token, dest: NodeId) -> None: ...

    def broadcast_join(self, join: JoinMessage) -> None: ...

    def send_commit_token(self, token: CommitToken, dest: NodeId) -> None: ...


class SrpState(enum.Enum):
    """Protocol states (operational + the three membership states)."""

    OPERATIONAL = "operational"
    GATHER = "gather"
    COMMIT = "commit"
    RECOVERY = "recovery"


@dataclass
class SrpStats:
    """Counters exposed for tests, monitors and the benchmark harness."""

    msgs_submitted: int = 0
    msgs_delivered: int = 0
    bytes_delivered: int = 0
    packets_broadcast: int = 0
    packets_received: int = 0
    duplicate_packets: int = 0
    tokens_accepted: int = 0
    tokens_sent: int = 0
    duplicate_tokens: int = 0
    token_retransmits: int = 0
    retransmissions_served: int = 0
    retransmission_requests: int = 0
    token_loss_events: int = 0
    gathers_entered: int = 0
    membership_changes: int = 0
    recovery_packets: int = 0
    #: Token rotation timing (interval between successive token acceptances).
    rotation_time_total: float = 0.0
    rotation_time_max: float = 0.0
    rotation_count: int = 0

    @property
    def rotation_time_mean(self) -> float:
        if not self.rotation_count:
            return 0.0
        return self.rotation_time_total / self.rotation_count


class TotemSrp:
    """One node's Totem Single Ring Protocol instance."""

    def __init__(
        self,
        node_id: NodeId,
        config: TotemConfig,
        runtime: Runtime,
        transport: RingTransport,
        on_deliver: Optional[DeliverFn] = None,
        on_config_change: Optional[ConfigChangeFn] = None,
        trace=None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.runtime = runtime
        self.transport = transport
        self.on_deliver: DeliverFn = on_deliver or (lambda message: None)
        self.on_config_change: ConfigChangeFn = on_config_change or (lambda change: None)
        #: Flight-recorder hook: ``trace(event, detail)`` (see repro.trace).
        self.trace = trace or (lambda event, detail="": None)
        #: Optional :class:`repro.check.NodeProbe` observing protocol events.
        self.probe = None
        #: Optional :class:`repro.obs.ClusterObservability` hook (full mode
        #: only; sampled mode reads :attr:`stats` periodically instead).
        self.obs = None

        self.state = SrpState.GATHER
        self.ring_id = RingId(seq=0, representative=node_id)
        self.membership = Membership(self.ring_id, (node_id,))
        self.stats = SrpStats()

        # ----- operational (current ring) state -----
        #: RingId instances known value-equal to :attr:`ring_id` (other
        #: members' copies), memoized by :meth:`_buffer_for_ring`.
        self._ring_aliases: dict = {}
        self.recv_buffer = make_receive_buffer()
        self._delivered_seq: SeqNum = 0
        self._reassembler = make_reassembler()
        self.send_queue = SendQueue(config.send_queue_capacity)
        self._packer = Packer(self.send_queue, config.max_packet_payload,
                              config.enable_packing)
        self._batching = config.enable_batching
        #: Sequence numbers of batched packets posted for apply but not yet
        #: applied — the duplicate filter's view of the in-between moment
        #: when a train has been dispatched but its micro-events are queued.
        #: Keyed by bare seq: posted applies drain before the next heap
        #: event, so the set is only ever non-empty within a single event
        #: window, where all trains carry current-timestamp traffic.  The
        #: worst a ring collision can do is misprice a straggler old-ring
        #: train in the CPU cost model — the apply path re-checks everything.
        self._pending_applies: set = set()
        self._flow = FlowController(config.window_size,
                                    config.max_messages_per_token)
        self._last_token: Optional[Token] = None
        self._last_accepted_stamp: Tuple[int, int] = (-1, -1)
        self._last_token_accept_time: Optional[float] = None
        self._prev_token_aru: SeqNum = 0
        self._stable_seq: SeqNum = 0

        # ----- timers -----
        self._token_retrans_timer = None
        self._token_loss_timer = None
        self._join_resend_timer = None
        self._consensus_timer = None
        self._presence_timer = None

        # ----- gather state -----
        self._proc_set: Set[NodeId] = {node_id}
        self._fail_set: Set[NodeId] = set()
        self._heard: Set[NodeId] = {node_id}
        self._last_join_sets: Dict[NodeId, Tuple[FrozenSet[NodeId], FrozenSet[NodeId]]] = {}
        self._highest_ring_seq: int = 0

        # ----- commit / recovery state -----
        self._commit_token: Optional[CommitToken] = None
        self._commit_stamp_seen: Tuple[int, int] = (-1, -1)
        self._pending_membership: Optional[Membership] = None
        self._old_ring: Optional[RingId] = None
        self._old_membership: Optional[Membership] = None
        self._old_buffer: Optional[ReceiveBuffer] = None
        self._old_delivered: SeqNum = 0
        self._old_reassembler: Optional[Reassembler] = None
        self._recovery_pending: List[DataPacket] = []
        self._recovery_reassembler = make_reassembler()
        #: True once this node voted "done" on the recovery token.  From
        #: that moment other members may complete the installation, so the
        #: new ring may no longer be silently abandoned (EVS safety).
        self._voted_done = False
        #: Highest new-ring sequence whose ENCAPSULATED chunks were absorbed.
        self._recovery_absorbed: SeqNum = 0
        #: Nodes whose joins accused us of failure, with ignore-until times.
        self._quarantine: Dict[NodeId, float] = {}
        self._started = False
        #: Set by :meth:`stop`; posted batch applies check it because they
        #: run *after* the event that posted them — an incarnation can die
        #: between a batch frame's arrival and its applies (the lifecycle
        #: class `repro.check explore` found in the engine layer).
        self._stopped = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def start(self, initial_members: Optional[Sequence[NodeId]] = None) -> None:
        """Bring the node up.

        With ``initial_members`` the ring is pre-installed (the usual way to
        boot a whole simulated cluster at once; the representative injects
        the first token).  Without it the node boots as a singleton and
        discovers peers through the membership protocol.
        """
        if self._started:
            return
        self._started = True
        if initial_members is None:
            self._enter_gather("boot")
            return
        members = tuple(sorted(initial_members))
        if self.node_id not in members:
            raise NotMemberError(
                f"node {self.node_id} not in initial membership {members}")
        ring = RingId(seq=4, representative=min(members))
        self._install_ring(ring, members)
        if self.node_id == ring.representative:
            token = Token(ring_id=ring, aru_id=ring.representative)
            self._last_token = token
            # Inject the first token as if received from the predecessor.
            self.runtime.set_timer(0.0, self.on_token, token, 0)
        self._restart_token_loss_timer()

    def stop(self) -> None:
        """Tear the engine down: cancel every timer.

        Used when a node's incarnation is abandoned (crash + restart).  No
        further events can reach a stopped engine — its network attachments
        are gone and all self-rescheduling timers are cancelled here.
        """
        self._stopped = True
        self._cancel_token_retrans_timer()
        self._cancel_token_loss_timer()
        self._cancel_membership_timers()
        if self._presence_timer is not None:
            self._presence_timer.cancel()
            self._presence_timer = None

    def ring_seq_watermark(self) -> int:
        """Ring-sequence high-water mark this incarnation has witnessed.

        Totem requires ring ids to be monotonic; a real deployment keeps
        this value on stable storage so a restarted process never forms a
        ring whose id collides with one its previous incarnation was part
        of.  :meth:`SimCluster.restart_node` carries it across incarnations.
        """
        return max(self._highest_ring_seq, self.ring_id.seq)

    def resume_ring_seq(self, watermark: int) -> None:
        """Restore the stable-storage ring-seq watermark after a restart."""
        self._highest_ring_seq = max(self._highest_ring_seq, int(watermark))

    # ------------------------------------------------------------------
    # explorer digests (repro.check explore)
    # ------------------------------------------------------------------

    def _timer_digest(self, timer) -> Optional[float]:
        """A pending timer as a relative deadline (None when unset)."""
        if timer is None or not timer.active:
            return None
        return round(timer.when - self.runtime.now(), 9)

    def digest_state(self) -> Tuple:
        """Canonical tuple of all protocol-visible state.

        Two engines with equal digests behave identically on every future
        input; ``repro.check explore`` keys its visited-state set on this
        (see docs/MODELCHECK.md).  Statistics counters, trace/probe hooks
        and rotation timing are excluded — they never feed back into a
        protocol decision.  Absolute times appear only as deadlines
        relative to "now", so states reached at different virtual times
        can still coincide.  Packets are rendered through the wire codec,
        which sorts every set it encodes.
        """
        now = self.runtime.now()

        def ring(r: Optional[RingId]) -> Optional[Tuple[int, NodeId]]:
            return None if r is None else (r.seq, r.representative)

        def members(m: Optional[Membership]) -> Optional[Tuple]:
            return None if m is None else (ring(m.ring_id), tuple(m.members))

        def packet(p) -> Optional[bytes]:
            return None if p is None else encode_packet(p)

        def buffer(b: Optional[ReceiveBuffer]) -> Optional[Tuple]:
            return None if b is None else b.digest_state()

        return (
            "srp", self.node_id, self.state.value, self._started,
            ring(self.ring_id), members(self.membership),
            # operational (current ring)
            buffer(self.recv_buffer), self._delivered_seq,
            self._reassembler.digest_state(),
            self.send_queue.digest_state(), self._packer.digest_state(),
            self._flow.digest_state(),
            packet(self._last_token), self._last_accepted_stamp,
            self._prev_token_aru, self._stable_seq,
            # timers (relative deadlines)
            self._timer_digest(self._token_retrans_timer),
            self._timer_digest(self._token_loss_timer),
            self._timer_digest(self._join_resend_timer),
            self._timer_digest(self._consensus_timer),
            self._timer_digest(self._presence_timer),
            # gather
            tuple(sorted(self._proc_set)), tuple(sorted(self._fail_set)),
            tuple(sorted(self._heard)),
            tuple((n, tuple(sorted(ps)), tuple(sorted(fs)))
                  for n, (ps, fs) in sorted(self._last_join_sets.items())),
            self._highest_ring_seq,
            # commit / recovery
            packet(self._commit_token), self._commit_stamp_seen,
            members(self._pending_membership),
            ring(self._old_ring), members(self._old_membership),
            buffer(self._old_buffer), self._old_delivered,
            None if self._old_reassembler is None
            else self._old_reassembler.digest_state(),
            tuple(encode_packet(p) for p in self._recovery_pending),
            self._recovery_reassembler.digest_state(),
            self._voted_done, self._recovery_absorbed,
            # expired quarantine entries are behaviourally inert
            tuple((n, round(t - now, 9))
                  for n, t in sorted(self._quarantine.items()) if t > now),
        )

    def submit(self, payload: bytes) -> None:
        """Queue an application message for totally ordered broadcast."""
        self.send_queue.enqueue(bytes(payload))
        self.stats.msgs_submitted += 1

    def try_submit(self, payload: bytes) -> bool:
        """Like :meth:`submit` but returns False instead of raising when full."""
        if not self.send_queue.try_enqueue(bytes(payload)):
            return False
        self.stats.msgs_submitted += 1
        return True

    def submit_many(self, payloads: Sequence[bytes]) -> int:
        """Queue messages in bulk; returns how many fit before the queue
        filled.  Payloads must already be ``bytes`` (no defensive copy —
        this is the saturating-workload refill path)."""
        accepted = self.send_queue.enqueue_many(payloads)
        self.stats.msgs_submitted += accepted
        return accepted

    @property
    def send_queue_depth(self) -> int:
        """Messages waiting for the token (the obs layer samples this)."""
        return len(self.send_queue)

    @property
    def my_aru(self) -> SeqNum:
        """All-received-up-to on the current ring (used by passive RRP)."""
        return self.recv_buffer.my_aru

    @property
    def stable_seq(self) -> SeqNum:
        """Highest sequence known received by every member (safe watermark)."""
        return self._stable_seq

    def has_gaps_up_to(self, seq: SeqNum) -> bool:
        """``anyMessagesMissing()`` of the paper's Figure 4."""
        return self.recv_buffer.has_gaps_up_to(seq)

    def is_duplicate_data(self, packet: DataPacket) -> bool:
        """Whether ``packet`` would be discarded as already-received.

        Used by the CPU cost model: duplicates are dropped early and cost
        less than a full protocol-stack traversal.
        """
        buffer = self._buffer_for_ring(packet.ring_id)
        return buffer is not None and buffer.has(packet.seq)

    def is_duplicate_batch(self, batch: BatchPacket) -> bool:
        """Whether every packet of ``batch`` would be discarded as received.

        The CPU cost model's batch analogue of :meth:`is_duplicate_data`:
        a redundant-network copy of a batch whose packets all landed
        already is dropped after the sequence checks, without ordering or
        delivery work.
        """
        fast = _fast.engine_is_duplicate_batch
        if fast is not None:
            # Current-ring batches (the common case) resolve in C; old-ring
            # or foreign traffic returns NotImplemented and falls through.
            verdict = fast(self, batch)
            if verdict is not NotImplemented:
                return verdict
        buffer = self._buffer_for_ring(batch.ring_id)
        if buffer is None:
            return False
        has = buffer.has
        pending = self._pending_applies
        for packet in batch.packets:
            # A packet counts as seen once it is buffered *or* queued for
            # apply: copies of one train arrive on the redundant networks
            # within the same timestamp, before the first copy's posted
            # applies have run.
            if not has(packet.seq) and packet.seq not in pending:
                return False
        return True

    # ------------------------------------------------------------------
    # receive entry points (called by the RRP layer below)
    # ------------------------------------------------------------------

    def on_data(self, packet: DataPacket, network: int = 0,
                deliver: bool = True) -> None:
        """A data packet arrived (possibly a duplicate or a retransmission).

        ``deliver=False`` skips the delivery attempt after a successful
        insert (everything else — duplicate filter, token-retransmit
        evidence, recovery absorption — is unchanged); the batch apply path
        uses it to run one delivery pass per frame train instead of one per
        packet.  Delivery is always in sequence order from the contiguous
        front, so coalescing the passes cannot change the delivery log.
        """
        self.stats.packets_received += 1
        buffer = self._buffer_for_ring(packet.ring_id)
        if buffer is None:
            # Traffic from a ring we are not on.  If its sender is not a
            # member of our ring, another ring is alive on these networks:
            # start the membership protocol to merge (Totem SRP's "foreign
            # message" rule).  Idle rings exchange no broadcasts, so merge
            # detection rides on data traffic.
            if (self.state is SrpState.OPERATIONAL
                    and packet.sender not in self.membership):
                self._enter_gather(f"foreign message from {packet.sender}")
            return
        if not buffer.insert(packet):
            self.stats.duplicate_packets += 1
            return
        if buffer is self.recv_buffer:
            if (self._last_token is not None
                    and packet.seq > self._last_token.seq):
                # Evidence the successor received our token (paper §2).
                self._cancel_token_retrans_timer()
            if self.state is SrpState.RECOVERY:
                self._absorb_recovery_progress()
            elif deliver:
                self._try_deliver()
        else:
            # A straggler for the previous ring while we are re-forming:
            # keep it (it reduces recovery work) and deliver what it unblocks.
            if deliver and self.state is not SrpState.RECOVERY:
                self._try_deliver()

    def on_batch(self, batch: BatchPacket, network: int = 0) -> None:
        """A batch frame arrived: unpack it into per-packet applies.

        Each carried packet goes through the ordinary :meth:`on_data` path —
        same duplicate filter, retransmit-evidence check, delivery loop and
        statistics — so batched and unbatched operation produce identical
        delivery logs.  The applies are posted as individual micro-events
        rather than run inline: the scheduler dispatches the train through
        its vectorized same-timestamp queue, keeping one (cheap) event per
        packet instead of one heavyweight event per batch.  The whole vector
        is handed over in a single ``drain_now`` call, which enqueues
        entries byte-identical to one ``post`` per packet — dispatch order,
        event accounting and the explorer's view are unchanged.
        """
        fast = _fast.engine_on_batch
        if fast is not None:
            # Compiled twin of the loop below: same posted entries (the
            # callbacks are this engine's bound methods either way), same
            # dedup against _pending_applies, one drain_now call.
            fast(self, batch, network)
            return
        apply_one = self._apply_batched_packet
        pending = self._pending_applies
        ready = []
        append = ready.append
        for packet in batch.packets:
            seq = packet.seq
            if seq in pending:
                # An identical copy is already queued for apply (a redundant
                # network's train dispatched within the same callback);
                # within one ring, seq names the packet's content, so
                # re-posting would only duplicate the apply.
                continue
            pending.add(seq)
            append((apply_one, (packet, network)))
        if ready:
            append((self._deliver_after_batch, ()))
            self.runtime.drain_now(ready)

    def _apply_batched_packet(self, packet: DataPacket, network: int) -> None:
        fast = _fast.engine_apply_batched
        if fast is not None:
            # Compiled twin of the body below (current-ring fast path in C,
            # everything rare bails back to on_data).
            fast(self, packet, network)
            return
        self._pending_applies.discard(packet.seq)
        if self._stopped:
            # The incarnation was stopped between the batch frame's arrival
            # and this posted apply: a dead process must not touch buffers
            # or re-arm timers.
            return
        self.on_data(packet, network, deliver=False)

    def _deliver_after_batch(self) -> None:
        """Posted behind a train's applies: one delivery pass for all of it."""
        if self._stopped:
            return
        if self.state is not SrpState.RECOVERY:
            self._try_deliver()

    def on_token(self, token: Token, network: int = 0) -> None:
        """The regular token arrived (the RRP has already merged copies).

        ``network`` identifies the network the (final) token copy arrived
        on, or :data:`~repro.types.TIMEOUT_NETWORK` when the RRP released
        the token on a timer expiry; it is observability-only and must never
        be used to index per-network state.

        A token visit is a fixed pipeline of named, individually drivable
        stages (each takes the working token copy and mutates it/engine
        state; unit tests and the model checker can run one at a time):

        1. :meth:`stage_token_receive` — filter, dedup, bookkeep, copy;
        2. :meth:`stage_retransmit_serve` — rebroadcast requested packets;
        3. :meth:`stage_aru_update` — fold my aru into the token;
        4. :meth:`stage_retransmit_request` — append my gaps to ``rtr``;
        5. :meth:`_recovery_token_step` — (RECOVERY only) old-ring exchange;
        6. :meth:`stage_dequeue_pack` — drain the send queue under flow
           control, broadcasting new packets (batched when enabled) and
           delivering what they unblock;
        7. :meth:`stage_stability_update` — advance the stable watermark;
        8. :meth:`stage_token_forward` — send to the successor, arm timers.
        """
        token = self.stage_token_receive(token, network)
        if token is None:
            return
        self.stage_retransmit_serve(token)
        self.stage_aru_update(token)
        self.stage_retransmit_request(token)
        if self.state is SrpState.RECOVERY:
            self._recovery_token_step(token)
        if self.state is not SrpState.RECOVERY:
            # OPERATIONAL — possibly just transitioned by the recovery step.
            self.stage_dequeue_pack(token)
            if token.done_count < 2 * len(self.membership):
                token.done_count += 1
        self.stage_stability_update(token)
        if self.node_id == self.ring_id.representative:
            token.rotation += 1
        self.stage_token_forward(token)

    def stage_token_receive(self, token: Token,
                            network: int = 0) -> Optional[Token]:
        """Token-receive stage: accept or reject the arriving token.

        Applies the ring/state filters and the duplicate-stamp check,
        records rotation timing, cancels the retransmit/loss timers, and
        returns a private working copy for the rest of the pipeline —
        or None when the token is rejected (foreign ring, membership in
        progress, or a stamp we already accepted).
        """
        if self.probe is not None:
            self.probe.srp_token_up(token, network)
        if token.ring_id != self.ring_id:
            return None
        if self.state not in (SrpState.OPERATIONAL, SrpState.RECOVERY):
            return None
        stamp = token.stamp
        if stamp <= self._last_accepted_stamp:
            self.stats.duplicate_tokens += 1
            return None
        self._last_accepted_stamp = stamp
        self.stats.tokens_accepted += 1
        if self.probe is not None:
            self.probe.srp_token_accepted(token, network)
        now = self.runtime.now()
        if self._last_token_accept_time is not None:
            rotation = now - self._last_token_accept_time
            self.stats.rotation_time_total += rotation
            self.stats.rotation_count += 1
            if rotation > self.stats.rotation_time_max:
                self.stats.rotation_time_max = rotation
            if self.obs is not None:
                self.obs.srp_rotation(self.node_id, rotation)
        self._last_token_accept_time = now
        self._cancel_token_retrans_timer()
        self._cancel_token_loss_timer()
        return token.copy()

    def on_join(self, join: JoinMessage, network: int = 0) -> None:
        """A membership join message arrived."""
        self._highest_ring_seq = max(self._highest_ring_seq, join.ring_seq)
        accuses_me = self.node_id in join.fail_set
        now = self.runtime.now()
        if accuses_me:
            # A node that cannot hear us cannot be on a ring with us until
            # it heals; quarantine it so its gather restarts (whose fresh,
            # briefly accusation-free joins look innocent) neither thrash
            # an operational ring nor vote in a gather.
            self._quarantine[join.sender] = (
                now + self.config.rejoin_quarantine)
        if self.state is SrpState.OPERATIONAL:
            stale = (join.sender in self.membership
                     and join.proc_set == frozenset(self.membership.members)
                     and join.ring_seq < self.ring_id.seq)
            if stale:
                return
            if join.sender not in self.membership:
                if accuses_me:
                    return
                if self._quarantine.get(join.sender, 0.0) > now:
                    return
            self._enter_gather(f"join from {join.sender}")
        elif self.state in (SrpState.COMMIT, SrpState.RECOVERY):
            commit = self._commit_token
            pending_seq = commit.ring_id.seq if commit else self.ring_id.seq
            pending_members = commit.members if commit else ()
            if accuses_me:
                if join.sender not in pending_members:
                    return
                # A member of the ring being formed cannot hear us: that
                # ring can never complete — abandon it and re-gather with
                # the accusation applied below.
                self._enter_gather(
                    f"accusation from {join.sender} during {self.state.value}")
            elif join.ring_seq >= pending_seq:
                self._enter_gather(f"join from {join.sender} during {self.state.value}")
            else:
                return
        # GATHER (possibly just entered).
        if accuses_me:
            # Mutual accusation (as in Totem/corosync): the sender claims it
            # cannot hear us, so from our side *it* is the faulty one.  Do
            # not adopt its other accusations — a deaf node fails everyone.
            self._proc_set |= join.proc_set
            if join.sender not in self._fail_set:
                self._fail_set.add(join.sender)
                self._heard.discard(join.sender)
                self._last_join_sets.pop(join.sender, None)
                self._broadcast_join()
                self._check_consensus()
            return
        if self._quarantine.get(join.sender, 0.0) > now:
            # Recently accused us of failure; until the quarantine expires
            # its votes are not trustworthy (it may still be deaf).
            return
        # Normal merge: the sender is heard, so it cannot be failed, and
        # accusations against nodes we ourselves hear are not adopted.
        self._heard.add(join.sender)
        self._fail_set.discard(join.sender)
        adopted_fail = join.fail_set - {self.node_id} - self._heard
        grew = not (join.proc_set <= self._proc_set
                    and adopted_fail <= self._fail_set)
        self._proc_set |= join.proc_set
        self._fail_set |= adopted_fail
        self._last_join_sets[join.sender] = (join.proc_set, join.fail_set)
        if grew:
            self._broadcast_join()
        self._check_consensus()

    def on_commit_token(self, commit: CommitToken, network: int = 0) -> None:
        """A membership commit token arrived."""
        if self.node_id not in commit.members:
            return
        if commit.ring_id.seq < self.ring_id.seq:
            return
        if commit.ring_id.seq == self.ring_id.seq and self.state is SrpState.OPERATIONAL:
            return
        stamp = (commit.ring_id.seq, commit.rotation)
        if stamp <= self._commit_stamp_seen:
            return  # retransmission
        self._commit_stamp_seen = stamp
        self._highest_ring_seq = max(self._highest_ring_seq, commit.ring_id.seq)
        commit = commit.copy()
        self._cancel_membership_timers()
        self._cancel_token_loss_timer()

        is_representative = commit.ring_id.representative == self.node_id
        if commit.rotation == 0:
            if is_representative:
                # First pass complete: every member's info collected.
                commit.rotation = 1
                self._prepare_recovery(commit)
                self._forward_commit_token(commit)
            else:
                commit.info[self.node_id] = self._my_member_info()
                self.state = SrpState.COMMIT
                self._commit_token = commit
                self._forward_commit_token(commit)
        elif commit.rotation == 1:
            if is_representative:
                if (self._pending_membership is None
                        or self.ring_id != commit.ring_id):
                    # We never saw the first pass return (possible after a
                    # local re-gather raced a retransmission); the token
                    # carries the full picture, so prepare from it.
                    self._prepare_recovery(commit)
                # Second pass complete: start the new ring's regular token.
                token = Token(ring_id=commit.ring_id,
                              aru_id=commit.ring_id.representative)
                self._last_token = token
                self.stats.tokens_sent += 1
                self.transport.send_token(
                    token, self._pending_successor())
                self._restart_token_retrans_timer()
                self._restart_token_loss_timer()
            else:
                self._prepare_recovery(commit)
                self._forward_commit_token(commit)

    # ------------------------------------------------------------------
    # operational internals
    # ------------------------------------------------------------------

    def _buffer_for_ring(self, ring_id: RingId) -> Optional[ReceiveBuffer]:
        # Identity first: every member stamps outgoing packets with its own
        # RingId instance, so value-equal copies of the current ring arrive
        # under a handful of distinct identities (one per member).  Each is
        # memoized on its first field comparison, turning the per-packet
        # dataclass ``==`` into a single dict probe (the memo holds the
        # objects themselves, so their ids cannot be recycled).
        my_ring = self.ring_id
        if ring_id is my_ring or id(ring_id) in self._ring_aliases:
            return self.recv_buffer
        if ring_id == my_ring:
            self._ring_aliases[id(ring_id)] = ring_id
            return self.recv_buffer
        old_ring = self._old_ring
        if old_ring is not None and (ring_id is old_ring or ring_id == old_ring):
            return self._old_buffer
        return None

    def stage_retransmit_serve(self, token: Token) -> None:
        """Rebroadcast requested packets we hold; drop served/stale requests.

        Retransmissions always travel as plain data frames (never batched):
        they heal gaps, and per-frame loss granularity matters there.
        """
        if not token.rtr:
            return
        remaining: List[SeqNum] = []
        for seq in token.rtr:
            packet = self.recv_buffer.get(seq)
            if packet is not None:
                self.transport.broadcast_data(packet)
                self.stats.retransmissions_served += 1
            elif seq <= self._stable_seq or seq <= self.recv_buffer.gc_floor:
                continue  # already stable everywhere; request is moot
            else:
                remaining.append(seq)
        token.rtr = remaining

    def stage_aru_update(self, token: Token) -> None:
        """Fold my all-received-up-to into the token's aru consensus."""
        my_aru = self.recv_buffer.my_aru
        if my_aru < token.aru:
            token.aru = my_aru
            token.aru_id = self.node_id
        elif token.aru_id == self.node_id:
            token.aru = my_aru
        if token.aru > token.seq:
            token.aru = token.seq

    def stage_retransmit_request(self, token: Token) -> None:
        """Append my sequence gaps to the token's retransmission list."""
        if not self.recv_buffer.has_gaps_up_to(token.seq):
            return
        present = set(token.rtr)
        for seq in self.recv_buffer.missing_up_to(token.seq):
            if len(token.rtr) >= TOKEN_MAX_RTR:
                break
            if seq not in present:
                token.rtr.append(seq)
                present.add(seq)
                self.stats.retransmission_requests += 1
                if self.probe is not None:
                    self.probe.retransmission_requested(self.ring_id, seq)

    def stage_dequeue_pack(self, token: Token) -> None:
        """Dequeue/pack stage: drain the send queue under flow control.

        Every packet is stamped from the token's sequence counter and
        self-inserted before broadcast.  With batching enabled the visit's
        packets leave as one :class:`BatchPacket` frame train (a single
        transport call and one CPU send per network); a single packet —
        and all unbatched operation — takes the plain per-frame path, so
        the latency profile of light traffic is unchanged.
        """
        allowance = self._flow.allowance(token)
        if self._batching and allowance > 1:
            sent = self._broadcast_batched(token, allowance)
        else:
            sent = self._broadcast_singles(token, allowance)
        self._flow.update(token, sent, backlog=self._packer.backlog())
        if sent:
            self._try_deliver()

    def _broadcast_singles(self, token: Token, allowance: int) -> int:
        sent = 0
        while sent < allowance:
            chunks = self._packer.next_packet_chunks()
            if not chunks:
                break
            token.seq += 1
            packet = DataPacket(sender=self.node_id, ring_id=self.ring_id,
                                seq=token.seq, chunks=tuple(chunks))
            self.recv_buffer.insert(packet)
            self.transport.broadcast_data(packet)
            self.stats.packets_broadcast += 1
            sent += 1
        return sent

    def _broadcast_batched(self, token: Token, allowance: int) -> int:
        fast = _fast.engine_broadcast_batched
        if fast is not None:
            # Compiled twin of the body below: C packer drain, packet
            # construction (with the wire-size cache precomputed) and
            # self-insert; the transport call and flow control stay here.
            return fast(self, token, allowance)
        chunk_lists = self._packer.next_batch(
            allowance if allowance < BATCH_MAX_PACKETS else BATCH_MAX_PACKETS)
        if not chunk_lists:
            return 0
        node_id = self.node_id
        ring_id = self.ring_id
        seq = token.seq
        insert = self.recv_buffer.insert
        packets = []
        for chunks in chunk_lists:
            seq += 1
            packet = DataPacket(sender=node_id, ring_id=ring_id, seq=seq,
                                chunks=tuple(chunks))
            insert(packet)
            packets.append(packet)
        token.seq = seq
        self.stats.packets_broadcast += len(packets)
        if len(packets) == 1:
            self.transport.broadcast_data(packets[0])
        else:
            self.transport.broadcast_batch(BatchPacket(packets=tuple(packets)))
        return len(packets)

    def stage_stability_update(self, token: Token) -> None:
        """Advance the stable watermark from two rotations of aru values."""
        stable = min(self._prev_token_aru, token.aru)
        if stable > self._stable_seq:
            self._stable_seq = stable
            if self.config.safe_delivery:
                self._try_deliver()
            # Collect only what is both stable everywhere AND already
            # delivered here.  During recovery delivery is deferred until
            # the configuration change, so nothing may be collected yet.
            self.recv_buffer.gc_below(
                min(self._stable_seq, self._delivered_seq))
        self._prev_token_aru = token.aru

    def stage_token_forward(self, token: Token) -> None:
        """Send the updated token to the successor and re-arm the timers."""
        self._last_token = token
        dest = self._current_successor()
        self.stats.tokens_sent += 1
        self.transport.send_token(token, dest)
        self._restart_token_retrans_timer()
        self._restart_token_loss_timer()

    def stage_deliver(self) -> None:
        """Deliver stage: hand contiguous packets up to the application.

        Thin named wrapper over :meth:`_try_deliver` (which stays the
        internal entry point so existing instrumentation — e.g. the
        explorer's eager-delivery mutation — keeps patching one place).
        """
        self._try_deliver()

    def _try_deliver(self) -> None:
        """Deliver contiguous packets (agreed order; safe order if configured)."""
        fast = _fast.engine_try_deliver
        if fast is not None:
            # Compiled twin of the sweep below.  The indirection lives
            # *inside* the method so instrumentation that patches
            # ``_try_deliver`` (e.g. the explorer's eager-delivery
            # mutation) replaces both implementations at once.
            fast(self)
            return
        limit = (self._stable_seq if self.config.safe_delivery
                 else self.recv_buffer.my_aru)
        while self._delivered_seq < limit:
            seq = self._delivered_seq + 1
            packet = self.recv_buffer.get(seq)
            if packet is None:
                break
            self._delivered_seq = seq
            self._deliver_packet_chunks(packet, self._reassembler,
                                        safe=seq <= self._stable_seq,
                                        config_id=self.ring_id)

    def _deliver_packet_chunks(self, packet: DataPacket,
                               reassembler: Reassembler, safe: bool,
                               config_id: Optional[RingId] = None) -> None:
        sender = packet.sender
        seq = packet.seq
        ring_id = packet.ring_id
        delivered_in = config_id or ring_id
        app_kind = ChunkKind.APP
        feed = reassembler.feed
        stats = self.stats
        on_deliver = self.on_deliver
        for chunk in packet.chunks:
            if chunk.kind is not app_kind:
                continue  # recovery chunks were absorbed on receipt
            payload = feed(sender, chunk)
            if payload is None:
                continue
            stats.msgs_delivered += 1
            stats.bytes_delivered += len(payload)
            on_deliver(DeliveredMessage(
                sender, seq, payload, ring_id, safe, delivered_in))

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _restart_token_retrans_timer(self) -> None:
        self._cancel_token_retrans_timer()
        self._token_retrans_timer = self.runtime.set_timer(
            self.config.token_retransmit_interval, self._on_token_retrans_timeout)

    def _cancel_token_retrans_timer(self) -> None:
        if self._token_retrans_timer is not None:
            self._token_retrans_timer.cancel()
            self._token_retrans_timer = None

    def _on_token_retrans_timeout(self) -> None:
        self._token_retrans_timer = None
        if self.state not in (SrpState.OPERATIONAL, SrpState.RECOVERY):
            return
        if self._last_token is None:
            return
        self.stats.token_retransmits += 1
        self.transport.send_token(self._last_token,
                                  self._current_successor())
        self._restart_token_retrans_timer()

    def _restart_token_loss_timer(self) -> None:
        self._cancel_token_loss_timer()
        self._token_loss_timer = self.runtime.set_timer(
            self.config.token_loss_timeout, self._on_token_loss)

    def _cancel_token_loss_timer(self) -> None:
        if self._token_loss_timer is not None:
            self._token_loss_timer.cancel()
            self._token_loss_timer = None

    def _on_token_loss(self) -> None:
        self._token_loss_timer = None
        self.stats.token_loss_events += 1
        if self.obs is not None:
            self.obs.srp_token_loss(self.node_id, self.state.value)
        self.trace("token-loss",
                   f"no token for {self.config.token_loss_timeout}s "
                   f"in state {self.state.value}")
        self._enter_gather("token loss")

    def _cancel_membership_timers(self) -> None:
        if self._join_resend_timer is not None:
            self._join_resend_timer.cancel()
            self._join_resend_timer = None
        if self._consensus_timer is not None:
            self._consensus_timer.cancel()
            self._consensus_timer = None

    # ------------------------------------------------------------------
    # presence beacons (merge liveness for idle rings)
    # ------------------------------------------------------------------

    def _schedule_presence_beacon(self) -> None:
        if self._presence_timer is not None:
            self._presence_timer.cancel()
            self._presence_timer = None
        if self.config.presence_interval <= 0:
            return
        self._presence_timer = self.runtime.set_timer(
            self.config.presence_interval, self._on_presence_beacon)

    def _on_presence_beacon(self) -> None:
        self._presence_timer = None
        if (self.state is not SrpState.OPERATIONAL
                or self.node_id != self.ring_id.representative):
            return
        # A join one sequence below the current ring: our own members filter
        # it as stale; nodes of any *other* ring see a foreign join and
        # start the membership protocol, which is exactly the point.
        beacon = JoinMessage(
            sender=self.node_id,
            proc_set=frozenset(self.membership.members),
            fail_set=frozenset(),
            ring_seq=max(0, self.ring_id.seq - 1))
        self.transport.broadcast_join(beacon)
        self._schedule_presence_beacon()

    def _current_successor(self) -> NodeId:
        if self.state is SrpState.RECOVERY and self._pending_membership:
            return self._pending_membership.successor_of(self.node_id)
        return self.membership.successor_of(self.node_id)

    def _pending_successor(self) -> NodeId:
        assert self._pending_membership is not None
        return self._pending_membership.successor_of(self.node_id)

    # ------------------------------------------------------------------
    # membership: gather
    # ------------------------------------------------------------------

    def _enter_gather(self, reason: str) -> None:
        if (self.state is SrpState.RECOVERY and self._voted_done
                and self._pending_membership is not None):
            # We voted "done" on the recovery token, so other members may
            # already have installed the new ring and delivered in it.
            # Abandoning it now would silently drop messages they delivered
            # (an extended-virtual-synchrony violation); we hold the same
            # data, so complete the installation first, then re-gather.
            # (Conversely, if we never voted done, the done-count can never
            # have completed a full rotation and nobody installed.)
            self.trace("recovery", "completing voted-done recovery before gather")
            self._complete_recovery()
        self.stats.gathers_entered += 1
        self.trace("gather", reason)
        self._cancel_token_retrans_timer()
        self._cancel_token_loss_timer()
        self._cancel_membership_timers()
        # Let the replication layer re-probe networks it marked faulty:
        # membership traffic needs every path that might still work.
        trouble_hook = getattr(self.transport, "on_membership_trouble", None)
        if trouble_hook is not None:
            trouble_hook()
        base: Set[NodeId] = {self.node_id} | set(self.membership.members)
        if self._pending_membership is not None:
            base |= set(self._pending_membership.members)
        if self.state is SrpState.GATHER:
            base |= self._proc_set
        self.state = SrpState.GATHER
        self._proc_set = base
        self._fail_set = set()
        self._heard = {self.node_id}
        self._last_join_sets = {}
        self._broadcast_join()
        self._join_resend_timer = self.runtime.set_timer(
            self.config.join_timeout, self._on_join_resend)
        self._consensus_timer = self.runtime.set_timer(
            self.config.consensus_timeout, self._on_consensus_timeout)

    def _broadcast_join(self) -> None:
        join = JoinMessage(
            sender=self.node_id,
            proc_set=frozenset(self._proc_set),
            fail_set=frozenset(self._fail_set),
            ring_seq=max(self.ring_id.seq, self._highest_ring_seq))
        self.transport.broadcast_join(join)

    def _on_join_resend(self) -> None:
        self._join_resend_timer = None
        if self.state is not SrpState.GATHER:
            return
        self._broadcast_join()
        self._join_resend_timer = self.runtime.set_timer(
            self.config.join_timeout, self._on_join_resend)

    def _on_consensus_timeout(self) -> None:
        self._consensus_timer = None
        if self.state is not SrpState.GATHER:
            return
        silent = self._proc_set - self._heard - {self.node_id}
        if silent:
            self._fail_set |= silent
            self._broadcast_join()
        # Heard-set is a sliding window: members must re-join every period
        # (joins are resent every join_timeout) or be declared failed next
        # time round.  This is also what detects a representative that died
        # after consensus but before sending the commit token.
        self._heard = {self.node_id}
        self._check_consensus()
        self._consensus_timer = self.runtime.set_timer(
            self.config.consensus_timeout, self._on_consensus_timeout)

    def _check_consensus(self) -> None:
        if self.state is not SrpState.GATHER:
            return
        candidates = self._proc_set - self._fail_set
        if self.node_id not in candidates:
            candidates = candidates | {self.node_id}
        my_view = (frozenset(self._proc_set), frozenset(self._fail_set))
        for node in candidates:
            if node == self.node_id:
                continue
            if self._last_join_sets.get(node) != my_view:
                return
        if self.node_id == min(candidates):
            self._form_ring(candidates)

    def _form_ring(self, members: Set[NodeId]) -> None:
        """We are the representative: issue the commit token (first pass)."""
        self.trace("form-ring", f"consensus on {sorted(members)}")
        self._cancel_membership_timers()
        new_seq = max(self._highest_ring_seq, self.ring_id.seq) + 4
        ring = RingId(seq=new_seq, representative=self.node_id)
        commit = CommitToken(ring_id=ring, members=tuple(sorted(members)),
                             info={self.node_id: self._my_member_info()},
                             rotation=0)
        self.state = SrpState.COMMIT
        self._commit_token = commit
        # The commit token will come back to us at rotation 0; accept it.
        self._commit_stamp_seen = (ring.seq, -1)
        self._forward_commit_token(commit)

    def _my_member_info(self) -> MemberInfo:
        if self._old_buffer is not None and self._old_ring is not None:
            # A previous recovery attempt failed; report the original ring.
            return MemberInfo(old_ring_id=self._old_ring,
                              my_aru=self._old_buffer.my_aru,
                              high_seq=self._old_buffer.high_seq)
        return MemberInfo(old_ring_id=self.ring_id,
                          my_aru=self.recv_buffer.my_aru,
                          high_seq=self.recv_buffer.high_seq)

    def _forward_commit_token(self, commit: CommitToken) -> None:
        dest = commit.successor_of(self.node_id)
        self.transport.send_commit_token(commit, dest)
        self._restart_token_loss_timer()

    # ------------------------------------------------------------------
    # membership: recovery
    # ------------------------------------------------------------------

    def _prepare_recovery(self, commit: CommitToken) -> None:
        """Rotation-1 commit token: install new-ring context, plan recovery."""
        self._commit_token = commit
        new_members = Membership(commit.ring_id, commit.members)

        if self._old_buffer is None:
            # First attempt since we were last operational: the current
            # ring becomes the "old ring" whose messages need recovering.
            self._old_ring = self.ring_id
            self._old_membership = self.membership
            self._old_buffer = self.recv_buffer
            self._old_delivered = self._delivered_seq
            self._old_reassembler = self._reassembler

        self._recovery_pending = self._plan_recovery(commit)
        self._recovery_reassembler = make_reassembler()
        self._voted_done = False
        self._recovery_absorbed = 0
        self.trace("recovery",
                   f"ring {commit.ring_id.seq} members {list(commit.members)}; "
                   f"{len(self._recovery_pending)} old packet(s) to rebroadcast")

        # Fresh context for the new ring.
        self.ring_id = commit.ring_id
        self._ring_aliases.clear()
        self._pending_membership = new_members
        self.recv_buffer = make_receive_buffer()
        self._delivered_seq = 0
        self._reassembler = make_reassembler()
        self._flow.reset()
        self._last_token = None
        self._last_accepted_stamp = (-1, -1)
        self._prev_token_aru = 0
        self._stable_seq = 0
        self.state = SrpState.RECOVERY
        self._restart_token_loss_timer()

    def _plan_recovery(self, commit: CommitToken) -> List[DataPacket]:
        """Which old-ring packets must *this node* rebroadcast (encapsulated).

        For each sequence in the old ring's recovery range, the member with
        the smallest id whose reported aru covers it is the designated
        retransmitter (it provably holds the packet).  Sequences beyond every
        member's aru fall back to "every holder rebroadcasts" — duplicates
        are filtered by sequence number as usual.
        """
        assert self._old_buffer is not None and self._old_ring is not None
        same_old = [n for n in commit.members
                    if n in commit.info
                    and commit.info[n].old_ring_id == self._old_ring]
        if not same_old:
            return []
        low = min(commit.info[n].my_aru for n in same_old)
        high = max(commit.info[n].high_seq for n in same_old)
        pending: List[DataPacket] = []
        for seq in range(low + 1, high + 1):
            packet = self._old_buffer.get(seq)
            if packet is None:
                continue
            holders = [n for n in same_old if commit.info[n].my_aru >= seq]
            designated = min(holders) if holders else None
            if designated == self.node_id or designated is None:
                pending.append(packet)
        return pending

    def _recovery_token_step(self, token: Token) -> None:
        """Our part of a recovery-state token visit (Totem SRP recovery)."""
        allowance = self._flow.allowance(token)
        sent = 0
        while sent < allowance and self._recovery_pending:
            old_packet = self._recovery_pending.pop(0)
            for chunks in self._encapsulate(old_packet):
                token.seq += 1
                packet = DataPacket(sender=self.node_id, ring_id=self.ring_id,
                                    seq=token.seq, chunks=chunks)
                self.recv_buffer.insert(packet)
                self.transport.broadcast_data(packet)
                self.stats.recovery_packets += 1
                sent += 1
        self._flow.update(token, sent, backlog=len(self._recovery_pending))
        self._absorb_recovery_progress()

        done = (not self._recovery_pending
                and self.recv_buffer.my_aru == token.seq)
        if done:
            token.done_count += 1
            self._voted_done = True
        else:
            token.done_count = 0
        assert self._pending_membership is not None
        if done and token.done_count >= len(self._pending_membership):
            self._complete_recovery()

    def _encapsulate(self, old_packet: DataPacket) -> List[Tuple[Chunk, ...]]:
        """Encode an old-ring packet into ENCAPSULATED chunks (fragmenting)."""
        blob = encode_packet(old_packet)
        room = self.config.max_packet_payload - CHUNK_HEADER_BYTES
        pieces: List[Tuple[Chunk, ...]] = []
        offset = 0
        first = True
        while offset < len(blob):
            piece = blob[offset:offset + room]
            offset += len(piece)
            flags = 0
            if first:
                flags |= int(ChunkFlags.FIRST)
                first = False
            if offset >= len(blob):
                flags |= int(ChunkFlags.LAST)
            pieces.append((Chunk(kind=ChunkKind.ENCAPSULATED,
                                 msg_id=old_packet.seq & 0xFFFFFFFF,
                                 flags=flags, data=piece),))
        return pieces

    def _absorb_recovery_progress(self) -> None:
        """Decode ENCAPSULATED chunks into the old ring's receive buffer.

        Absorption walks the new ring's *sequence* order (not arrival
        order): an encapsulated old packet may be fragmented across several
        new-ring packets, and feeding a retransmitted first fragment after
        its second would orphan the message in the reassembler while the
        aru — and hence the done vote — still completed.
        """
        while True:
            packet = self.recv_buffer.get(self._recovery_absorbed + 1)
            if packet is None:
                return
            self._recovery_absorbed += 1
            for chunk in packet.chunks:
                if chunk.kind is not ChunkKind.ENCAPSULATED:
                    continue
                blob = self._recovery_reassembler.feed(packet.sender, chunk)
                if blob is None:
                    continue
                old_packet = decode_packet(blob)
                if (isinstance(old_packet, DataPacket)
                        and self._old_buffer is not None):
                    self._old_buffer.insert(old_packet)

    def _complete_recovery(self) -> None:
        """All members have everything: deliver EVS events and go operational."""
        assert self._pending_membership is not None
        new_members = self._pending_membership

        if (self._old_buffer is not None and self._old_ring is not None
                and self._old_membership is not None
                and self._old_reassembler is not None):
            # 1. Messages contiguous in the old ring: agreed order, old config.
            self._deliver_old_prefix()
            # 2. Transitional configuration: the old-ring members who survive.
            #    Survival means *continuing from our old ring*, not merely
            #    sharing a node id with one of its members — a crashed peer
            #    that restarted joins this ring as a fresh incarnation (its
            #    commit info names a different old ring) and must appear to
            #    the application as a newcomer, never as a survivor.
            commit_info = (self._commit_token.info
                           if self._commit_token is not None else {})
            survivors = tuple(
                n for n in new_members.members
                if n in self._old_membership
                and (n == self.node_id
                     or (n in commit_info
                         and commit_info[n].old_ring_id == self._old_ring)))
            self.on_config_change(ConfigurationChange(
                membership=Membership(new_members.ring_id, survivors),
                transitional=True))
            # 3. Remaining recovered old-ring messages, gaps skipped
            #    identically everywhere (all survivors hold the same set).
            self._deliver_old_remainder()
        self._old_ring = None
        self._old_membership = None
        self._old_buffer = None
        self._old_reassembler = None
        self._old_delivered = 0
        self._recovery_pending = []

        # 4. The new regular configuration.
        self._install_ring(new_members.ring_id, new_members.members)
        # Deliver any new-ring packets that piled up during recovery.
        self._try_deliver()

    def _deliver_old_prefix(self) -> None:
        assert self._old_buffer is not None and self._old_reassembler is not None
        while True:
            seq = self._old_delivered + 1
            packet = self._old_buffer.get(seq)
            if packet is None:
                break
            self._old_delivered = seq
            # Contiguous old-ring messages are agreed in the old config.
            self._deliver_packet_chunks(packet, self._old_reassembler,
                                        safe=False, config_id=self._old_ring)

    def _deliver_old_remainder(self) -> None:
        assert self._old_buffer is not None and self._old_reassembler is not None
        for seq in range(self._old_delivered + 1,
                         self._old_buffer.high_seq + 1):
            packet = self._old_buffer.get(seq)
            if packet is None:
                continue  # nobody on the new ring holds it; skip consistently
            # Recovered messages are delivered in the *transitional*
            # configuration, which carries the new ring's identity.
            self._deliver_packet_chunks(packet, self._old_reassembler,
                                        safe=False, config_id=self.ring_id)
        self._old_delivered = self._old_buffer.high_seq

    def _install_ring(self, ring_id: RingId, members: Tuple[NodeId, ...]) -> None:
        self.ring_id = ring_id
        self._ring_aliases.clear()
        self.membership = Membership(ring_id, members)
        self._pending_membership = None
        self._highest_ring_seq = max(self._highest_ring_seq, ring_id.seq)
        self.state = SrpState.OPERATIONAL
        self.stats.membership_changes += 1
        self.trace("ring-installed",
                   f"ring {ring_id.seq} members {list(members)}")
        self.on_config_change(ConfigurationChange(
            membership=self.membership, transitional=False))
        self._restart_token_loss_timer()
        if self.node_id == ring_id.representative:
            self._schedule_presence_beacon()
