"""Sharded multi-ring atomic broadcast with deterministic cross-ring merge.

A single Totem ring saturates at ring-rotation rate.  Following Ring Paxos
and *Stretching Multi-Ring Paxos* (PAPERS.md), this subsystem partitions
the message space across many concurrent rings — each still a full Totem
RRP ring, redundant over the same shared :class:`~repro.net.simlan.SimLan`
networks — and merges the per-ring totally ordered streams back into one
deterministic sequence at multi-group subscribers using the Multi-Ring
Paxos skip/merge-clock trick (see ``docs/MULTIRING.md``).
"""

from .config import (
    GROUP_STRIDE,
    MultiRingConfig,
    group_addr,
    group_of,
    member_of,
)
from .partition import (
    HashPartitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from .merge import (
    DATA_PREFIX,
    MARKER_PREFIX,
    CrossRingMerger,
    MergedEntry,
    decode_payload,
    encode_data,
    encode_marker,
)
from .cluster import MultiRingCluster, RingGroup

__all__ = [
    "GROUP_STRIDE",
    "MultiRingConfig",
    "group_addr",
    "group_of",
    "member_of",
    "HashPartitioner",
    "RoundRobinPartitioner",
    "make_partitioner",
    "DATA_PREFIX",
    "MARKER_PREFIX",
    "CrossRingMerger",
    "MergedEntry",
    "decode_payload",
    "encode_data",
    "encode_marker",
    "MultiRingCluster",
    "RingGroup",
]
