"""Key -> shard -> ring partitioners.

Both partitioners are deterministic across processes and runs:
:class:`HashPartitioner` uses CRC-32 (never Python's randomised ``hash``),
:class:`RoundRobinPartitioner` is a plain counter.  Shard *s* maps to ring
``s % num_rings``, so more shards than rings interleave cleanly and a
future resharding can move shards between rings without changing keys.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..errors import ConfigError
from .config import PARTITIONER_NAMES


class HashPartitioner:
    """Stateless key hashing: ``crc32(key) % num_shards``."""

    name = "hash"

    def __init__(self, num_rings: int, num_shards: Optional[int] = None) -> None:
        if num_rings < 1:
            raise ConfigError("num_rings must be >= 1")
        self.num_rings = num_rings
        self.num_shards = num_shards if num_shards is not None else num_rings
        if self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")

    def shard_for(self, key: bytes) -> int:
        return zlib.crc32(key) % self.num_shards

    def ring_for(self, key: bytes) -> int:
        return self.shard_for(key) % self.num_rings


class RoundRobinPartitioner:
    """Stateful striping: consecutive keys land on consecutive shards.

    Useful for uniform load when keys carry no locality; note that the
    mapping depends on submission order, so use :class:`HashPartitioner`
    whenever the same key must always reach the same ring.
    """

    name = "round-robin"

    def __init__(self, num_rings: int, num_shards: Optional[int] = None) -> None:
        if num_rings < 1:
            raise ConfigError("num_rings must be >= 1")
        self.num_rings = num_rings
        self.num_shards = num_shards if num_shards is not None else num_rings
        if self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        self._next = 0

    def shard_for(self, key: bytes) -> int:
        shard = self._next
        self._next = (shard + 1) % self.num_shards
        return shard

    def ring_for(self, key: bytes) -> int:
        return self.shard_for(key) % self.num_rings


def make_partitioner(name: str, num_rings: int,
                     num_shards: Optional[int] = None):
    """Build a partitioner by name (``"hash"`` or ``"round-robin"``)."""
    if name == "hash":
        return HashPartitioner(num_rings, num_shards)
    if name == "round-robin":
        return RoundRobinPartitioner(num_rings, num_shards)
    raise ConfigError(
        f"unknown partitioner {name!r} "
        f"(choose from {', '.join(PARTITIONER_NAMES)})")
