"""Configuration and addressing for sharded multi-ring clusters.

Addressing: every (ring group, member) pair gets a composite node id
``group * GROUP_STRIDE + member``.  Group 0 therefore uses the classic
addresses 1..N, each group's lowest address is its representative
(``g * GROUP_STRIDE + 1``), and ring identifiers — ``(seq,
representative)`` pairs — are distinct across groups by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import LanConfig, TotemConfig
from ..errors import ConfigError
from ..types import NodeId

#: Composite address stride between ring groups.
GROUP_STRIDE = 1000

#: Partitioner names accepted by :func:`repro.multiring.make_partitioner`.
PARTITIONER_NAMES = ("hash", "round-robin")


def group_addr(group: int, member: NodeId) -> NodeId:
    """The composite node id of ``member`` (1-based) in ``group``."""
    return group * GROUP_STRIDE + member


def group_of(addr: NodeId) -> int:
    """The ring group a composite node id belongs to."""
    return addr // GROUP_STRIDE


def member_of(addr: NodeId) -> NodeId:
    """The 1-based member index within the ring group."""
    return addr % GROUP_STRIDE


@dataclass(frozen=True)
class MultiRingConfig:
    """Everything needed to build a :class:`MultiRingCluster` deterministically.

    ``num_rings`` independent Totem rings share the same ``totem.num_networks``
    simulated LANs (isolated by multicast-style channels), each ring with
    ``num_nodes`` members.  Messages are sharded to rings by key through a
    configurable partitioner; ``num_shards`` defaults to ``num_rings``
    (shard *s* maps to ring ``s % num_rings``).
    """

    num_rings: int = 8
    num_nodes: int = 4
    partitioner: str = "hash"
    #: Number of key shards; ``None`` means one shard per ring.
    num_shards: int = None  # type: ignore[assignment]
    #: Virtual-time interval between merge-clock round markers per ring.
    merge_interval: float = 0.005
    totem: TotemConfig = field(default_factory=TotemConfig)
    lan: LanConfig = field(default_factory=LanConfig)
    seed: int = 1
    #: Telemetry: ``"off"``, ``"sampled"`` or ``"full"`` (see
    #: :class:`repro.config.ClusterConfig`); multiring samplers label every
    #: metric with its ring group.
    obs: str = "off"
    obs_interval: float = 0.01

    def __post_init__(self) -> None:
        if self.num_rings < 1:
            raise ConfigError("num_rings must be >= 1")
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.num_nodes >= GROUP_STRIDE:
            raise ConfigError(
                f"num_nodes must be < {GROUP_STRIDE} (composite addressing)")
        if self.partitioner not in PARTITIONER_NAMES:
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r} "
                f"(choose from {', '.join(PARTITIONER_NAMES)})")
        if self.num_shards is not None and self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if self.merge_interval <= 0:
            raise ConfigError("merge_interval must be positive")
        if self.obs not in ("off", "sampled", "full"):
            raise ConfigError(
                f"obs must be 'off', 'sampled' or 'full', got {self.obs!r}")
        if self.obs_interval <= 0:
            raise ConfigError("obs_interval must be positive")

    @property
    def shards(self) -> int:
        """Effective shard count (``num_shards`` or one per ring)."""
        return self.num_shards if self.num_shards is not None else self.num_rings
