"""The multi-ring cluster facade: many Totem rings, one scheduler.

``num_rings`` full Totem RRP rings run side by side on the same
``num_networks`` shared :class:`~repro.net.simlan.SimLan` media, isolated
by multicast-style LAN channels (one channel per ring group) so Totem's
foreign-message rule never merges co-located rings.  Each (group, member)
pair is one complete, independent :class:`~repro.api.node.TotemNode` —
its own CPU, network stack, RRP engine and SRP instance — addressed as
``group * GROUP_STRIDE + member``; the per-engine CPU models one core per
ring engine on each physical host.

The cluster shards application messages to rings by key, drives the
merge-clock marker pump (one marker per ring per ``merge_interval``,
submitted by the ring's representative), and routes each engine's
delivery stream to registered :class:`~repro.multiring.CrossRingMerger`
subscribers and application handlers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..api.node import TotemNode
from ..errors import ConfigError, SimulationError
from ..net.faults import FaultPlan
from ..net.simlan import SimLan
from ..sim.rng import RngRegistry
from ..sim.scheduler import EventScheduler
from ..types import NodeId
from .config import MultiRingConfig, group_addr
from .merge import CrossRingMerger, decode_payload, encode_data, encode_marker
from .partition import make_partitioner

#: Application handler: ``handler(group, message, body)`` where ``body`` is
#: the unwrapped application payload of one delivered data message.
AppHandler = Callable[[int, object, bytes], None]


class _EngineDeliver:
    """Delivery dispatcher for one (group, member) engine.

    A ``__slots__`` callable object rather than a closure so the simulated
    world stays deepcopy-safe (the explorer snapshots whole clusters).
    """

    __slots__ = ("_cluster", "_group", "_member")

    def __init__(self, cluster: "MultiRingCluster", group: int,
                 member: NodeId) -> None:
        self._cluster = cluster
        self._group = group
        self._member = member

    def __call__(self, message) -> None:
        self._cluster._dispatch(self._group, self._member, message)


class RingGroup:
    """One ring group's cluster-shaped view (for telemetry and tests).

    Exposes the ``lans`` / ``nodes`` / ``scheduler`` / ``now`` surface that
    :class:`~repro.obs.ClusterObservability` samples, scoped to this
    group's engines; the LANs are the shared media.
    """

    def __init__(self, cluster: "MultiRingCluster", index: int,
                 nodes: Dict[NodeId, TotemNode]) -> None:
        self._cluster = cluster
        self.index = index
        #: This group's engines keyed by composite address.
        self.nodes = nodes

    @property
    def lans(self) -> List[SimLan]:
        return self._cluster.lans

    @property
    def scheduler(self) -> EventScheduler:
        return self._cluster.scheduler

    @property
    def now(self) -> float:
        return self._cluster.scheduler.now()

    def node(self, member: NodeId) -> TotemNode:
        """This group's engine at 1-based physical ``member``."""
        return self.nodes[group_addr(self.index, member)]

    @property
    def representative(self) -> TotemNode:
        """The group's lowest-addressed engine (submits the markers)."""
        return self.node(1)

    def delivered_count(self) -> int:
        return sum(len(node.delivered) for node in self.nodes.values())


class MultiRingCluster:
    """Builds and drives ``num_rings`` Totem rings on shared networks.

    Every run is a pure function of the :class:`MultiRingConfig`
    (including its seed) and any applied fault plan, exactly like
    :class:`~repro.api.cluster.SimCluster`.
    """

    def __init__(self, config: MultiRingConfig) -> None:
        self.config = config
        self.scheduler = EventScheduler()
        self.rng = RngRegistry(config.seed)
        self.lans: List[SimLan] = [
            SimLan(self.scheduler, config.lan,
                   self.rng.stream(f"lan{i}.loss"), index=i)
            for i in range(config.totem.num_networks)
        ]
        from ..trace import Tracer
        self.tracer = Tracer(self.scheduler.now)
        self.partitioner = make_partitioner(
            config.partitioner, config.num_rings, config.num_shards)
        #: Kept for interface parity with SimCluster (no online checker:
        #: the invariant checker assumes one engine per node id space).
        self.checker = None
        self.groups: Dict[int, RingGroup] = {}
        self.nodes: Dict[NodeId, TotemNode] = {}
        for group in range(config.num_rings):
            members: Dict[NodeId, TotemNode] = {}
            for member in range(1, config.num_nodes + 1):
                addr = group_addr(group, member)
                node = TotemNode(
                    addr, config.totem, self.scheduler, self.lans,
                    config.lan,
                    on_deliver=_EngineDeliver(self, group, member),
                    tracer=self.tracer, channel=group)
                members[addr] = node
                self.nodes[addr] = node
            self.groups[group] = RingGroup(self, group, members)
        #: Cross-ring mergers keyed by physical member (1-based).
        self._mergers: Dict[NodeId, List[CrossRingMerger]] = {}
        #: Application handlers keyed by physical member (1-based).
        self._app_handlers: Dict[NodeId, AppHandler] = {}
        #: Last marker round successfully submitted per group.
        self._marker_round: List[int] = [0] * config.num_rings
        self._markers_on = False
        self._marker_timer = None
        self.obs = None
        if config.obs != "off":
            from ..obs import MultiRingObservability
            self.obs = MultiRingObservability(
                self, mode=config.obs, interval=config.obs_interval)

    # ----- lifecycle -----

    def start(self, preformed: bool = True, markers: bool = True) -> None:
        """Start every ring (each with its own preformed membership) and,
        unless ``markers=False``, the merge-clock marker pump."""
        for view in self.groups.values():
            members = sorted(view.nodes) if preformed else None
            for node in view.nodes.values():
                node.start(members)
        if self.obs is not None:
            self.obs.start()
        if markers:
            self.start_markers()

    def start_markers(self) -> None:
        """Begin submitting one round marker per ring per merge interval."""
        if self._markers_on:
            return
        self._markers_on = True
        self._marker_timer = self.scheduler.call_after(
            self.config.merge_interval, self._on_marker_tick)

    def stop_markers(self) -> None:
        """Stop the marker pump (lets in-flight rounds drain so tests can
        quiesce before comparing merged logs)."""
        self._markers_on = False
        if self._marker_timer is not None:
            self._marker_timer.cancel()
            self._marker_timer = None

    def _on_marker_tick(self) -> None:
        self._marker_timer = None
        for group, view in self.groups.items():
            # Rounds must stay consecutive per ring, so a marker that does
            # not fit the send queue is simply retried next tick — the
            # round just spans two intervals.
            next_round = self._marker_round[group] + 1
            if view.representative.try_submit(encode_marker(group, next_round)):
                self._marker_round[group] = next_round
        if self._markers_on:
            self._marker_timer = self.scheduler.call_after(
                self.config.merge_interval, self._on_marker_tick)

    @property
    def now(self) -> float:
        return self.scheduler.now()

    # ----- running -----

    def run_until(self, t: float) -> None:
        self.scheduler.run_until(t)

    def run_for(self, dt: float) -> None:
        self.scheduler.run_until(self.scheduler.now() + dt)

    def run_until_condition(self, predicate: Callable[[], bool],
                            timeout: float, step: float = 0.005) -> None:
        deadline = self.scheduler.now() + timeout
        while not predicate():
            if self.scheduler.now() >= deadline:
                raise SimulationError(
                    f"condition not reached within {timeout}s of virtual time")
            self.scheduler.run_until(
                min(deadline, self.scheduler.now() + step))

    # ----- application interface -----

    def ring_for(self, key: bytes) -> int:
        """Which ring group the partitioner maps ``key`` to."""
        return self.partitioner.ring_for(key)

    def submit(self, key: bytes, payload: bytes, sender: NodeId = 1) -> bool:
        """Shard ``payload`` to its ring by ``key`` and submit it at
        physical ``sender``'s engine for that ring.  Returns False when
        that engine's send queue is full."""
        return self.submit_to_group(self.ring_for(key), payload, sender)

    def submit_to_group(self, group: int, payload: bytes,
                        sender: NodeId = 1) -> bool:
        """Submit directly to ``group``'s ring, bypassing the partitioner."""
        node = self.nodes[group_addr(group, sender)]
        return node.try_submit(encode_data(payload))

    def add_merger(self, member: NodeId,
                   groups: Optional[Sequence[int]] = None) -> CrossRingMerger:
        """Subscribe physical ``member`` to a deterministic merge of
        ``groups`` (all rings by default).  Attach before :meth:`start` —
        a merger only sees deliveries from the moment it is registered."""
        if groups is None:
            groups = range(self.config.num_rings)
        for group in groups:
            if group not in self.groups:
                raise ConfigError(f"unknown ring group {group}")
        merger = CrossRingMerger(groups)
        self._mergers.setdefault(member, []).append(merger)
        return merger

    def set_app_handler(self, member: NodeId, handler: AppHandler) -> None:
        """Install ``handler(group, message, body)`` for every data message
        delivered at physical ``member`` (any ring)."""
        self._app_handlers[member] = handler

    def _dispatch(self, group: int, member: NodeId, message) -> None:
        """Fan one engine delivery out to mergers and the app handler."""
        for merger in self._mergers.get(member, ()):
            if group in merger.groups:
                merger.feed(group, message)
        kind, body = decode_payload(message.payload)
        if kind == "marker":
            return
        handler = self._app_handlers.get(member)
        if handler is not None:
            handler(group, message, body if kind == "data" else message.payload)

    # ----- fault injection -----

    def apply_fault_plan(self, plan: FaultPlan) -> None:
        """Schedule every transition of ``plan`` on the shared media."""
        for event in plan.events:
            if event.network >= len(self.lans):
                raise SimulationError(
                    f"fault plan references network {event.network}, "
                    f"cluster has {len(self.lans)}")
            lan = self.lans[event.network]
            if self.obs is not None:
                self.scheduler.call_at(
                    event.time, self.obs.record_fault_injection,
                    event.network, event.label)
            self.scheduler.call_at(event.time, event.apply, lan.faults)

    def heal_cluster(self) -> None:
        """Clear every fault on every shared medium, immediately."""
        for lan in self.lans:
            lan.faults.heal()

    # ----- convenience for tests and benchmarks -----

    def total_delivered(self) -> int:
        return sum(len(node.delivered) for node in self.nodes.values())

    def assert_total_order(self) -> None:
        """Per-group total order: each ring's members must agree on one
        prefix-consistent delivery sequence (cross-ring order is the
        merger's job, not the rings')."""
        for group in self.groups:
            self.assert_group_total_order(group)

    def assert_group_total_order(self, group: int) -> None:
        view = self.groups[group]
        sequences = {
            addr: [(m.ring_id, m.sender, m.seq, m.payload)
                   for m in node.delivered]
            for addr, node in view.nodes.items()
        }
        ids = sorted(sequences)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                seq_a, seq_b = sequences[a], sequences[b]
                shorter = min(len(seq_a), len(seq_b))
                if seq_a[:shorter] != seq_b[:shorter]:
                    for k in range(shorter):
                        if seq_a[k] != seq_b[k]:
                            raise AssertionError(
                                f"total order violated in group {group} "
                                f"between engines {a} and {b} at position "
                                f"{k}: {seq_a[k]!r} != {seq_b[k]!r}")
