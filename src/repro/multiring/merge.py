"""Deterministic cross-ring merge (Multi-Ring Paxos skip/merge-clock).

Each ring's totally ordered stream is chopped into *rounds* by marker
messages that the cluster's marker pump submits to every ring at a fixed
virtual-time interval.  A marker for round *k* closes round *k*: every data
message delivered since the previous marker belongs to round *k*.  Because
markers ride the ring's own total order, every subscriber of a ring chops
its stream at exactly the same points.

A :class:`CrossRingMerger` subscribed to groups ``G`` emits round *k* only
once **all** groups in ``G`` have closed round *k*, concatenating the
per-group round contents in ascending group order.  Idle rings still emit
markers (a marker closing an empty round is exactly a Multi-Ring Paxos
*skip* message), so the merger never blocks on a quiet ring.  The merged
sequence is therefore a pure function of the per-ring delivery orders —
identical bytes at every subscriber, on every run with the same seed.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError

#: First payload byte of an application (data) message on a multiring ring.
DATA_PREFIX = b"\x01"
#: First payload byte of a merge-clock round marker.
MARKER_PREFIX = b"\x02"

_MARKER = struct.Struct(">IQ")  # (group, round)


def encode_data(payload: bytes) -> bytes:
    """Wrap an application payload for submission to a multiring ring."""
    return DATA_PREFIX + payload


def encode_marker(group: int, round_no: int) -> bytes:
    """A merge-clock marker closing ``round_no`` on ``group``'s ring."""
    return MARKER_PREFIX + _MARKER.pack(group, round_no)


def decode_payload(payload: bytes):
    """Classify a ring payload: ``("data", body)``, ``("marker", (group,
    round))`` or ``("raw", payload)`` for unprefixed traffic."""
    if payload[:1] == DATA_PREFIX:
        return "data", payload[1:]
    if payload[:1] == MARKER_PREFIX and len(payload) == 1 + _MARKER.size:
        return "marker", _MARKER.unpack(payload[1:])
    return "raw", payload


class MergedEntry(NamedTuple):
    """One application message in the merged cross-ring sequence."""

    round: int
    group: int
    sender: int
    seq: int
    payload: bytes

    def line(self) -> bytes:
        """Canonical byte rendering (the unit of the determinism check)."""
        return (f"round={self.round} group={self.group} "
                f"sender={self.sender} seq={self.seq} "
                f"payload={self.payload.hex()}\n").encode("ascii")


class CrossRingMerger:
    """Merge the streams of several ring groups into one deterministic log.

    Feed it every :class:`~repro.types.DeliveredMessage` from each
    subscribed group's local engine (in that group's delivery order); it
    buffers per-group rounds and emits them in lockstep.
    """

    def __init__(self, groups: Sequence[int],
                 on_deliver: Optional[Callable[[MergedEntry], None]] = None) -> None:
        if not groups:
            raise ConfigError("merger needs at least one ring group")
        if len(set(groups)) != len(groups):
            raise ConfigError("duplicate ring group in merger subscription")
        self.groups: Tuple[int, ...] = tuple(sorted(groups))
        self._on_deliver = on_deliver
        #: Highest round each group has closed.
        self._closed: Dict[int, int] = {g: 0 for g in self.groups}
        #: Data of the currently open (unclosed) round per group.
        self._open: Dict[int, List[Tuple[int, int, bytes]]] = {
            g: [] for g in self.groups}
        #: Closed-but-unmerged rounds per group.
        self._pending: Dict[int, Dict[int, List[Tuple[int, int, bytes]]]] = {
            g: {} for g in self.groups}
        #: The merged cross-ring sequence emitted so far.
        self.merged: List[MergedEntry] = []
        self._emit_round = 1

    # ----- ingestion -----

    def feed(self, group: int, message) -> None:
        """Ingest one delivered message from ``group``'s local engine."""
        if group not in self._closed:
            raise SimulationError(f"merger not subscribed to group {group}")
        kind, body = decode_payload(message.payload)
        if kind == "marker":
            marker_group, round_no = body
            if marker_group != group:
                raise SimulationError(
                    f"marker for group {marker_group} delivered on "
                    f"group {group}'s ring")
            self._close_round(group, round_no)
        else:
            payload = body if kind == "data" else message.payload
            self._open[group].append((message.sender, message.seq, payload))

    def _close_round(self, group: int, round_no: int) -> None:
        expected = self._closed[group] + 1
        if round_no != expected:
            raise SimulationError(
                f"group {group} marker closed round {round_no}, "
                f"expected {expected} (markers must be consecutive)")
        self._pending[group][round_no] = self._open[group]
        self._open[group] = []
        self._closed[group] = round_no
        self._drain()

    def _drain(self) -> None:
        while all(self._closed[g] >= self._emit_round for g in self.groups):
            round_no = self._emit_round
            for g in self.groups:
                for sender, seq, payload in self._pending[g].pop(round_no):
                    entry = MergedEntry(round_no, g, sender, seq, payload)
                    self.merged.append(entry)
                    if self._on_deliver is not None:
                        self._on_deliver(entry)
            self._emit_round += 1

    # ----- inspection -----

    @property
    def rounds_emitted(self) -> int:
        """How many complete cross-ring rounds have been merged."""
        return self._emit_round - 1

    def rounds_closed(self, group: int) -> int:
        """Highest round ``group`` has closed at this merger."""
        return self._closed[group]

    def log_bytes(self) -> bytes:
        """The merged log as canonical bytes (byte-identical across
        subscribers with the same subscription, same seed)."""
        return b"".join(entry.line() for entry in self.merged)

    def digest(self) -> str:
        """sha256 of :meth:`log_bytes`, truncated for readability."""
        return hashlib.sha256(self.log_bytes()).hexdigest()[:16]
