"""Exception hierarchy for the Totem RRP reproduction.

All library-raised exceptions derive from :class:`TotemError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class TotemError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(TotemError):
    """A configuration value is out of range or inconsistent."""


class CodecError(TotemError):
    """A packet could not be encoded or decoded."""


class ChecksumError(CodecError):
    """A packet failed its CRC check (corrupted on the wire)."""


class NotMemberError(TotemError):
    """An operation was attempted by a node that is not a ring member."""


class SendQueueFullError(TotemError):
    """The application tried to enqueue beyond the send-queue capacity."""


class SimulationError(TotemError):
    """The discrete-event simulation reached an inconsistent state."""


class TransportError(TotemError):
    """A transport (simulated or UDP) failed to carry out an operation."""


class InvariantViolationError(TotemError):
    """A protocol invariant was violated (strict-mode :mod:`repro.check`)."""


class GateError(TotemError):
    """The benchmark-regression gate could not run or detected a regression."""
