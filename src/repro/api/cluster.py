"""A deterministic simulated cluster: N redundant LANs + M Totem nodes."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..errors import SimulationError
from ..net.faults import FaultPlan
from ..net.simlan import SimLan
from ..sim.rng import RngRegistry
from ..sim.scheduler import EventScheduler
from ..types import NodeId
from .node import TotemNode


class SimCluster:
    """Builds and drives a whole simulated Totem RRP deployment.

    Node identifiers are ``1 .. num_nodes``.  Every run is a pure function
    of the :class:`~repro.config.ClusterConfig` (including its seed) and any
    applied :class:`~repro.net.faults.FaultPlan`.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.scheduler = EventScheduler()
        self.rng = RngRegistry(config.seed)
        self.lans: List[SimLan] = [
            SimLan(self.scheduler, config.lan,
                   self.rng.stream(f"lan{i}.loss"), index=i)
            for i in range(config.totem.num_networks)
        ]
        from ..trace import Tracer
        #: Protocol flight recorder (see :mod:`repro.trace`).
        self.tracer = Tracer(self.scheduler.now)
        self.nodes: Dict[NodeId, TotemNode] = {
            node_id: TotemNode(node_id, config.totem, self.scheduler,
                               self.lans, config.lan, tracer=self.tracer)
            for node_id in range(1, config.num_nodes + 1)
        }
        #: Online invariant checker (:mod:`repro.check`), None when off.
        self.checker = None
        if config.invariants != "off":
            from ..check import CheckMode, InvariantChecker
            self.checker = InvariantChecker(
                mode=CheckMode(config.invariants),
                now_fn=self.scheduler.now, tracer=self.tracer)
            for lan in self.lans:
                self.checker.attach_lan(lan)
            for node in self.nodes.values():
                self.checker.attach_node(node)
        #: Telemetry sampler (:mod:`repro.obs`), None when off.
        self.obs = None
        if config.obs != "off":
            from ..obs import ClusterObservability
            self.obs = ClusterObservability(
                self, mode=config.obs, interval=config.obs_interval)
            for node in self.nodes.values():
                self.obs.attach_node(node)

    # ----- lifecycle -----

    def start(self, preformed: bool = True) -> None:
        """Start every node.

        ``preformed=True`` installs the full membership up front (the usual
        benchmark setup); ``False`` boots every node as a singleton so the
        ring forms through the membership protocol.
        """
        members = sorted(self.nodes) if preformed else None
        for node in self.nodes.values():
            node.start(members)
        if self.obs is not None:
            self.obs.start()

    def node(self, node_id: NodeId) -> TotemNode:
        return self.nodes[node_id]

    @property
    def now(self) -> float:
        return self.scheduler.now()

    # ----- running -----

    def run_until(self, t: float) -> None:
        self.scheduler.run_until(t)

    def run_for(self, dt: float) -> None:
        self.scheduler.run_until(self.scheduler.now() + dt)

    def run_until_condition(self, predicate: Callable[[], bool],
                            timeout: float, step: float = 0.005) -> None:
        """Advance in ``step`` increments until ``predicate()`` or ``timeout``.

        Raises :class:`SimulationError` on timeout — tests rely on a loud
        failure rather than a silent partial run.
        """
        deadline = self.scheduler.now() + timeout
        while not predicate():
            if self.scheduler.now() >= deadline:
                raise SimulationError(
                    f"condition not reached within {timeout}s of virtual time")
            self.scheduler.run_until(
                min(deadline, self.scheduler.now() + step))

    # ----- fault injection -----

    def apply_fault_plan(self, plan: FaultPlan) -> None:
        """Schedule every transition of ``plan`` on the event scheduler."""
        for event in plan.events:
            if event.network >= len(self.lans):
                raise SimulationError(
                    f"fault plan references network {event.network}, "
                    f"cluster has {len(self.lans)}")
            lan = self.lans[event.network]
            if self.obs is not None:
                # Marker first, then the transition: scheduler ties break by
                # insertion order, so the timeline shows cause before effect.
                self.scheduler.call_at(
                    event.time, self.obs.record_fault_injection,
                    event.network, event.label)
            self.scheduler.call_at(event.time, event.apply, lan.faults)

    def crash_node(self, node_id: NodeId) -> None:
        """Simulate a process/processor crash: the node neither sends nor
        receives on any network from now on.  Its in-memory engine object
        remains (timers fire into the void), matching a fail-silent fault.
        """
        for lan in self.lans:
            lan.detach(node_id)
            lan.faults.send_blocked.add(node_id)

    def partition_cluster(self, groups: Sequence[Sequence[NodeId]]) -> None:
        """Partition EVERY network into the same node groups, immediately.

        This is a node-connectivity fault (redundancy cannot mask it): the
        ring is expected to split into one ring per group.  Use
        :meth:`heal_cluster` to undo it.
        """
        for lan in self.lans:
            lan.faults.set_partition(groups)

    def heal_cluster(self) -> None:
        """Clear every fault on every network, immediately."""
        for lan in self.lans:
            lan.faults.heal()

    def restart_node(self, node_id: NodeId, start: bool = True) -> TotemNode:
        """Boot a fresh incarnation of a crashed node.

        The old engine object is abandoned (its timers keep firing into a
        dead network stack, as a crashed process's state is simply gone) and
        a brand-new :class:`TotemNode` with empty state is attached to the
        networks.  It starts as a singleton and rejoins through the
        membership protocol — the realistic model of a process restart.

        ``start=False`` returns the attached-but-not-started incarnation so
        a caller can wire application callbacks (e.g. a replicated state
        machine) before calling ``fresh.start(None)`` itself.
        """
        old = self.nodes[node_id]
        old.stop()
        for lan in self.lans:
            lan.detach(node_id)  # no-op if crash_node already detached
            lan.faults.send_blocked.discard(node_id)
        # The dead incarnation's ports carry a stale attachment generation
        # and transmit nothing; re-attaching below starts a new generation.
        fresh = TotemNode(node_id, self.config.totem, self.scheduler,
                          self.lans, self.config.lan, tracer=self.tracer)
        # Stable storage survives the crash: the fresh incarnation resumes
        # the ring-seq watermark so its rings never reuse an id the old
        # incarnation's configurations already consumed (Totem ring ids
        # must be monotonic for EVS agreement to be meaningful).
        fresh.srp.resume_ring_seq(old.srp.ring_seq_watermark())
        self.nodes[node_id] = fresh
        if self.checker is not None:
            # Fresh probe for the fresh incarnation; the abandoned
            # incarnation keeps its old probe, so a timer that leaks past
            # stop() is still caught.
            self.checker.attach_node(fresh)
        if self.obs is not None:
            self.obs.attach_node(fresh)
        self.tracer.emit(node_id, "membership", "restart",
                         "fresh incarnation booted")
        if start:
            fresh.start(None)
        return fresh

    # ----- convenience for tests and benchmarks -----

    def total_delivered(self) -> int:
        return sum(len(node.delivered) for node in self.nodes.values())

    def delivered_payloads(self, node_id: NodeId) -> List[bytes]:
        return [m.payload for m in self.nodes[node_id].delivered]

    def assert_total_order(self, nodes: Optional[Sequence[NodeId]] = None) -> None:
        """Check every pair of nodes delivered a consistent total order.

        For each pair, one node's delivery sequence (sender, seq) must be a
        prefix of the other's (nodes may simply be at different points).
        ``nodes`` restricts the check — pass the continuously-alive subset
        when some node was restarted (a fresh incarnation's history starts
        mid-stream, so the prefix rule does not apply to it).
        """
        selected = self.nodes if nodes is None else {
            node_id: self.nodes[node_id] for node_id in nodes}
        sequences = {
            node_id: [(m.ring_id, m.sender, m.seq, m.payload)
                      for m in node.delivered]
            for node_id, node in selected.items()
        }
        ids = sorted(sequences)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                seq_a, seq_b = sequences[a], sequences[b]
                shorter = min(len(seq_a), len(seq_b))
                if seq_a[:shorter] != seq_b[:shorter]:
                    for k in range(shorter):
                        if seq_a[k] != seq_b[k]:
                            raise AssertionError(
                                f"total order violated between nodes {a} and "
                                f"{b} at position {k}: "
                                f"{seq_a[k]!r} != {seq_b[k]!r}")
        # Unreachable mismatch (prefix check covers it), kept for clarity.

    def assert_evs_consistency(self) -> None:
        """Check extended-virtual-synchrony agreement per configuration.

        Weaker than :meth:`assert_total_order` (which demands one global
        prefix-consistent history): EVS only promises that two nodes which
        deliver messages in the *same configuration* deliver the same
        sequence there.  Nodes that diverge into different configuration
        lineages (e.g. after an interrupted recovery) may legitimately
        deliver different recovered tails; this checker groups deliveries
        by their delivery configuration and prefix-compares within each.
        """
        per_config: Dict = {}
        for node_id, node in self.nodes.items():
            for message in node.delivered:
                key = message.delivery_config
                per_config.setdefault(key, {}).setdefault(node_id, []).append(
                    (message.sender, message.seq, message.payload))
        for config_id, streams in per_config.items():
            ids = sorted(streams)
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    seq_a, seq_b = streams[a], streams[b]
                    shorter = min(len(seq_a), len(seq_b))
                    if seq_a[:shorter] != seq_b[:shorter]:
                        for k in range(shorter):
                            if seq_a[k] != seq_b[k]:
                                raise AssertionError(
                                    f"EVS violated in config {config_id} "
                                    f"between nodes {a} and {b} at position "
                                    f"{k}: {seq_a[k][:2]}... != {seq_b[k][:2]}...")

    def check_invariants(self) -> None:
        """Run the checker's final ledger validation (no-op when off).

        In strict mode this raises on the first ledger imbalance; tests
        call it after a run so end-of-run accounting is validated even if
        no further token arrives to trigger the online check.
        """
        if self.checker is not None:
            self.checker.check_all()

    def all_fault_reports(self):
        reports = []
        for node in self.nodes.values():
            reports.extend(node.log.fault_reports)
        return sorted(reports, key=lambda r: r.time)

    def summary(self):
        """Aggregate statistics (see :mod:`repro.api.stats`)."""
        from .stats import summarize
        return summarize(self)

    def diagnose_faults(self):
        """Run the §3 fault-report diagnosis over the whole cluster."""
        from ..core.diagnosis import diagnose
        return diagnose(self.all_fault_reports(), sorted(self.nodes))
