"""One simulated Totem node: CPU + network stack + RRP + SRP, wired up."""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import LanConfig, TotemConfig
from ..core.base import ReplicationEngine
from ..core.factory import make_replication_engine
from ..errors import ConfigError
from ..net.simlan import SimLan
from ..net.stack import NetworkStack, NodeCpu
from ..sim.runtime import SimRuntime
from ..sim.scheduler import EventScheduler
from ..srp.engine import TotemSrp
from ..types import (
    ConfigChangeFn,
    DeliveryLog,
    DeliverFn,
    FaultReportFn,
    NodeId,
)


class TotemNode:
    """A complete Totem RRP node attached to N simulated LANs.

    The node owns a :class:`DeliveryLog` that records every delivered
    message, configuration change and fault report; user callbacks, when
    provided, are invoked in addition to the log.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: TotemConfig,
        scheduler: EventScheduler,
        lans: Sequence[SimLan],
        lan_config: Optional[LanConfig] = None,
        on_deliver: Optional[DeliverFn] = None,
        on_config_change: Optional[ConfigChangeFn] = None,
        on_fault_report: Optional[FaultReportFn] = None,
        tracer=None,
        channel: int = 0,
    ) -> None:
        if len(lans) != config.num_networks:
            raise ConfigError(
                f"config wants {config.num_networks} networks, "
                f"got {len(lans)} LANs")
        self.node_id = node_id
        self.config = config
        self.channel = channel
        self.log = DeliveryLog()
        self._user_deliver = on_deliver
        self._user_config_change = on_config_change
        self._user_fault_report = on_fault_report

        lan_config = lan_config or lans[0].config
        self.runtime = SimRuntime(scheduler)
        self.cpu = NodeCpu(scheduler)
        self.stack = NetworkStack(node_id, self.cpu, lan_config)
        for i, lan in enumerate(lans):
            self.stack.add_port(lan.attach(node_id, self.stack.make_deliver_fn(i),
                                           channel=channel))
        self.rrp: ReplicationEngine = make_replication_engine(
            node_id, config, self.runtime, self.stack,
            on_fault_report=self._on_fault_report)
        # Deliver straight into the log while no user callback is installed:
        # the fan-out frame (`_on_deliver`) costs one Python call per
        # delivered message, which is measurable at batch throughput.
        # A constructor-supplied callback — or a later `set_user_callbacks`
        # — swaps the fan-out in.
        self.srp = TotemSrp(
            node_id, config, self.runtime, self.rrp,
            on_deliver=(self._on_deliver if self._user_deliver is not None
                        else self.log.on_deliver),
            on_config_change=self._on_config_change,
            trace=(tracer.bind(node_id, "membership")
                   if tracer is not None else None))
        self.rrp.bind(self.srp)

    # ----- callback fan-out -----

    @property
    def _user_deliver(self):
        return self._user_deliver_cb

    @_user_deliver.setter
    def _user_deliver(self, fn) -> None:
        # Keep the SRP pointed at the cheapest delivery target: the log's
        # bound append while nobody listens, the fan-out frame otherwise.
        # A setter (rather than set_user_callbacks alone) so that tests and
        # tools assigning the attribute directly stay correct.
        self._user_deliver_cb = fn
        srp = getattr(self, "srp", None)
        if srp is not None:
            srp.on_deliver = (self._on_deliver if fn is not None
                              else self.log.on_deliver)

    def _on_deliver(self, message) -> None:
        self.log.on_deliver(message)
        if self._user_deliver is not None:
            self._user_deliver(message)

    def _on_config_change(self, change) -> None:
        self.log.on_config_change(change)
        if self._user_config_change is not None:
            self._user_config_change(change)

    def _on_fault_report(self, report) -> None:
        self.log.on_fault_report(report)
        if self._user_fault_report is not None:
            self._user_fault_report(report)

    # ----- application interface -----

    def set_user_callbacks(self,
                           on_deliver: Optional[DeliverFn] = None,
                           on_config_change: Optional[ConfigChangeFn] = None,
                           on_fault_report: Optional[FaultReportFn] = None) -> None:
        """Install (or replace) the application callbacks after construction.

        Toolkits such as :class:`repro.app.ReplicatedStateMachine` use this
        to take over the delivery stream of an already-built node.
        """
        if on_deliver is not None:
            self._user_deliver = on_deliver
        if on_config_change is not None:
            self._user_config_change = on_config_change
        if on_fault_report is not None:
            self._user_fault_report = on_fault_report

    def start(self, initial_members: Optional[Sequence[NodeId]] = None) -> None:
        """Bring the node up (see :meth:`TotemSrp.start`)."""
        self.rrp.start()
        self.srp.start(initial_members)

    def stop(self) -> None:
        """Abandon this incarnation: cancel all protocol timers."""
        self.srp.stop()
        self.rrp.stop()

    def submit(self, payload: bytes) -> None:
        """Queue a message for totally ordered broadcast (raises when full)."""
        self.srp.submit(payload)

    def try_submit(self, payload: bytes) -> bool:
        """Best-effort :meth:`submit`; returns False when the queue is full."""
        return self.srp.try_submit(payload)

    def submit_many(self, payloads) -> int:
        """Bulk :meth:`try_submit`; returns how many fit before the queue
        filled.  Payloads must already be ``bytes``."""
        return self.srp.submit_many(payloads)

    @property
    def delivered(self):
        """Messages delivered so far, in total order."""
        return self.log.messages

    @property
    def membership(self):
        return self.srp.membership

    @property
    def faulty_networks(self):
        """Networks this node has stopped sending on."""
        return self.rrp.faults.faulty_networks

    def clear_network_fault(self, network: int) -> bool:
        """Administratively return a repaired network to service."""
        return self.rrp.faults.clear_fault(network, detail="administrative restore")
