"""Run a Totem RRP node on real UDP sockets with asyncio.

The protocol engines are sans-io; this module provides the asyncio
:class:`~repro.sim.runtime.Runtime` (wall-clock timers) and wires the
engines to a :class:`~repro.net.udp.UdpStack`.

Typical use (see ``examples/udp_chat.py``)::

    addresses = local_address_map([1, 2, 3], num_networks=2)
    node = AsyncioTotemNode(1, config, addresses)
    await node.start(initial_members=[1, 2, 3])
    node.submit(b"hello")
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Sequence

from ..config import TotemConfig
from ..core.factory import make_replication_engine
from ..net.udp import AddressMap, UdpStack
from ..srp.engine import TotemSrp
from ..types import (
    ConfigChangeFn,
    DeliveryLog,
    DeliverFn,
    FaultReportFn,
    NodeId,
)


class _AsyncioTimer:
    """Adapts ``loop.call_later`` to the engines' TimerHandle protocol."""

    __slots__ = ("_handle", "_fired")

    def __init__(self, loop: asyncio.AbstractEventLoop, delay: float,
                 callback: Callable[..., None], args: tuple) -> None:
        self._fired = False

        def fire() -> None:
            self._fired = True
            callback(*args)
        self._handle = loop.call_later(delay, fire)

    def cancel(self) -> None:
        self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._fired and not self._handle.cancelled()


class AsyncioRuntime:
    """A :class:`~repro.sim.runtime.Runtime` backed by the asyncio loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop or asyncio.get_event_loop()

    def now(self) -> float:
        return self._loop.time()

    def set_timer(self, delay: float, callback: Callable[..., None],
                  *args: Any) -> _AsyncioTimer:
        return _AsyncioTimer(self._loop, delay, callback, args)

    def post(self, callback: Callable[..., None], *args: Any) -> None:
        self._loop.call_soon(callback, *args)

    def drain_now(self, pairs) -> None:
        call_soon = self._loop.call_soon
        for callback, args in pairs:
            call_soon(callback, *args)


class AsyncioTotemNode:
    """A complete Totem RRP node on real UDP sockets."""

    def __init__(
        self,
        node_id: NodeId,
        config: TotemConfig,
        addresses: AddressMap,
        on_deliver: Optional[DeliverFn] = None,
        on_config_change: Optional[ConfigChangeFn] = None,
        on_fault_report: Optional[FaultReportFn] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.log = DeliveryLog()
        self._user_deliver = on_deliver
        self._user_config_change = on_config_change
        self._user_fault_report = on_fault_report
        self.stack = UdpStack(node_id, addresses)
        self._started = False
        # Runtime and engines are created in start(), on the running loop.
        self.runtime: Optional[AsyncioRuntime] = None
        self.rrp = None
        self.srp: Optional[TotemSrp] = None

    async def start(self, initial_members: Optional[Sequence[NodeId]] = None) -> None:
        """Bind sockets and start the protocol engines."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        self.runtime = AsyncioRuntime(loop)
        self.rrp = make_replication_engine(
            self.node_id, self.config, self.runtime, self.stack,
            on_fault_report=self._on_fault_report)
        self.srp = TotemSrp(
            self.node_id, self.config, self.runtime, self.rrp,
            on_deliver=self._on_deliver,
            on_config_change=self._on_config_change)
        self.rrp.bind(self.srp)
        await self.stack.open()
        self.rrp.start()
        self.srp.start(initial_members)

    def close(self) -> None:
        self.stack.close()

    # ----- callback fan-out -----

    def _on_deliver(self, message) -> None:
        self.log.on_deliver(message)
        if self._user_deliver is not None:
            self._user_deliver(message)

    def _on_config_change(self, change) -> None:
        self.log.on_config_change(change)
        if self._user_config_change is not None:
            self._user_config_change(change)

    def _on_fault_report(self, report) -> None:
        self.log.on_fault_report(report)
        if self._user_fault_report is not None:
            self._user_fault_report(report)

    # ----- application interface -----

    def submit(self, payload: bytes) -> None:
        assert self.srp is not None, "start() first"
        self.srp.submit(payload)

    def try_submit(self, payload: bytes) -> bool:
        assert self.srp is not None, "start() first"
        return self.srp.try_submit(payload)

    @property
    def delivered(self):
        return self.log.messages

    @property
    def membership(self):
        assert self.srp is not None, "start() first"
        return self.srp.membership
