"""Application-facing API.

* :class:`TotemNode` — one node's full protocol stack on the simulator.
* :class:`SimCluster` — a whole simulated cluster (nodes + N redundant LANs),
  built deterministically from a :class:`~repro.config.ClusterConfig`.
* :class:`~repro.api.asyncio_node.AsyncioTotemNode` — the same engines on
  real UDP sockets via asyncio (import from ``repro.api.asyncio_node``).
"""

from .cluster import SimCluster
from .node import TotemNode

__all__ = ["TotemNode", "SimCluster"]
