"""Aggregate statistics over a whole simulated cluster.

Pulls together the per-node SRP/RRP counters, per-LAN traffic accounting
and per-node CPU accounting into one summary — the benches, examples and
operators' first stop when asking "what did this run actually do?".

The raw counter plumbing lives in :mod:`repro.obs.collect`; this module
only shapes those snapshots into the stable summary dataclasses, so the
telemetry subsystem and the summary never disagree about what a counter
means.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List

from ..obs.collect import snapshot_lan, snapshot_node
from ..types import NodeId


@dataclass(frozen=True)
class LanSummary:
    index: int
    frames_sent: int
    deliveries: int
    frames_lost: int
    frames_blocked: int
    wire_bytes: int
    utilization: float


@dataclass(frozen=True)
class NodeSummary:
    node: NodeId
    state: str
    msgs_submitted: int
    msgs_delivered: int
    bytes_delivered: int
    duplicate_packets: int
    retransmissions_served: int
    retransmission_requests: int
    tokens_accepted: int
    membership_changes: int
    faulty_networks: List[int]
    fault_reports: int
    cpu_utilization: float


@dataclass(frozen=True)
class ClusterSummary:
    """One run's aggregate picture."""

    elapsed: float
    nodes: Dict[NodeId, NodeSummary]
    lans: List[LanSummary]

    @property
    def total_delivered(self) -> int:
        return sum(n.msgs_delivered for n in self.nodes.values())

    @property
    def total_retransmissions(self) -> int:
        return sum(n.retransmissions_served for n in self.nodes.values())

    @property
    def aggregate_msgs_per_sec(self) -> float:
        """Delivered msgs/s at the slowest node (the honest system rate)."""
        if not self.nodes or self.elapsed <= 0:
            return 0.0
        return min(n.msgs_delivered for n in self.nodes.values()) / self.elapsed

    def format(self) -> str:
        lines = [f"cluster summary @ t={self.elapsed:.3f}s "
                 f"(min-node rate {self.aggregate_msgs_per_sec:,.0f} msgs/s)"]
        for node in self.nodes.values():
            lines.append(
                f"  node {node.node}: {node.state:12s} "
                f"delivered {node.msgs_delivered:>8,} "
                f"dup {node.duplicate_packets:>7,} "
                f"rtr {node.retransmissions_served:>5,} "
                f"memb {node.membership_changes} "
                f"faulty {node.faulty_networks} "
                f"cpu {node.cpu_utilization:.0%}")
        for lan in self.lans:
            lines.append(
                f"  net{lan.index}: frames {lan.frames_sent:>9,} "
                f"lost {lan.frames_lost:>6,} blocked {lan.frames_blocked:>6,} "
                f"util {lan.utilization:.0%}")
        return "\n".join(lines)


#: The snapshot dicts are a superset of the summary fields; project them.
_NODE_FIELDS = tuple(f.name for f in fields(NodeSummary))
_LAN_FIELDS = tuple(f.name for f in fields(LanSummary))


def summarize(cluster) -> ClusterSummary:
    """Build a :class:`ClusterSummary` from a live :class:`SimCluster`."""
    elapsed = cluster.now
    nodes: Dict[NodeId, NodeSummary] = {}
    for node_id in sorted(cluster.nodes):
        snap = snapshot_node(cluster.nodes[node_id], elapsed)
        nodes[node_id] = NodeSummary(
            **{name: snap[name] for name in _NODE_FIELDS})
    lans = []
    for lan in cluster.lans:
        snap = snapshot_lan(lan, elapsed)
        lans.append(LanSummary(**{name: snap[name] for name in _LAN_FIELDS}))
    return ClusterSummary(elapsed=elapsed, nodes=nodes, lans=lans)
