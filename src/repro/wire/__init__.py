"""Wire formats for the Totem protocol family.

Five packet types travel on the networks (paper §2, §5-§7 and the Totem SRP
membership protocol):

* :class:`DataPacket` — a sequenced broadcast carrying one or more packed
  application-message chunks (or encapsulated old-ring messages during
  recovery),
* :class:`BatchPacket` — a train of consecutively sequenced data packets
  from one sender, broadcast once per token visit,
* :class:`Token` — the regular circulating token,
* :class:`JoinMessage` — membership gather-state broadcast,
* :class:`CommitToken` — membership commit-state unicast token,
* chunk framing shared by packing/fragmentation.

The discrete-event simulator carries these objects directly (sizes come from
``wire_size()``); the asyncio UDP transport serialises them with
:mod:`repro.wire.codec`.
"""

from .packets import (
    CHUNK_HEADER_BYTES,
    BatchPacket,
    Chunk,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    PacketType,
    Token,
    packet_type_of,
)
from .codec import decode_packet, encode_packet

__all__ = [
    "BatchPacket",
    "Chunk",
    "ChunkKind",
    "CHUNK_HEADER_BYTES",
    "CommitToken",
    "DataPacket",
    "JoinMessage",
    "MemberInfo",
    "PacketType",
    "Token",
    "packet_type_of",
    "encode_packet",
    "decode_packet",
]
