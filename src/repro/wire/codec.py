"""Binary codec for Totem packets.

Layout: a 4-byte common header (magic, version, packet type), a
type-specific body, and a trailing CRC32 of everything before it.  The codec
is used by the asyncio UDP transport and by fidelity tests; the simulator
carries packet objects directly.

All integers are big-endian.  Sequence numbers are 64-bit, node and ring
identifiers 32-bit.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple, Union

from .. import _fast
from ..errors import ChecksumError, CodecError
from ..types import RingId
from .packets import (
    BATCH_MAX_PACKETS,
    BatchPacket,
    Chunk,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    PacketType,
    Token,
)

MAGIC = 0x746D  # "tm"
VERSION = 1

_HEADER = struct.Struct(">HBB")
_RING = struct.Struct(">II")
_DATA_FIXED = struct.Struct(">IQH")        # sender, seq, chunk_count
_BATCH_FIXED = struct.Struct(">IQH")       # sender, first_seq, packet_count
_BATCH_SUB = struct.Struct(">H")           # chunk_count (seq is implicit)
_CHUNK_FIXED = struct.Struct(">BBIH")      # kind, flags, msg_id, len
_TOKEN_FIXED = struct.Struct(">QQIIIIIH")  # seq aru aru_id fcc backlog rotation done rtr_count
_JOIN_FIXED = struct.Struct(">IIHH")       # sender, ring_seq, proc_count, fail_count
_COMMIT_FIXED = struct.Struct(">IHH")      # rotation, member_count, info_count
_INFO_FIXED = struct.Struct(">IIIQQ")      # node, old_ring seq, old_ring rep, aru, high
_CRC = struct.Struct(">I")

#: Precompiled ``>NI`` / ``>NQ`` run formats, keyed by (letter, count).
#: Packing a token's whole rtr list (or a join's node sets) in one struct
#: call beats one ``struct.pack`` — and one format-string parse — per entry.
_RUN_STRUCTS: dict = {}


def _run_struct(letter: str, count: int) -> struct.Struct:
    key = (letter, count)
    cached = _RUN_STRUCTS.get(key)
    if cached is None:
        cached = _RUN_STRUCTS[key] = struct.Struct(f">{count}{letter}")
    return cached


#: Reusable encode buffer.  Encoding is never re-entrant (packets do not
#: nest) and the package is single-threaded per event loop, so one shared
#: bytearray amortises the allocation across every encode.
_ENCODE_BUF = bytearray()

Packet = Union[DataPacket, BatchPacket, Token, JoinMessage, CommitToken]


def _encode_ring(ring: RingId) -> bytes:
    return _RING.pack(ring.seq, ring.representative)


def _decode_ring(data: bytes, offset: int) -> Tuple[RingId, int]:
    seq, rep = _RING.unpack_from(data, offset)
    return RingId(seq=seq, representative=rep), offset + _RING.size


def encode_packet(packet: Packet) -> bytes:
    """Serialise a packet object to bytes (with trailing CRC32)."""
    fast = _fast.codec_encode
    if fast is not None:
        # The C codec handles the data-plane kinds (DATA and the BATCH
        # frame train) byte-identically; control traffic and anything
        # unusual returns NotImplemented and takes the pure path below.
        encoded = fast(packet)
        if encoded is not NotImplemented:
            return encoded
    ptype = packet.packet_type
    buf = _ENCODE_BUF
    del buf[:]
    buf += _HEADER.pack(MAGIC, VERSION, int(ptype))
    if ptype is PacketType.DATA:
        assert isinstance(packet, DataPacket)
        buf += _encode_ring(packet.ring_id)
        buf += _DATA_FIXED.pack(packet.sender, packet.seq, len(packet.chunks))
        chunk_pack = _CHUNK_FIXED.pack
        for chunk in packet.chunks:
            buf += chunk_pack(int(chunk.kind), chunk.flags, chunk.msg_id,
                              len(chunk.data))
            buf += chunk.data
    elif ptype is PacketType.BATCH:
        assert isinstance(packet, BatchPacket)
        packet.validate()
        buf += _encode_ring(packet.ring_id)
        buf += _BATCH_FIXED.pack(packet.sender, packet.first_seq,
                                 len(packet.packets))
        sub_pack = _BATCH_SUB.pack
        chunk_pack = _CHUNK_FIXED.pack
        for sub in packet.packets:
            buf += sub_pack(len(sub.chunks))
            for chunk in sub.chunks:
                buf += chunk_pack(int(chunk.kind), chunk.flags, chunk.msg_id,
                                  len(chunk.data))
                buf += chunk.data
    elif ptype is PacketType.TOKEN:
        assert isinstance(packet, Token)
        buf += _encode_ring(packet.ring_id)
        buf += _TOKEN_FIXED.pack(
            packet.seq, packet.aru, packet.aru_id, packet.fcc,
            packet.backlog, packet.rotation, packet.done_count, len(packet.rtr))
        if packet.rtr:
            buf += _run_struct("Q", len(packet.rtr)).pack(*packet.rtr)
    elif ptype is PacketType.JOIN:
        assert isinstance(packet, JoinMessage)
        buf += _JOIN_FIXED.pack(
            packet.sender, packet.ring_seq,
            len(packet.proc_set), len(packet.fail_set))
        if packet.proc_set:
            buf += _run_struct("I", len(packet.proc_set)).pack(
                *sorted(packet.proc_set))
        if packet.fail_set:
            buf += _run_struct("I", len(packet.fail_set)).pack(
                *sorted(packet.fail_set))
    elif ptype is PacketType.COMMIT_TOKEN:
        assert isinstance(packet, CommitToken)
        buf += _encode_ring(packet.ring_id)
        buf += _COMMIT_FIXED.pack(
            packet.rotation, len(packet.members), len(packet.info))
        if packet.members:
            buf += _run_struct("I", len(packet.members)).pack(*packet.members)
        for node in sorted(packet.info):
            info = packet.info[node]
            buf += _INFO_FIXED.pack(
                node, info.old_ring_id.seq, info.old_ring_id.representative,
                info.my_aru, info.high_seq)
    else:  # pragma: no cover - enum is exhaustive
        raise CodecError(f"unknown packet type {ptype!r}")
    buf += _CRC.pack(zlib.crc32(buf))
    return bytes(buf)


class PackedPacketCache:
    """Small cache of encoded packet bytes for N-network resends.

    Active replication sends the *same* packet object over every operational
    network; over the UDP transport that re-serialised identical bytes N
    times.  Entries are keyed by ``(id(packet), ring id)`` and pin the packet
    object itself, so an id can never be recycled while its entry is alive;
    a hit additionally verifies identity (``is``).  Only immutable packet
    types (:class:`DataPacket`, :class:`BatchPacket`, :class:`JoinMessage`)
    are cached — tokens are mutable by design and one stale byte image would
    corrupt the ring.
    """

    __slots__ = ("_entries", "_capacity", "hits", "misses")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._entries: dict = {}  # (id, ring) -> (packet, bytes); dicts are
        self._capacity = capacity  # insertion-ordered, evict the oldest
        self.hits = 0
        self.misses = 0

    def encode(self, packet: Packet) -> bytes:
        if not isinstance(packet, (DataPacket, BatchPacket, JoinMessage)):
            return encode_packet(packet)
        key = (id(packet), getattr(packet, "ring_id", None))
        entry = self._entries.get(key)
        if entry is not None and entry[0] is packet:
            self.hits += 1
            return entry[1]
        data = encode_packet(packet)
        self.misses += 1
        entries = self._entries
        if len(entries) >= self._capacity and key not in entries:
            entries.pop(next(iter(entries)))
        entries[key] = (packet, data)
        return data


def decode_packet(data: bytes) -> Packet:
    """Parse bytes into a packet object, verifying magic, version and CRC."""
    fast = _fast.codec_decode
    if fast is not None:
        # DATA/BATCH parse in C (same validation, same error types and
        # messages); control kinds return NotImplemented and fall through.
        packet = fast(data)
        if packet is not NotImplemented:
            return packet
    if len(data) < _HEADER.size + _CRC.size:
        raise CodecError(f"packet too short: {len(data)} bytes")
    body, crc_bytes = data[:-_CRC.size], data[-_CRC.size:]
    (expected_crc,) = _CRC.unpack(crc_bytes)
    actual_crc = zlib.crc32(body)
    if expected_crc != actual_crc:
        raise ChecksumError(
            f"CRC mismatch: expected {expected_crc:#x}, got {actual_crc:#x}")
    magic, version, type_value = _HEADER.unpack_from(body, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic:#x}")
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    try:
        ptype = PacketType(type_value)
    except ValueError as exc:
        raise CodecError(f"unknown packet type {type_value}") from exc
    offset = _HEADER.size
    try:
        if ptype is PacketType.DATA:
            return _decode_data(body, offset)
        if ptype is PacketType.BATCH:
            return _decode_batch(body, offset)
        if ptype is PacketType.TOKEN:
            return _decode_token(body, offset)
        if ptype is PacketType.JOIN:
            return _decode_join(body, offset)
        return _decode_commit(body, offset)
    except (struct.error, IndexError, ValueError) as exc:
        raise CodecError(f"truncated or malformed {ptype.name} packet") from exc


def _decode_data(body: bytes, offset: int) -> DataPacket:
    ring, offset = _decode_ring(body, offset)
    sender, seq, chunk_count = _DATA_FIXED.unpack_from(body, offset)
    offset += _DATA_FIXED.size
    chunks = []
    for _ in range(chunk_count):
        kind, flags, msg_id, length = _CHUNK_FIXED.unpack_from(body, offset)
        offset += _CHUNK_FIXED.size
        payload = body[offset:offset + length]
        if len(payload) != length:
            raise CodecError("chunk data truncated")
        offset += length
        chunks.append(Chunk(kind=ChunkKind(kind), msg_id=msg_id,
                            flags=flags, data=payload))
    return DataPacket(sender=sender, ring_id=ring, seq=seq, chunks=tuple(chunks))


def _decode_batch(body: bytes, offset: int) -> BatchPacket:
    """Decode a batch frame with zero-copy ``memoryview`` slicing.

    One memoryview spans the whole body; chunk payloads are sliced from it
    without intermediate per-packet buffer copies and only materialised to
    ``bytes`` when the :class:`Chunk` is built (chunk equality/hashing
    requires real bytes).
    """
    view = memoryview(body)
    ring, offset = _decode_ring(body, offset)
    sender, first_seq, count = _BATCH_FIXED.unpack_from(body, offset)
    offset += _BATCH_FIXED.size
    if count < 1:
        raise CodecError("batch carries no packets")
    if count > BATCH_MAX_PACKETS:
        raise CodecError(f"batch carries {count} packets "
                         f"(max {BATCH_MAX_PACKETS})")
    chunk_size = _CHUNK_FIXED.size
    packets = []
    for index in range(count):
        (chunk_count,) = _BATCH_SUB.unpack_from(body, offset)
        offset += _BATCH_SUB.size
        chunks = []
        for _ in range(chunk_count):
            kind, flags, msg_id, length = _CHUNK_FIXED.unpack_from(body, offset)
            offset += chunk_size
            payload = view[offset:offset + length]
            if len(payload) != length:
                raise CodecError("batch chunk data truncated")
            offset += length
            chunks.append(Chunk(kind=ChunkKind(kind), msg_id=msg_id,
                                flags=flags, data=bytes(payload)))
        packets.append(DataPacket(sender=sender, ring_id=ring,
                                  seq=first_seq + index, chunks=tuple(chunks)))
    if offset != len(body):
        raise CodecError(f"batch has {len(body) - offset} trailing bytes")
    return BatchPacket(packets=tuple(packets))


def _decode_token(body: bytes, offset: int) -> Token:
    ring, offset = _decode_ring(body, offset)
    (seq, aru, aru_id, fcc, backlog,
     rotation, done_count, rtr_count) = _TOKEN_FIXED.unpack_from(body, offset)
    offset += _TOKEN_FIXED.size
    rtr = list(_run_struct("Q", rtr_count).unpack_from(body, offset)) if rtr_count else []
    return Token(ring_id=ring, seq=seq, aru=aru, aru_id=aru_id, fcc=fcc,
                 backlog=backlog, rotation=rotation, rtr=rtr,
                 done_count=done_count)


def _decode_join(body: bytes, offset: int) -> JoinMessage:
    sender, ring_seq, proc_count, fail_count = _JOIN_FIXED.unpack_from(body, offset)
    offset += _JOIN_FIXED.size
    proc = _run_struct("I", proc_count).unpack_from(body, offset) if proc_count else ()
    offset += 4 * proc_count
    fail = _run_struct("I", fail_count).unpack_from(body, offset) if fail_count else ()
    return JoinMessage(sender=sender, proc_set=frozenset(proc),
                       fail_set=frozenset(fail), ring_seq=ring_seq)


def _decode_commit(body: bytes, offset: int) -> CommitToken:
    ring, offset = _decode_ring(body, offset)
    rotation, member_count, info_count = _COMMIT_FIXED.unpack_from(body, offset)
    offset += _COMMIT_FIXED.size
    members = _run_struct("I", member_count).unpack_from(body, offset) if member_count else ()
    offset += 4 * member_count
    info = {}
    for _ in range(info_count):
        node, old_seq, old_rep, aru, high = _INFO_FIXED.unpack_from(body, offset)
        offset += _INFO_FIXED.size
        info[node] = MemberInfo(old_ring_id=RingId(seq=old_seq, representative=old_rep),
                                my_aru=aru, high_seq=high)
    return CommitToken(ring_id=ring, members=tuple(members), info=info,
                       rotation=rotation)
