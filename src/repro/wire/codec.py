"""Binary codec for Totem packets.

Layout: a 4-byte common header (magic, version, packet type), a
type-specific body, and a trailing CRC32 of everything before it.  The codec
is used by the asyncio UDP transport and by fidelity tests; the simulator
carries packet objects directly.

All integers are big-endian.  Sequence numbers are 64-bit, node and ring
identifiers 32-bit.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple, Union

from ..errors import ChecksumError, CodecError
from ..types import RingId
from .packets import (
    Chunk,
    ChunkKind,
    CommitToken,
    DataPacket,
    JoinMessage,
    MemberInfo,
    PacketType,
    Token,
)

MAGIC = 0x746D  # "tm"
VERSION = 1

_HEADER = struct.Struct(">HBB")
_RING = struct.Struct(">II")
_DATA_FIXED = struct.Struct(">IQH")        # sender, seq, chunk_count
_CHUNK_FIXED = struct.Struct(">BBIH")      # kind, flags, msg_id, len
_TOKEN_FIXED = struct.Struct(">QQIIIIIH")  # seq aru aru_id fcc backlog rotation done rtr_count
_JOIN_FIXED = struct.Struct(">IIHH")       # sender, ring_seq, proc_count, fail_count
_COMMIT_FIXED = struct.Struct(">IHH")      # rotation, member_count, info_count
_INFO_FIXED = struct.Struct(">IIIQQ")      # node, old_ring seq, old_ring rep, aru, high
_CRC = struct.Struct(">I")

Packet = Union[DataPacket, Token, JoinMessage, CommitToken]


def _encode_ring(ring: RingId) -> bytes:
    return _RING.pack(ring.seq, ring.representative)


def _decode_ring(data: bytes, offset: int) -> Tuple[RingId, int]:
    seq, rep = _RING.unpack_from(data, offset)
    return RingId(seq=seq, representative=rep), offset + _RING.size


def encode_packet(packet: Packet) -> bytes:
    """Serialise a packet object to bytes (with trailing CRC32)."""
    ptype = packet.packet_type
    parts = [_HEADER.pack(MAGIC, VERSION, int(ptype))]
    if ptype is PacketType.DATA:
        assert isinstance(packet, DataPacket)
        parts.append(_encode_ring(packet.ring_id))
        parts.append(_DATA_FIXED.pack(packet.sender, packet.seq, len(packet.chunks)))
        for chunk in packet.chunks:
            parts.append(_CHUNK_FIXED.pack(
                int(chunk.kind), chunk.flags, chunk.msg_id, len(chunk.data)))
            parts.append(chunk.data)
    elif ptype is PacketType.TOKEN:
        assert isinstance(packet, Token)
        parts.append(_encode_ring(packet.ring_id))
        parts.append(_TOKEN_FIXED.pack(
            packet.seq, packet.aru, packet.aru_id, packet.fcc,
            packet.backlog, packet.rotation, packet.done_count, len(packet.rtr)))
        for seq in packet.rtr:
            parts.append(struct.pack(">Q", seq))
    elif ptype is PacketType.JOIN:
        assert isinstance(packet, JoinMessage)
        parts.append(_JOIN_FIXED.pack(
            packet.sender, packet.ring_seq,
            len(packet.proc_set), len(packet.fail_set)))
        for node in sorted(packet.proc_set):
            parts.append(struct.pack(">I", node))
        for node in sorted(packet.fail_set):
            parts.append(struct.pack(">I", node))
    elif ptype is PacketType.COMMIT_TOKEN:
        assert isinstance(packet, CommitToken)
        parts.append(_encode_ring(packet.ring_id))
        parts.append(_COMMIT_FIXED.pack(
            packet.rotation, len(packet.members), len(packet.info)))
        for node in packet.members:
            parts.append(struct.pack(">I", node))
        for node in sorted(packet.info):
            info = packet.info[node]
            parts.append(_INFO_FIXED.pack(
                node, info.old_ring_id.seq, info.old_ring_id.representative,
                info.my_aru, info.high_seq))
    else:  # pragma: no cover - enum is exhaustive
        raise CodecError(f"unknown packet type {ptype!r}")
    body = b"".join(parts)
    return body + _CRC.pack(zlib.crc32(body))


def decode_packet(data: bytes) -> Packet:
    """Parse bytes into a packet object, verifying magic, version and CRC."""
    if len(data) < _HEADER.size + _CRC.size:
        raise CodecError(f"packet too short: {len(data)} bytes")
    body, crc_bytes = data[:-_CRC.size], data[-_CRC.size:]
    (expected_crc,) = _CRC.unpack(crc_bytes)
    actual_crc = zlib.crc32(body)
    if expected_crc != actual_crc:
        raise ChecksumError(
            f"CRC mismatch: expected {expected_crc:#x}, got {actual_crc:#x}")
    magic, version, type_value = _HEADER.unpack_from(body, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic:#x}")
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    try:
        ptype = PacketType(type_value)
    except ValueError as exc:
        raise CodecError(f"unknown packet type {type_value}") from exc
    offset = _HEADER.size
    try:
        if ptype is PacketType.DATA:
            return _decode_data(body, offset)
        if ptype is PacketType.TOKEN:
            return _decode_token(body, offset)
        if ptype is PacketType.JOIN:
            return _decode_join(body, offset)
        return _decode_commit(body, offset)
    except (struct.error, IndexError, ValueError) as exc:
        raise CodecError(f"truncated or malformed {ptype.name} packet") from exc


def _decode_data(body: bytes, offset: int) -> DataPacket:
    ring, offset = _decode_ring(body, offset)
    sender, seq, chunk_count = _DATA_FIXED.unpack_from(body, offset)
    offset += _DATA_FIXED.size
    chunks = []
    for _ in range(chunk_count):
        kind, flags, msg_id, length = _CHUNK_FIXED.unpack_from(body, offset)
        offset += _CHUNK_FIXED.size
        payload = body[offset:offset + length]
        if len(payload) != length:
            raise CodecError("chunk data truncated")
        offset += length
        chunks.append(Chunk(kind=ChunkKind(kind), msg_id=msg_id,
                            flags=flags, data=payload))
    return DataPacket(sender=sender, ring_id=ring, seq=seq, chunks=tuple(chunks))


def _decode_token(body: bytes, offset: int) -> Token:
    ring, offset = _decode_ring(body, offset)
    (seq, aru, aru_id, fcc, backlog,
     rotation, done_count, rtr_count) = _TOKEN_FIXED.unpack_from(body, offset)
    offset += _TOKEN_FIXED.size
    rtr = []
    for _ in range(rtr_count):
        (entry,) = struct.unpack_from(">Q", body, offset)
        offset += 8
        rtr.append(entry)
    return Token(ring_id=ring, seq=seq, aru=aru, aru_id=aru_id, fcc=fcc,
                 backlog=backlog, rotation=rotation, rtr=rtr,
                 done_count=done_count)


def _decode_join(body: bytes, offset: int) -> JoinMessage:
    sender, ring_seq, proc_count, fail_count = _JOIN_FIXED.unpack_from(body, offset)
    offset += _JOIN_FIXED.size
    proc = []
    for _ in range(proc_count):
        (node,) = struct.unpack_from(">I", body, offset)
        offset += 4
        proc.append(node)
    fail = []
    for _ in range(fail_count):
        (node,) = struct.unpack_from(">I", body, offset)
        offset += 4
        fail.append(node)
    return JoinMessage(sender=sender, proc_set=frozenset(proc),
                       fail_set=frozenset(fail), ring_seq=ring_seq)


def _decode_commit(body: bytes, offset: int) -> CommitToken:
    ring, offset = _decode_ring(body, offset)
    rotation, member_count, info_count = _COMMIT_FIXED.unpack_from(body, offset)
    offset += _COMMIT_FIXED.size
    members = []
    for _ in range(member_count):
        (node,) = struct.unpack_from(">I", body, offset)
        offset += 4
        members.append(node)
    info = {}
    for _ in range(info_count):
        node, old_seq, old_rep, aru, high = _INFO_FIXED.unpack_from(body, offset)
        offset += _INFO_FIXED.size
        info[node] = MemberInfo(old_ring_id=RingId(seq=old_seq, representative=old_rep),
                                my_aru=aru, high_seq=high)
    return CommitToken(ring_id=ring, members=tuple(members), info=info,
                       rotation=rotation)
