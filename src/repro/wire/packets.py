"""Packet dataclasses for the Totem SRP/RRP wire protocol.

Sizing convention: the paper's 94-byte per-frame overhead (§8) covers the
Ethernet, IPv4, UDP *and fixed Totem* headers, leaving 1424 bytes of payload
per maximum-size frame.  ``wire_size()`` therefore reports only the bytes a
packet occupies *inside* that payload budget: chunk headers + chunk data for
data packets, and the variable body for tokens/membership packets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..types import NodeId, RingId, SeqNum

#: Bytes of framing per packed chunk: kind(1) + flags(1) + msg_id(4) + len(2).
CHUNK_HEADER_BYTES = 8

#: Fixed body bytes of a batch frame: ring(8) + sender(4) + first_seq(8)
#: + packet count(2).
BATCH_BASE_BYTES = 22
#: Framing bytes per packet carried in a batch (chunk count; the packet's
#: sender/ring are shared and its seq is implicit from ``first_seq``).
BATCH_SUB_HEADER_BYTES = 2
#: Maximum packets one batch frame may carry (bounds decode allocation).
BATCH_MAX_PACKETS = 64

#: Fixed body bytes of a regular token (counted against the payload budget).
TOKEN_BASE_BYTES = 56
#: Bytes per retransmission-request entry in a token.
TOKEN_RTR_ENTRY_BYTES = 8
#: Maximum retransmission requests one token carries.
TOKEN_MAX_RTR = 48


class PacketType(enum.IntEnum):
    """On-the-wire discriminator for the five packet families."""

    DATA = 1
    TOKEN = 2
    JOIN = 3
    COMMIT_TOKEN = 4
    BATCH = 5


class ChunkKind(enum.IntEnum):
    """What a packed chunk contains."""

    #: A (fragment of an) application message.
    APP = 0
    #: An old-ring data packet encapsulated for membership recovery.
    ENCAPSULATED = 1


class ChunkFlags(enum.IntFlag):
    """Fragmentation flags on a chunk."""

    NONE = 0
    FIRST = 1
    LAST = 2


#: Plain-int flag masks.  ``IntFlag.__and__`` costs an enum construction per
#: call, which dominates profiles of per-chunk checks on the delivery path;
#: the hot code tests against these ints instead.
FLAG_FIRST = int(ChunkFlags.FIRST)
FLAG_LAST = int(ChunkFlags.LAST)
FLAG_WHOLE = FLAG_FIRST | FLAG_LAST


@dataclass(frozen=True)
class Chunk:
    """One packed unit inside a :class:`DataPacket`.

    ``msg_id`` is scoped to the sending node and identifies which application
    message a fragment belongs to; ``flags`` mark the first/last fragment.
    An unfragmented message carries ``FIRST | LAST`` in a single chunk.
    """

    kind: ChunkKind
    msg_id: int
    flags: int
    data: bytes

    @property
    def is_first(self) -> bool:
        return bool(self.flags & FLAG_FIRST)

    @property
    def is_last(self) -> bool:
        return bool(self.flags & FLAG_LAST)

    def wire_size(self) -> int:
        return CHUNK_HEADER_BYTES + len(self.data)

    @staticmethod
    def whole(msg_id: int, data: bytes, kind: ChunkKind = ChunkKind.APP) -> "Chunk":
        """A chunk holding an entire (unfragmented) message."""
        return Chunk(kind=kind, msg_id=msg_id, flags=FLAG_WHOLE, data=data)


@dataclass(frozen=True)
class DataPacket:
    """A sequenced broadcast packet (paper §2).

    The broadcaster stamps ``seq`` from the token; receivers deliver packets
    in ``seq`` order, which yields the global total order.
    """

    sender: NodeId
    ring_id: RingId
    seq: SeqNum
    chunks: Tuple[Chunk, ...]
    #: Lazily cached wire size.  A packet is sized several times on its way
    #: through send-cost, medium-occupancy and receive-cost accounting (×N
    #: networks); excluded from ==/hash so codec round-trips stay exact.
    _wire_size: Optional[int] = field(default=None, compare=False, repr=False,
                                      init=False)

    def wire_size(self) -> int:
        size = self._wire_size
        if size is None:
            size = (CHUNK_HEADER_BYTES * len(self.chunks)
                    + sum(len(c.data) for c in self.chunks))
            object.__setattr__(self, "_wire_size", size)
        return size

    @property
    def packet_type(self) -> PacketType:
        return PacketType.DATA


@dataclass(frozen=True)
class BatchPacket:
    """A train of consecutively sequenced data packets from one sender.

    Batching amortises one broadcast (and its per-frame CPU and framing
    overheads) over every message a node sequences during a single token
    visit.  The shared header carries the sender, ring and first sequence
    number once; each carried packet contributes only its chunk vector, its
    sequence number being implicit (``first_seq + index``).

    Invariants (enforced by the codec on decode, relied on by the SRP):
    at least one packet; every packet shares ``sender`` and ``ring_id`` with
    the batch; sequence numbers are contiguous ascending from ``first_seq``.
    Senders build batches from their own token-visit send loop, which
    produces exactly this shape.  Retransmissions and membership-recovery
    traffic never ride in batches.
    """

    packets: Tuple[DataPacket, ...]
    #: Lazily cached wire size (see :class:`DataPacket`).
    _wire_size: Optional[int] = field(default=None, compare=False, repr=False,
                                      init=False)

    @property
    def sender(self) -> NodeId:
        return self.packets[0].sender

    @property
    def ring_id(self) -> RingId:
        return self.packets[0].ring_id

    @property
    def first_seq(self) -> SeqNum:
        return self.packets[0].seq

    @property
    def last_seq(self) -> SeqNum:
        return self.packets[-1].seq

    def wire_size(self) -> int:
        size = self._wire_size
        if size is None:
            size = BATCH_BASE_BYTES + BATCH_SUB_HEADER_BYTES * len(self.packets)
            for packet in self.packets:
                size += packet.wire_size()
            object.__setattr__(self, "_wire_size", size)
        return size

    @property
    def packet_type(self) -> PacketType:
        return PacketType.BATCH

    def validate(self) -> None:
        """Raise ``ValueError`` unless the batch invariants hold."""
        if not self.packets:
            raise ValueError("batch carries no packets")
        if len(self.packets) > BATCH_MAX_PACKETS:
            raise ValueError(f"batch carries {len(self.packets)} packets "
                             f"(max {BATCH_MAX_PACKETS})")
        first = self.packets[0]
        for index, packet in enumerate(self.packets):
            if packet.sender != first.sender or packet.ring_id != first.ring_id:
                raise ValueError("batch packets mix senders or rings")
            if packet.seq != first.seq + index:
                raise ValueError("batch sequence numbers are not contiguous")


@dataclass
class Token:
    """The regular circulating token (paper §2).

    Mutable by design: each node updates the token before forwarding it.
    Receivers must :meth:`copy` a token before mutating it because the
    simulator hands the same object to the RRP layer on several networks.

    Fields follow the Totem SRP:

    * ``seq`` — sequence number of the last message broadcast on the ring,
    * ``aru`` / ``aru_id`` — all-received-up-to consensus for stability,
    * ``fcc`` — messages broadcast during the last rotation (flow control),
    * ``backlog`` — sum of senders' queued messages (flow control),
    * ``rotation`` — incremented by the ring leader each full rotation so an
      idle ring's retransmitted token is distinguishable (paper §2 footnote),
    * ``rtr`` — outstanding retransmission requests,
    * ``done_count`` — consecutive "recovery finished" votes (membership
      recovery; unused in operational state).
    """

    ring_id: RingId
    seq: SeqNum = 0
    aru: SeqNum = 0
    aru_id: NodeId = 0
    fcc: int = 0
    backlog: int = 0
    rotation: int = 0
    rtr: List[SeqNum] = field(default_factory=list)
    done_count: int = 0

    @property
    def stamp(self) -> Tuple[int, int]:
        """Total order on token instances of one ring: (seq, rotation).

        A retransmitted token compares equal to the original; every genuinely
        new token compares strictly greater (the leader bumps ``rotation``
        each full rotation even when ``seq`` is unchanged).
        """
        return (self.seq, self.rotation)

    def copy(self) -> "Token":
        return replace(self, rtr=list(self.rtr))

    def wire_size(self) -> int:
        return TOKEN_BASE_BYTES + TOKEN_RTR_ENTRY_BYTES * len(self.rtr)

    @property
    def packet_type(self) -> PacketType:
        return PacketType.TOKEN


@dataclass(frozen=True)
class JoinMessage:
    """Membership gather-state broadcast (Totem SRP membership).

    ``proc_set`` is the set of nodes the sender believes should form the new
    ring; ``fail_set`` the nodes it has given up on.  ``ring_seq`` is the
    highest ring-id sequence the sender has seen, so the new ring id can be
    chosen greater than every old one.
    """

    sender: NodeId
    proc_set: FrozenSet[NodeId]
    fail_set: FrozenSet[NodeId]
    ring_seq: int

    def wire_size(self) -> int:
        return 24 + 8 * (len(self.proc_set) + len(self.fail_set))

    @property
    def packet_type(self) -> PacketType:
        return PacketType.JOIN


@dataclass(frozen=True)
class MemberInfo:
    """Per-member old-ring state collected on the commit token's first pass."""

    old_ring_id: RingId
    my_aru: SeqNum
    high_seq: SeqNum


@dataclass
class CommitToken:
    """Membership commit token (Totem SRP membership).

    Circulates twice around the prospective new ring: the first pass collects
    each member's old-ring state, the second pass distributes the complete
    picture so every member can plan recovery identically.
    """

    ring_id: RingId
    members: Tuple[NodeId, ...]
    info: Dict[NodeId, MemberInfo] = field(default_factory=dict)
    rotation: int = 0

    def copy(self) -> "CommitToken":
        return replace(self, info=dict(self.info))

    def successor_of(self, node: NodeId) -> NodeId:
        idx = self.members.index(node)
        return self.members[(idx + 1) % len(self.members)]

    def wire_size(self) -> int:
        return 32 + 8 * len(self.members) + 32 * len(self.info)

    @property
    def packet_type(self) -> PacketType:
        return PacketType.COMMIT_TOKEN


def packet_type_of(packet: object) -> PacketType:
    """The :class:`PacketType` of any wire object (raises for non-packets)."""
    ptype = getattr(packet, "packet_type", None)
    if ptype is None:
        raise TypeError(f"not a Totem packet: {packet!r}")
    return ptype
