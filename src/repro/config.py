"""Configuration for the Totem SRP/RRP stack and the simulated testbed.

Two dataclasses:

* :class:`TotemConfig` — protocol parameters (replication style, timers,
  flow-control window, monitor thresholds).  Defaults follow the paper where
  it gives numbers (e.g. the 10 ms passive token timer in §6) and the Totem
  SRP literature elsewhere.
* :class:`LanConfig` — the simulated Ethernet testbed (bandwidth, frame
  sizes, header overhead, CPU cost model).  Defaults model the paper's
  100 Mbit/s Ethernet with 1518-byte frames and 94 bytes of header overhead,
  i.e. a 1424-byte maximum payload per frame (§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .types import ReplicationStyle


@dataclass(frozen=True)
class TotemConfig:
    """Protocol parameters for one Totem node.

    All durations are in seconds (the simulator uses a virtual clock with
    microsecond-scale events; the asyncio transport uses wall-clock time).
    """

    # ----- replication (the RRP layer, paper §4-§7) -----
    #: Which replication style the RRP layer uses.
    replication: ReplicationStyle = ReplicationStyle.ACTIVE
    #: Number of redundant networks N.
    num_networks: int = 2
    #: For ACTIVE_PASSIVE: number of copies K sent per message/token (1<K<N).
    active_passive_k: int = 2

    # ----- RRP timers and monitors -----
    #: Active replication: how long to wait for the remaining token copies
    #: after the first copy of a new token arrives (paper §5, requirement A4).
    active_token_timeout: float = 0.002
    #: Passive replication: how long a token may sit in the token buffer
    #: waiting for missing messages (paper §6 uses 10 ms).
    passive_token_timeout: float = 0.010
    #: Active replication: problem-counter value at which a network is
    #: declared faulty (paper §5, requirement A5).
    problem_counter_threshold: int = 10
    #: Active replication: interval at which problem counters are decremented
    #: so sporadic loss never accumulates into a false alarm (A6).  The decay
    #: rate (1/interval) bounds the sporadic token-loss rate the detector
    #: tolerates indefinitely; a genuinely failed network drives the counter
    #: up at the token rotation rate, orders of magnitude faster.
    problem_counter_decay_interval: float = 0.2
    #: Passive replication: receive-count difference at which the lagging
    #: network is declared faulty (paper §6 / Figure 5, requirement P4).
    recv_count_threshold: int = 50
    #: Passive replication: interval at which lagging receive counters are
    #: topped up by one so sporadic loss is forgiven (P5).
    recv_count_topup_interval: float = 0.5

    # ----- SRP timers -----
    #: Token retransmission interval: a node re-sends its last token until it
    #: sees evidence the successor received it (paper §2).
    token_retransmit_interval: float = 0.005
    #: Token loss timeout: no token for this long starts the membership
    #: protocol (paper §2).
    token_loss_timeout: float = 0.100
    #: Gather state: how long to wait for join consensus to settle.
    join_timeout: float = 0.050
    #: Gather state: how long before unresponsive nodes land in the fail set.
    consensus_timeout: float = 0.200
    #: How long joins from a node that accused us of failure (i.e. it cannot
    #: hear us) are ignored while we are operational.  Without this, a node
    #: whose receive paths are all dead drags the surviving ring through a
    #: reconfiguration every time it restarts its own gather.
    rejoin_quarantine: float = 0.5
    #: Interval at which an operational ring's representative broadcasts a
    #: presence beacon (a stale join message).  Idle rings exchange no
    #: broadcasts — tokens are unicast — so without beacons two idle rings
    #: sharing the networks would never notice each other and merge.
    #: 0 disables beacons.
    presence_interval: float = 1.0

    # ----- SRP flow control and packing -----
    #: Global flow-control window: max messages broadcast per token rotation.
    window_size: int = 80
    #: Per-visit cap: max messages one node broadcasts per token visit.
    max_messages_per_token: int = 20
    #: Capacity of the application send queue (messages).
    send_queue_capacity: int = 2048
    #: Maximum payload bytes per wire packet: the paper's 1424-byte maximum
    #: Ethernet payload (1518-byte frame minus 94 bytes of headers, §8).
    #: Chunk packing headers count against this budget; the fixed Totem
    #: packet header is part of the 94-byte overhead.
    max_packet_payload: int = 1424
    #: Whether to pack several small application messages into one packet.
    enable_packing: bool = True
    #: Whether a token visit's freshly sequenced packets are broadcast as a
    #: single :class:`~repro.wire.packets.BatchPacket` frame train instead
    #: of one frame per packet.  Amortises per-frame CPU and framing costs
    #: (the Ring-Paxos-style batching lever); delivery order and content
    #: are identical either way.  Off by default: seed-pinned campaign
    #: replays and explorer digests predate batch frames, and single-frame
    #: traffic keeps fault granularity at one packet per loss draw.
    enable_batching: bool = False
    #: When True, hold message delivery until the message is *safe* (known
    #: received by every ring member) instead of delivering in agreed order.
    safe_delivery: bool = False

    # ----- identifiers -----
    #: Seed for any randomized protocol decisions (none in the core protocol,
    #: but kept here so a node is a pure function of its config).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_networks < 1:
            raise ConfigError("num_networks must be >= 1")
        if self.replication is ReplicationStyle.NONE and self.num_networks != 1:
            raise ConfigError("NONE replication requires exactly 1 network")
        if (
            self.replication
            in (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)
            and self.num_networks < 2
        ):
            raise ConfigError(
                f"{self.replication.value} replication requires >= 2 networks"
            )
        if self.replication is ReplicationStyle.ACTIVE_PASSIVE:
            if self.num_networks < 3:
                raise ConfigError("active-passive requires >= 3 networks (paper §7)")
            if not 1 < self.active_passive_k < self.num_networks:
                raise ConfigError("active-passive requires 1 < K < N (paper §4)")
        if self.window_size < 1 or self.max_messages_per_token < 1:
            raise ConfigError("flow control window parameters must be >= 1")
        if self.max_packet_payload < 64:
            raise ConfigError("max_packet_payload unreasonably small")
        for name in (
            "active_token_timeout",
            "passive_token_timeout",
            "token_retransmit_interval",
            "token_loss_timeout",
            "join_timeout",
            "consensus_timeout",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def with_style(self, style: ReplicationStyle, num_networks: Optional[int] = None) -> "TotemConfig":
        """A copy of this config with a different replication style.

        ``num_networks`` defaults to whatever the style minimally needs.
        """
        if num_networks is None:
            if style is ReplicationStyle.NONE:
                num_networks = 1
            elif style is ReplicationStyle.ACTIVE_PASSIVE:
                num_networks = max(self.num_networks, 3)
            else:
                num_networks = max(self.num_networks, 2)
        return replace(self, replication=style, num_networks=num_networks)


@dataclass(frozen=True)
class LanConfig:
    """Parameters of one simulated Ethernet LAN and the node CPU model.

    The defaults reproduce the paper's testbed arithmetic: 100 Mbit/s
    Ethernet, 1518-byte maximum frame, 94 bytes of Ethernet + IPv4 + UDP +
    Totem header overhead, hence 1424 bytes of Totem payload per frame (§8).

    The CPU cost model is what makes the evaluation's *shape* come out: the
    paper attributes active replication's throughput loss to "doubling the
    number of calls to the network protocol stack" and passive replication's
    sub-2x scaling to per-message protocol processing.  We model:

    * ``cpu_per_send`` — one network-stack traversal to transmit one frame,
    * ``cpu_per_recv`` — one stack traversal to receive one frame,
    * ``cpu_per_dup_recv`` — receiving a frame that is then discarded as a
      duplicate (cheaper: it is dropped before ordering/delivery work),
    * ``cpu_per_msg`` — per-application-message protocol work (sequencing,
      ordering, liveness bookkeeping, delivery).
    """

    #: Link/medium bandwidth in bits per second.
    bandwidth_bps: float = 100_000_000.0
    #: Propagation + switch forwarding latency per frame, seconds.
    latency: float = 20e-6
    #: Maximum Ethernet frame size in bytes (header + payload).
    max_frame: int = 1518
    #: Ethernet + IPv4 + UDP + Totem header overhead per frame, bytes.
    frame_overhead: int = 94
    #: Minimum frame size on the wire, bytes.
    min_frame: int = 64
    #: Independent per-frame loss probability (sporadic omission faults).
    loss_rate: float = 0.0

    # ----- node CPU model (seconds per operation) -----
    # Calibrated (see EXPERIMENTS.md) so the unreplicated baseline saturates
    # the wire near the paper's 9,000+ 1-Kbyte msgs/s at ~90 % utilisation,
    # passive replication becomes CPU-bound 2,000-4,000 KB/s above it, and
    # active replication pays the paper's 1,000-1,500 msgs/s for its doubled
    # stack calls and duplicate receives.  Per-byte terms model the copy
    # chain (NIC -> kernel -> user -> ordering buffer) of the paper's
    # late-90s hardware; per-operation terms model fixed stack-call costs.
    cpu_per_send: float = 12e-6
    cpu_per_recv: float = 25e-6
    cpu_per_dup_recv: float = 8e-6
    cpu_per_msg: float = 45e-6
    cpu_per_byte_send: float = 0.0
    cpu_per_byte_recv: float = 0.0
    cpu_per_byte_dup: float = 16e-9

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.max_frame <= self.frame_overhead:
            raise ConfigError("max_frame must exceed frame_overhead")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigError("loss_rate must be in [0, 1)")

    @property
    def max_payload(self) -> int:
        """Maximum Totem payload bytes per frame (1424 with defaults)."""
        return self.max_frame - self.frame_overhead

    def wire_time(self, payload_bytes: int) -> float:
        """Seconds the medium is occupied transmitting ``payload_bytes``."""
        frame = max(self.min_frame, payload_bytes + self.frame_overhead)
        return frame * 8.0 / self.bandwidth_bps


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build a simulated cluster deterministically."""

    num_nodes: int = 4
    totem: TotemConfig = field(default_factory=TotemConfig)
    lan: LanConfig = field(default_factory=LanConfig)
    seed: int = 1
    #: Online protocol-invariant checking (:mod:`repro.check`): ``"off"``
    #: (default — benchmarks measure the protocol, not the checker),
    #: ``"observe"`` (record violations) or ``"strict"`` (raise on the
    #: first violation).  The test suite turns this on cluster-wide.
    invariants: str = "off"
    #: Telemetry (:mod:`repro.obs`): ``"off"`` (default — the hot path pays
    #: nothing), ``"sampled"`` (periodic read-only sampling of existing
    #: counters every ``obs_interval`` virtual seconds) or ``"full"``
    #: (sampling plus per-event hooks: rotation histograms, token-timeout
    #: and token-loss events).
    obs: str = "off"
    #: Virtual-time sampling period for ``obs`` modes (seconds).
    obs_interval: float = 0.01

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.invariants not in ("off", "observe", "strict"):
            raise ConfigError(
                f"invariants must be 'off', 'observe' or 'strict', "
                f"got {self.invariants!r}")
        if self.obs not in ("off", "sampled", "full"):
            raise ConfigError(
                f"obs must be 'off', 'sampled' or 'full', got {self.obs!r}")
        if self.obs_interval <= 0:
            raise ConfigError("obs_interval must be positive")
