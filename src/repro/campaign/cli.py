"""Command-line entry point for the fault-campaign harness.

Examples::

    totem-campaign run tests/scenarios/*.json        # replay the corpus
    totem-campaign run --batch 20 --seed 1           # randomized campaign
    totem-campaign run --batch 50 --minimize-on-failure --out-dir cases/
    totem-campaign replay cases/batch-7.min.json     # deterministic rerun
    totem-campaign minimize cases/failing.json --out-dir cases/
    python -m repro.campaign run --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..errors import ConfigError
from ..types import ReplicationStyle
from .generate import BATCH_STYLES, random_scenario
from .minimize import minimize_scenario
from .runner import CampaignResult, run_scenario
from .scenario import Scenario, load_scenario, save_scenario

_STYLE_BY_NAME = {style.value: style for style in BATCH_STYLES}


def _positive(kind, name):
    def parse(text):
        value = kind(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"{name} must be positive")
        return value
    return parse


def _status_line(result: CampaignResult) -> str:
    status = ("ok" if result.ok
              else f"{len(result.violations)} violation(s)")
    return (f"{result.scenario.name:<30} "
            f"{result.scenario.style.value:<15} "
            f"seed={result.scenario.seed:<6} "
            f"delivered={result.delivered_total:<6} {status}")


def _write_case(scenario: Scenario, out_dir: str, suffix: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{scenario.name.replace(':', '_')}{suffix}")
    save_scenario(scenario, path)
    return path


def _write_forensics(scenario: Scenario, out_dir: str) -> str:
    """Re-run a (minimized) case with telemetry and dump the run document."""
    import json

    from ..obs.export import build_run_document

    result = run_scenario(scenario, obs="sampled", check_twin=False,
                          keep_cluster=True)
    document = build_run_document(
        result.cluster,
        meta={"campaign_scenario": scenario.name,
              "violations": [str(v) for v in result.violations]})
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"{scenario.name.replace(':', '_')}.obs.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _minimize_and_emit(scenario: Scenario, out_dir: str) -> int:
    try:
        minimized = minimize_scenario(scenario)
    except ValueError as exc:
        print(f"minimize: {exc}", file=sys.stderr)
        return 2
    case_path = _write_case(minimized.scenario, out_dir, ".min.json")
    obs_path = _write_forensics(minimized.scenario, out_dir)
    print(f"{minimized.summary()}", file=sys.stderr)
    print(f"  case file: {case_path}", file=sys.stderr)
    print(f"  forensics: {obs_path}", file=sys.stderr)
    return 1


def _load_scenarios(args: argparse.Namespace) -> List[Scenario]:
    scenarios: List[Scenario] = []
    for path in args.files:
        scenarios.append(load_scenario(path))
    if args.batch:
        count = 1 if args.quick else args.batch
        for i in range(count):
            scenarios.append(random_scenario(
                args.seed + i,
                style=(None if args.style is None
                       else _STYLE_BY_NAME[args.style]),
                num_nodes=args.nodes,
                duration=0.5 if args.quick else args.duration))
    if not scenarios:
        raise ConfigError("nothing to run: pass case files or --batch N")
    return scenarios


def _cmd_run(args: argparse.Namespace) -> int:
    started = time.time()
    scenarios = _load_scenarios(args)
    failures = 0
    for scenario in scenarios:
        result = run_scenario(scenario)
        if not args.quiet:
            print(_status_line(result), file=sys.stderr)
        if result.ok:
            continue
        failures += 1
        print(result.replay_text, end="")
        if args.minimize_on_failure:
            _minimize_and_emit(scenario, args.out_dir)
    verdict = ("PASS: all scenarios conformant" if not failures
               else f"FAIL: {failures}/{len(scenarios)} scenario(s) violated "
                    f"the delivery contract")
    print(verdict)
    print(f"[{len(scenarios)} scenario(s) in {time.time() - started:.1f}s "
          f"wall clock]", file=sys.stderr)
    return 0 if not failures else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.file)
    result = run_scenario(scenario)
    # The replay text is the byte-stable contract: same case file, same
    # seed, same bytes on stdout — diffable across machines and commits.
    print(result.replay_text, end="")
    return 0 if result.ok else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.file)
    return _minimize_and_emit(scenario, args.out_dir)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="totem-campaign",
        description="Fault-campaign conformance harness: run scripted "
                    "fault scenarios against the simulated cluster and "
                    "check the application-visible delivery guarantees "
                    "(agreement, total order, SMR convergence, fault "
                    "transparency).")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run scenario case files and/or a randomized batch")
    run.add_argument("files", nargs="*", help="scenario case files (JSON)")
    run.add_argument("--batch", type=_positive(int, "--batch"), default=0,
                     help="also run N generated scenarios")
    run.add_argument("--seed", type=int, default=1,
                     help="base seed for --batch (member i uses seed+i)")
    run.add_argument("--style", choices=sorted(_STYLE_BY_NAME),
                     help="restrict generated scenarios to one style")
    run.add_argument("--nodes", type=_positive(int, "--nodes"), default=4,
                     help="cluster size for generated scenarios")
    run.add_argument("--duration", type=_positive(float, "--duration"),
                     default=1.0,
                     help="scripted window for generated scenarios")
    run.add_argument("--minimize-on-failure", action="store_true",
                     help="delta-debug every failing scenario and write "
                          "minimized case + obs forensics files")
    run.add_argument("--out-dir", default="campaign-cases",
                     help="directory for minimized case files")
    run.add_argument("--quick", action="store_true",
                     help="one short generated scenario (smoke test)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-scenario progress on stderr")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser(
        "replay", help="re-run one case file; byte-identical output per seed")
    replay.add_argument("file", help="scenario case file (JSON)")
    replay.set_defaults(func=_cmd_replay)

    minimize = sub.add_parser(
        "minimize", help="delta-debug a failing case file to a minimal "
                         "fault timeline")
    minimize.add_argument("file", help="failing scenario case file (JSON)")
    minimize.add_argument("--out-dir", default="campaign-cases",
                          help="directory for the minimized case + "
                               "forensics files")
    minimize.set_defaults(func=_cmd_minimize)

    args = parser.parse_args(argv)
    if args.command == "run" and args.quick and not args.batch:
        args.batch = 1
    try:
        return args.func(args)
    except (ConfigError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
