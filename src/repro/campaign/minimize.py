"""Delta-debugging failing scenarios down to a minimal fault timeline.

Classic ddmin (Zeller & Hildebrandt) over the scenario's *fault* events —
the workload is the experiment's stimulus and is kept intact, so the
minimized case answers "which injected faults are actually needed to
break the guarantee?".  Because every candidate run is deterministic, the
search needs no retries and the result is reproducible: the same failing
case file always minimizes to the same timeline.

The minimizer finishes with a greedy one-at-a-time elimination pass, so
the result is 1-minimal: removing any single remaining fault event makes
the scenario pass again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .runner import run_scenario
from .scenario import Scenario, TimelineEvent


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    scenario: Scenario
    #: Fault-event count before and after.
    original_events: int
    minimized_events: int
    #: Candidate scenario runs spent in the search.
    runs: int

    def summary(self) -> str:
        return (f"minimized {self.original_events} -> "
                f"{self.minimized_events} fault event(s) "
                f"in {self.runs} run(s)")


def default_predicate(scenario: Scenario) -> bool:
    """Whether the scenario still fails (any conformance violation)."""
    return not run_scenario(scenario).ok


def _rebuild(scenario: Scenario, faults: Sequence[TimelineEvent]) -> Scenario:
    """The scenario with only ``faults`` kept (workload untouched).

    A partial timeline can orphan a ``restart`` (its ``crash`` was dropped),
    which the DSL rejects; the candidate is patched by dropping orphaned
    restarts so ddmin can explore such subsets instead of crashing.
    """
    kept = set(faults)
    events: List[TimelineEvent] = []
    crashed: set = set()
    for event in scenario.events:
        if event.kind not in ("crash", "restart"):
            if event.kind in ("burst",) or event in kept:
                events.append(event)
            continue
        if event not in kept:
            if event.kind == "crash":
                crashed.discard(event.params["node"])
            continue
        if event.kind == "crash":
            crashed.add(event.params["node"])
            events.append(event)
        elif event.params["node"] in crashed:
            crashed.discard(event.params["node"])
            events.append(event)
    return scenario.with_events(events, name=f"{scenario.name}::min")


def minimize_scenario(
        scenario: Scenario,
        predicate: Optional[Callable[[Scenario], bool]] = None,
        max_runs: int = 200) -> MinimizeResult:
    """ddmin the fault timeline of a failing scenario.

    ``predicate(candidate) -> bool`` must return True while the candidate
    still fails; it defaults to "run it and check for violations".
    Raises ``ValueError`` if the input scenario does not fail at all.
    """
    fails = predicate if predicate is not None else default_predicate
    runs = 0

    def test(faults: Sequence[TimelineEvent]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return fails(_rebuild(scenario, faults))

    faults: List[TimelineEvent] = list(scenario.fault_events)
    if not test(faults):
        raise ValueError(
            f"scenario {scenario.name!r} does not fail; nothing to minimize")
    original = len(faults)

    granularity = 2
    while len(faults) >= 2:
        chunk = max(1, len(faults) // granularity)
        subsets = [faults[i:i + chunk] for i in range(0, len(faults), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        for subset in subsets:
            if len(subset) < len(faults) and test(subset):
                faults = list(subset)
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(subsets)):
                complement = [e for j, s in enumerate(subsets) if j != i
                              for e in s]
                if complement and len(complement) < len(faults) \
                        and test(complement):
                    faults = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(faults):
                break
            granularity = min(len(faults), granularity * 2)

    # Greedy 1-minimality pass: drop any single event that is not needed.
    i = 0
    while i < len(faults) and runs < max_runs:
        candidate = faults[:i] + faults[i + 1:]
        if candidate and test(candidate):
            faults = candidate
        elif not candidate:
            break
        else:
            i += 1

    return MinimizeResult(
        scenario=_rebuild(scenario, faults),
        original_events=original,
        minimized_events=len(faults),
        runs=runs)
