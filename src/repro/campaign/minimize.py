"""Delta-debugging failing scenarios down to a minimal fault timeline.

Classic ddmin (Zeller & Hildebrandt) over the scenario's *fault* events —
the workload is the experiment's stimulus and is kept intact, so the
minimized case answers "which injected faults are actually needed to
break the guarantee?".  Because every candidate run is deterministic, the
search needs no retries and the result is reproducible: the same failing
case file always minimizes to the same timeline.

The minimizer finishes with a greedy one-at-a-time elimination pass, so
the result is 1-minimal: removing any single remaining fault event makes
the scenario pass again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .runner import run_scenario
from .scenario import WORKLOAD_KINDS, Scenario, TimelineEvent


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    scenario: Scenario
    #: Fault-event count before and after.
    original_events: int
    minimized_events: int
    #: Candidate scenario runs spent in the search.
    runs: int

    def summary(self) -> str:
        return (f"minimized {self.original_events} -> "
                f"{self.minimized_events} fault event(s) "
                f"in {self.runs} run(s)")


def default_predicate(scenario: Scenario) -> bool:
    """Whether the scenario still fails (any conformance violation)."""
    return not run_scenario(scenario).ok


def _rebuild(scenario: Scenario, faults: Sequence[TimelineEvent]) -> Scenario:
    """The scenario with only ``faults`` kept (workload untouched).

    ``faults`` is always an in-order subsequence of the scenario's fault
    events (ddmin only ever slices the list), so selection is positional on
    object identity — a structural-membership set would resurrect a dropped
    event whenever the timeline holds two identical entries, making
    duplicates unremovable.

    A partial timeline can also leave events dangling: a ``restart`` whose
    ``crash`` was dropped (the DSL rejects it) or a ``heal_all`` /
    ``restore_network`` whose introducing fault was dropped (a dead no-op
    that would pad the "minimal" result).  Both are pruned so ddmin can
    explore every subset and the output timeline carries no dead weight.
    """
    keep = list(faults)
    index = 0
    events: List[TimelineEvent] = []
    crashed: set = set()
    dirty: set = set()       # networks with injected fault state
    partitioned = False      # a partition_all is in effect
    for event in scenario.events:
        if event.kind in WORKLOAD_KINDS:
            events.append(event)
            continue
        if index < len(keep) and keep[index] is event:
            index += 1
        else:
            continue
        if event.kind == "crash":
            crashed.add(event.params["node"])
        elif event.kind == "restart":
            if event.params["node"] not in crashed:
                continue     # dangling: its crash was dropped
            crashed.discard(event.params["node"])
        elif event.kind == "heal_all":
            if not dirty and not partitioned:
                continue     # dangling: nothing left to heal
            dirty.clear()
            partitioned = False
        elif event.kind == "restore_network":
            if event.params["network"] not in dirty and not partitioned:
                continue     # dangling: that network is already clean
            dirty.discard(event.params["network"])
        elif event.kind == "partition_all":
            partitioned = True
        else:                # the network-level fault vocabulary
            dirty.add(event.params["network"])
        events.append(event)
    return scenario.with_events(events, name=f"{scenario.name}::min")


def minimize_scenario(
        scenario: Scenario,
        predicate: Optional[Callable[[Scenario], bool]] = None,
        max_runs: int = 200) -> MinimizeResult:
    """ddmin the fault timeline of a failing scenario.

    ``predicate(candidate) -> bool`` must return True while the candidate
    still fails; it defaults to "run it and check for violations".
    Raises ``ValueError`` if the input scenario does not fail at all.
    """
    fails = predicate if predicate is not None else default_predicate
    runs = 0

    def test(faults: Sequence[TimelineEvent]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return fails(_rebuild(scenario, faults))

    faults: List[TimelineEvent] = list(scenario.fault_events)
    if not test(faults):
        raise ValueError(
            f"scenario {scenario.name!r} does not fail; nothing to minimize")
    original = len(faults)

    granularity = 2
    while len(faults) >= 2:
        chunk = max(1, len(faults) // granularity)
        subsets = [faults[i:i + chunk] for i in range(0, len(faults), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        for subset in subsets:
            if len(subset) < len(faults) and test(subset):
                faults = list(subset)
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(subsets)):
                complement = [e for j, s in enumerate(subsets) if j != i
                              for e in s]
                if complement and len(complement) < len(faults) \
                        and test(complement):
                    faults = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(faults):
                break
            granularity = min(len(faults), granularity * 2)

    # Greedy 1-minimality pass: drop any single event that is not needed.
    i = 0
    while i < len(faults) and runs < max_runs:
        candidate = faults[:i] + faults[i + 1:]
        if candidate and test(candidate):
            faults = candidate
        elif not candidate:
            break
        else:
            i += 1

    minimized = _rebuild(scenario, faults)
    return MinimizeResult(
        scenario=minimized,
        original_events=original,
        # Count what actually survived into the timeline: _rebuild prunes
        # dangling events, so len(faults) can overstate the result.
        minimized_events=len(minimized.fault_events),
        runs=runs)
