"""Delivery-consistency oracles: the EVS/atomic-broadcast contract.

The oracles judge a finished campaign run purely from what the
*application* saw — per-incarnation delivery logs, SMR machine states and
the workload ledger — never from protocol internals.  That is the point:
`repro.check` proves the protocol obeys its own bookkeeping; the campaign
proves the guarantees the paper sells to the application (§1, §3, §8).

* ``agreement``      — nodes that deliver messages in the same
  configuration deliver them as prefixes of one common sequence (extended
  virtual synchrony's per-configuration agreement);
* ``total-order``    — across the whole run, every pair of continuously
  alive nodes has prefix-identical delivery histories (only asserted for
  scenarios a single ring is expected to survive, i.e. within the
  redundancy budget);
* ``no-duplicates``  — no node delivers the same workload message twice;
* ``sender-fifo``    — each sender's messages arrive in submission order;
* ``smr-convergence``— after the settle window the surviving members share
  one membership, everyone is synced, and the replicated machines are
  byte-identical (the marker/snapshot protocol converged);
* ``transparency``   — a timeline that never exceeds the redundancy
  budget must deliver everything its fault-free twin run delivers (§3's
  headline claim: masked faults are invisible to the application);
* ``invariants``     — when the scenario runs with ``invariants:
  "observe"``, any protocol-invariant violation is folded in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..types import DeliveredMessage, NodeId


@dataclass(frozen=True)
class OracleViolation:
    """One concrete breach of the delivery contract."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass
class NodeHistory:
    """The delivery log of one node *incarnation*.

    A restart abandons the old incarnation's history and starts a new one
    (its view legitimately begins mid-stream); each incarnation is judged
    as an independent observer.
    """

    node: NodeId
    incarnation: int
    messages: List[DeliveredMessage] = field(default_factory=list)

    @property
    def label(self) -> str:
        return (f"node {self.node}" if self.incarnation == 0
                else f"node {self.node}#{self.incarnation}")


@dataclass
class SmrEndState:
    """What the SMR layer looked like when the run ended."""

    node: NodeId
    alive: bool
    synced: bool
    state_digest: str
    membership: Optional[Tuple[NodeId, ...]]


def _entry(message: DeliveredMessage) -> Tuple:
    return (message.ring_id.seq, message.ring_id.representative,
            message.sender, message.seq, message.payload)


def stream_digest(messages: Sequence[DeliveredMessage]) -> str:
    """Order-sensitive digest of a delivery stream (replay fingerprints)."""
    h = hashlib.sha256()
    for message in messages:
        ring = message.ring_id
        h.update(f"{ring.seq}.{ring.representative}.{message.sender}."
                 f"{message.seq}.".encode())
        h.update(message.payload)
        h.update(b"|")
    return h.hexdigest()[:16]


def _first_divergence(a: Sequence, b: Sequence) -> int:
    for k in range(min(len(a), len(b))):
        if a[k] != b[k]:
            return k
    return -1


def check_agreement(histories: Sequence[NodeHistory]) -> List[OracleViolation]:
    """Per-configuration prefix agreement (EVS §1 / Ring-Paxos-style)."""
    per_config: Dict[Tuple, Dict[str, List[Tuple]]] = {}
    for history in histories:
        for message in history.messages:
            cfg = message.delivery_config
            key = (cfg.seq, cfg.representative)
            per_config.setdefault(key, {}).setdefault(
                history.label, []).append(_entry(message))
    violations: List[OracleViolation] = []
    for key in sorted(per_config):
        streams = per_config[key]
        labels = sorted(streams)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                seq_a, seq_b = streams[a], streams[b]
                shorter = min(len(seq_a), len(seq_b))
                if seq_a[:shorter] != seq_b[:shorter]:
                    k = _first_divergence(seq_a, seq_b)
                    violations.append(OracleViolation(
                        "agreement",
                        f"config (seq={key[0]}, rep={key[1]}): {a} and {b} "
                        f"diverge at position {k}: "
                        f"{seq_a[k][:4]} != {seq_b[k][:4]}"))
    return violations


def check_total_order(histories: Sequence[NodeHistory]) -> List[OracleViolation]:
    """Whole-run prefix agreement between first-incarnation histories."""
    streams = {h.label: [_entry(m) for m in h.messages]
               for h in histories if h.incarnation == 0}
    labels = sorted(streams)
    violations: List[OracleViolation] = []
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            seq_a, seq_b = streams[a], streams[b]
            shorter = min(len(seq_a), len(seq_b))
            if seq_a[:shorter] != seq_b[:shorter]:
                k = _first_divergence(seq_a, seq_b)
                violations.append(OracleViolation(
                    "total-order",
                    f"{a} and {b} diverge at position {k}: "
                    f"{seq_a[k][:4]} != {seq_b[k][:4]}"))
    return violations


def check_no_duplicates(
        histories: Sequence[NodeHistory],
        uid_of) -> List[OracleViolation]:
    """No workload message is delivered twice by one incarnation."""
    violations: List[OracleViolation] = []
    for history in histories:
        seen: Dict[Tuple[NodeId, int], int] = {}
        for position, message in enumerate(history.messages):
            uid = uid_of(message.payload)
            if uid is None:
                continue
            key = (message.sender, uid)
            if key in seen:
                violations.append(OracleViolation(
                    "no-duplicates",
                    f"{history.label} delivered message {uid} from node "
                    f"{message.sender} twice (positions {seen[key]} and "
                    f"{position})"))
            else:
                seen[key] = position
    return violations


def check_sender_fifo(
        histories: Sequence[NodeHistory],
        uid_of) -> List[OracleViolation]:
    """Each sender's workload messages arrive in submission (uid) order."""
    violations: List[OracleViolation] = []
    for history in histories:
        last_uid: Dict[NodeId, int] = {}
        for message in history.messages:
            uid = uid_of(message.payload)
            if uid is None:
                continue
            previous = last_uid.get(message.sender)
            if previous is not None and uid < previous:
                violations.append(OracleViolation(
                    "sender-fifo",
                    f"{history.label} delivered message {uid} from node "
                    f"{message.sender} after its message {previous}"))
            elif previous is None or uid > previous:
                last_uid[message.sender] = uid
    return violations


def check_smr_convergence(
        states: Sequence[SmrEndState]) -> List[OracleViolation]:
    """Surviving members converge on one membership, synced, equal state."""
    alive = [s for s in states if s.alive]
    if len(alive) < 2:
        return []
    violations: List[OracleViolation] = []
    memberships = {s.membership for s in alive}
    if len(memberships) != 1 or None in memberships:
        described = ", ".join(
            f"node {s.node}={s.membership}" for s in alive)
        violations.append(OracleViolation(
            "smr-convergence",
            f"surviving nodes did not settle on one membership: {described}"))
        return violations
    unsynced = [s.node for s in alive if not s.synced]
    if unsynced:
        violations.append(OracleViolation(
            "smr-convergence",
            f"nodes {unsynced} still awaiting state transfer after the "
            f"settle window (marker/snapshot round never completed)"))
    digests = sorted({s.state_digest for s in alive if s.synced})
    if len(digests) > 1:
        described = ", ".join(
            f"node {s.node}={s.state_digest}" for s in alive if s.synced)
        violations.append(OracleViolation(
            "smr-convergence",
            f"synced replicas diverged: {described}"))
    return violations


def check_transparency(
        delivered: Mapping[NodeId, frozenset],
        twin_delivered: Mapping[NodeId, frozenset]) -> List[OracleViolation]:
    """Within the redundancy budget, faults must be invisible (§3).

    ``delivered`` maps each continuously-alive node to the set of
    (sender, uid) workload messages it delivered; the faulty run must
    cover everything its fault-free twin delivered.
    """
    violations: List[OracleViolation] = []
    for node in sorted(twin_delivered):
        missing = twin_delivered[node] - delivered.get(node, frozenset())
        if missing:
            sample = sorted(missing)[:4]
            violations.append(OracleViolation(
                "transparency",
                f"node {node} lost {len(missing)} message(s) the fault-free "
                f"twin delivered (masked faults must be invisible); "
                f"first losses: {sample}"))
    return violations


def check_service_decisions(
        issued: Sequence[Tuple[int, int]],
        decisions: Mapping[Tuple[int, int], str]) -> List[OracleViolation]:
    """Every issued service request got exactly one typed decision.

    ``issued`` lists (client, uid) in issue order (uids unique per
    client by construction); ``decisions`` maps each to its recorded
    outcome ("admit" or a shed reason).  A request with no decision hung
    in the facade; a decision with no request is a fabricated response.
    """
    violations: List[OracleViolation] = []
    issued_set = set(issued)
    undecided = sorted(issued_set - set(decisions))
    if undecided:
        violations.append(OracleViolation(
            "service-decision",
            f"{len(undecided)} request(s) never received a decision "
            f"(admitted or shed); first: {undecided[:4]}"))
    phantom = sorted(set(decisions) - issued_set)
    if phantom:
        violations.append(OracleViolation(
            "service-decision",
            f"{len(phantom)} decision(s) for requests never issued; "
            f"first: {phantom[:4]}"))
    return violations


def check_service_completion(
        admitted: frozenset,
        applied: Mapping[NodeId, frozenset],
        members: Sequence[NodeId]) -> List[OracleViolation]:
    """Every admitted write applied at every continuously-alive member.

    An ``Admitted`` response is a durability promise: the operation
    entered the replicated log, so (after the settle window) each member
    that stayed up must have applied it.  Restarted members are exempt —
    their fresh incarnation legitimately missed operations delivered
    while they were down.
    """
    violations: List[OracleViolation] = []
    for member in members:
        missing = admitted - applied.get(member, frozenset())
        if missing:
            sample = sorted(missing)[:4]
            violations.append(OracleViolation(
                "service-completion",
                f"member {member} never applied {len(missing)} admitted "
                f"write(s) (Admitted is a durability promise); "
                f"first: {sample}"))
    return violations


def check_service_transparency(
        twin_applied: frozenset,
        applied: Mapping[NodeId, frozenset],
        shed: frozenset,
        members: Sequence[NodeId]) -> List[OracleViolation]:
    """Shed responses are the only client-visible deviation under faults.

    Any (client, uid) the fault-free twin applied that a
    continuously-alive member of the faulty run did not apply must have
    been visibly shed — a request that silently vanished (no shed, no
    apply) is a fault leaking through the facade's contract.
    """
    violations: List[OracleViolation] = []
    for member in members:
        lost = twin_applied - applied.get(member, frozenset()) - shed
        if lost:
            sample = sorted(lost)[:4]
            violations.append(OracleViolation(
                "service-transparency",
                f"member {member} silently lost {len(lost)} request(s) the "
                f"fault-free twin applied (deviations must surface as "
                f"typed sheds); first: {sample}"))
    return violations
