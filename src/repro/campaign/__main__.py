"""``python -m repro.campaign`` — see :mod:`repro.campaign.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
