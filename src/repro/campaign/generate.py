"""Seeded random scenario generation for campaign batches.

`python -m repro.campaign run --batch N` draws N scenarios from here —
the Jepsen-style randomized layer above the hand-written corpus.  Every
scenario is a pure function of ``(seed, style)``, so a failing batch
member is reported by seed and can be regenerated, replayed and minimized
anywhere.

The generator deliberately mixes two regimes:

* **within-budget** draws confine network faults to N-1 networks and skip
  churn — these scenarios additionally arm the total-order and
  fault-transparency oracles;
* **beyond-budget** draws add partitions and crash/restart churn — these
  exercise the EVS agreement and SMR convergence oracles across
  membership changes.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..types import ReplicationStyle
from .scenario import STYLE_NETWORKS, Scenario, TimelineEvent

#: Styles a default batch cycles through (the redundant ones).
BATCH_STYLES = (
    ReplicationStyle.ACTIVE,
    ReplicationStyle.PASSIVE,
    ReplicationStyle.ACTIVE_PASSIVE,
)


def random_scenario(seed: int,
                    style: Optional[ReplicationStyle] = None,
                    num_nodes: int = 4,
                    duration: float = 1.0) -> Scenario:
    """Draw one reproducible scenario for ``seed``."""
    if style is None:
        style = BATCH_STYLES[seed % len(BATCH_STYLES)]
    rng = random.Random(f"campaign:{seed}:{style.value}")
    num_networks = STYLE_NETWORKS[style]
    events: List[TimelineEvent] = []

    # Workload: one burst per node, spread over the first 60 % of the run.
    for node in range(1, num_nodes + 1):
        events.append(TimelineEvent(
            at=round(rng.uniform(0.0, duration * 0.4), 4),
            kind="burst",
            params={"node": node,
                    "count": rng.randrange(20, 60),
                    "size": rng.randrange(32, 400),
                    "gap": round(rng.uniform(0.0005, 0.004), 5)}))

    churn = rng.random() < 0.35
    fault_window = duration * 0.7
    # Leave one network clean in the no-churn regime so the scenario stays
    # within the redundancy budget (and the transparency oracle applies).
    protected = (rng.randrange(num_networks)
                 if not churn and num_networks > 1 else None)

    for net in range(num_networks):
        if net == protected:
            continue
        if rng.random() < 0.7:
            events.append(TimelineEvent(
                at=round(rng.uniform(0.05, fault_window), 4), kind="loss",
                params={"network": net,
                        "rate": round(rng.uniform(0.05, 0.3), 3)}))
        if rng.random() < 0.4:
            events.append(TimelineEvent(
                at=round(rng.uniform(0.05, fault_window), 4),
                kind="burst_loss",
                params={"network": net,
                        "p_good_to_bad": round(rng.uniform(0.002, 0.02), 4),
                        "p_bad_to_good": round(rng.uniform(0.1, 0.5), 3)}))
        if num_networks > 1 and rng.random() < 0.35:
            start = round(rng.uniform(0.05, fault_window), 4)
            events.append(TimelineEvent(
                at=start, kind="fail_network", params={"network": net}))
            events.append(TimelineEvent(
                at=round(start + rng.uniform(0.1, 0.25) * duration, 4),
                kind="restore_network", params={"network": net}))
        if rng.random() < 0.3:
            node = rng.randrange(1, num_nodes + 1)
            kind = "sever_send" if rng.random() < 0.5 else "sever_recv"
            start = round(rng.uniform(0.05, fault_window), 4)
            events.append(TimelineEvent(
                at=start, kind=kind, params={"network": net, "node": node}))
            events.append(TimelineEvent(
                at=round(start + rng.uniform(0.1, 0.2) * duration, 4),
                kind="restore_network", params={"network": net}))

    if churn and num_nodes >= 3:
        if rng.random() < 0.6:
            members = list(range(1, num_nodes + 1))
            rng.shuffle(members)
            cut = rng.randrange(1, num_nodes)
            at = round(rng.uniform(0.1, duration * 0.4), 4)
            events.append(TimelineEvent(
                at=at, kind="partition_all",
                params={"groups": [sorted(members[:cut]),
                                   sorted(members[cut:])]}))
            events.append(TimelineEvent(
                at=round(duration * 0.6, 4), kind="heal_all", params={}))
        else:
            victim = rng.randrange(1, num_nodes + 1)
            at = round(rng.uniform(0.1, duration * 0.3), 4)
            events.append(TimelineEvent(
                at=at, kind="crash", params={"node": victim}))
            events.append(TimelineEvent(
                at=round(at + duration * 0.25, 4), kind="restart",
                params={"node": victim}))

    # Always end the scripted window with a clean slate so the settle
    # phase measures convergence, not a still-degraded system.
    events.append(TimelineEvent(
        at=round(duration * 0.85, 4), kind="heal_all", params={}))

    return Scenario(
        name=f"batch-{seed}-{style.value}",
        style=style,
        seed=seed,
        num_nodes=num_nodes,
        duration=duration,
        # Membership reformation after churn needs token-loss + consensus
        # timeouts to play out before the convergence oracle reads state.
        settle=max(1.0 if churn else 0.5, duration * 0.5),
        smr=True,
        events=tuple(sorted(events, key=lambda e: e.at)),
        notes=f"generated by repro.campaign.generate (seed {seed})")
