"""Compile a scenario onto a SimCluster and judge the run with the oracles.

One :func:`run_scenario` call is one deterministic experiment: the
scenario's timeline is scheduled on the cluster's virtual-time scheduler
(workload bursts submit uid-tagged payloads, fault events ride the
:class:`~repro.net.faults.FaultPlan` machinery so the obs layer sees the
injections, churn events crash/restart nodes), the cluster runs to
``duration + settle``, and the delivery-consistency oracles turn the
per-incarnation logs into a :class:`CampaignResult`.

The uid tagging is what makes the oracles black-box: every workload
payload carries ``(sender, uid)`` with uids increasing per sender, so
duplicate delivery, reordering and message loss are all detectable from
the application's side of the API without touching protocol state.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..api.cluster import SimCluster
from ..app import ReplicatedStateMachine
from ..config import ClusterConfig, TotemConfig
from ..types import NodeId, ReplicationStyle
from .oracles import (
    NodeHistory,
    OracleViolation,
    SmrEndState,
    check_agreement,
    check_no_duplicates,
    check_sender_fifo,
    check_service_completion,
    check_service_decisions,
    check_service_transparency,
    check_smr_convergence,
    check_total_order,
    check_transparency,
    stream_digest,
)
from .scenario import Scenario, ordered_events

#: Workload payload layout: magic + (sender, uid), then zero filler.
_PAYLOAD_MAGIC = b"CP01"
_PAYLOAD_HEADER = struct.Struct(">IQ")
_HEADER_LEN = len(_PAYLOAD_MAGIC) + _PAYLOAD_HEADER.size
#: SMR multiplex byte prepended by ReplicatedStateMachine.submit.
_SMR_CMD = b"\x01"


def make_payload(sender: NodeId, uid: int, size: int) -> bytes:
    """A uid-tagged workload payload padded to ``size`` bytes."""
    header = _PAYLOAD_MAGIC + _PAYLOAD_HEADER.pack(sender, uid)
    return header + b"\x00" * max(0, size - len(header))


def payload_uid(payload: bytes) -> Optional[int]:
    """Extract the workload uid, or None for non-workload messages.

    Accepts both raw payloads and SMR-wrapped commands (one multiplex byte
    in front); SMR markers and snapshots return None.
    """
    if payload[:4] == _PAYLOAD_MAGIC:
        body = payload
    elif payload[:1] == _SMR_CMD and payload[1:5] == _PAYLOAD_MAGIC:
        body = payload[1:]
    else:
        return None
    if len(body) < _HEADER_LEN:
        return None
    _, uid = _PAYLOAD_HEADER.unpack(body[4:_HEADER_LEN])
    return uid


class DigestMachine:
    """A StateMachine whose state is a hash chain of applied commands.

    Any divergence in command content *or order* between two replicas
    yields different digests forever after — the most sensitive possible
    convergence probe at 32 bytes of state.
    """

    def __init__(self) -> None:
        self.state = hashlib.sha256(b"genesis").digest()
        self.applied = 0

    def apply(self, command: bytes) -> None:
        self.state = hashlib.sha256(self.state + command).digest()
        self.applied += 1

    def snapshot(self) -> bytes:
        return self.state + self.applied.to_bytes(8, "big")

    def restore(self, snapshot: bytes) -> None:
        self.state = snapshot[:32]
        self.applied = int.from_bytes(snapshot[32:40], "big")


@dataclass
class CampaignResult:
    """Everything one scenario run produced, oracles included."""

    scenario: Scenario
    violations: List[OracleViolation]
    submitted: int
    accepted: int
    delivered_total: int
    #: (sender, uid) sets per continuously-alive node (transparency input).
    delivered_uids: Mapping[NodeId, FrozenSet[Tuple[NodeId, int]]]
    within_budget: bool
    twin_checked: bool
    #: Service-facade ledger when the scenario ran with a ``service``
    #: section: issued/admitted/shed identity sets, per-member applied
    #: sets, shed-reason counts, stall count and the decision digest.
    service_summary: Optional[Mapping] = None
    #: Deterministic, byte-stable replay rendering; two runs of the same
    #: case file must produce identical text.
    replay_text: str = ""
    #: The simulated cluster, kept only when requested (obs forensics).
    cluster: Optional[SimCluster] = None

    @property
    def ok(self) -> bool:
        return not self.violations


class _CompiledRun:
    """Mutable state of one in-flight scenario execution."""

    def __init__(self, scenario: Scenario, obs: str = "off") -> None:
        self.scenario = scenario
        self.multiring = scenario.rings > 1
        totem = TotemConfig(replication=scenario.style,
                            num_networks=scenario.num_networks,
                            **dict(scenario.totem))
        if self.multiring:
            from ..multiring import MultiRingCluster, MultiRingConfig
            self.cluster = MultiRingCluster(MultiRingConfig(
                num_rings=scenario.rings,
                num_nodes=scenario.num_nodes,
                totem=totem,
                seed=scenario.seed,
                obs=obs))
        else:
            self.cluster = SimCluster(ClusterConfig(
                num_nodes=scenario.num_nodes,
                totem=totem,
                seed=scenario.seed,
                invariants=scenario.invariants,
                obs=obs))
        self.crashed: set = set()
        self.incarnation: Dict[NodeId, int] = {}
        #: (node, incarnation, TotemNode) — logs are read at the end.
        self.incarnations: List[Tuple[NodeId, int, object]] = []
        self.rsms: Dict[NodeId, ReplicatedStateMachine] = {}
        self.next_uid: Dict[NodeId, int] = {}
        self.accepted: List[Tuple[NodeId, int]] = []
        self.submitted = 0
        self.service = None
        self.service_issued: List[Tuple[int, int]] = []
        self.service_next_uid: Dict[int, int] = {}
        #: (client, uid) -> "admit" or the shed reason value.
        self.service_decisions: Dict[Tuple[int, int], str] = {}

    # ----- wiring -----

    def attach(self) -> None:
        for node_id in sorted(self.cluster.nodes):
            node = self.cluster.nodes[node_id]
            self.incarnation[node_id] = 0
            self.incarnations.append((node_id, 0, node))
            if self.scenario.smr:
                self.rsms[node_id] = ReplicatedStateMachine(
                    node, DigestMachine(), initially_synced=True)
        if self.scenario.service:
            from ..service import ServiceConfig, ServiceFacade
            self.service = ServiceFacade(
                self.cluster, ServiceConfig(**dict(self.scenario.service)))
            self.service.on_decision(self._service_decision)

    # ----- timeline compilation -----

    def schedule(self) -> None:
        from ..net.faults import FaultPlan
        cluster = self.cluster
        for event in ordered_events(self.scenario):
            kind, params, at = event.kind, event.params, event.at
            if kind == "burst":
                self._schedule_burst(at, params)
            elif kind == "client_burst":
                self._schedule_client_burst(at, params)
            elif kind == "partition_all":
                cluster.scheduler.call_at(
                    at, cluster.partition_cluster, params["groups"])
            elif kind == "heal_all":
                cluster.scheduler.call_at(at, cluster.heal_cluster)
            elif kind == "crash":
                cluster.scheduler.call_at(
                    at, self._crash, params["node"])
            elif kind == "restart":
                cluster.scheduler.call_at(
                    at, self._restart, params["node"])
            else:
                # Network-fault vocabulary: ride FaultPlan so validation and
                # the obs injection markers behave exactly as in sweeps.
                plan = FaultPlan()
                method = {"loss": "set_loss",
                          "burst_loss": "set_burst_loss"}.get(kind, kind)
                getattr(plan, method)(at=at, **params)
                cluster.apply_fault_plan(plan)

    def _schedule_burst(self, at: float, params: Mapping) -> None:
        sender = params["node"]
        for i in range(params["count"]):
            uid = self.next_uid.get(sender, 0) + 1
            self.next_uid[sender] = uid
            self.cluster.scheduler.call_at(
                at + i * params["gap"], self._submit, sender, uid,
                params["size"])

    def _submit(self, sender: NodeId, uid: int, size: int) -> None:
        self.submitted += 1
        if sender in self.crashed:
            return  # a crashed process cannot submit
        payload = make_payload(sender, uid, size)
        if self.multiring:
            # Shard by the unique (sender, uid) header so one burst spreads
            # deterministically across rings; the delivered payload gains
            # the multiring data-frame prefix, which payload_uid already
            # parses (same one-byte multiplex convention as SMR commands).
            ok = self.cluster.submit(payload[:_HEADER_LEN], payload, sender)
        elif self.scenario.smr:
            ok = self.rsms[sender].try_submit(payload)
        else:
            ok = self.cluster.nodes[sender].try_submit(payload)
        if ok:
            self.accepted.append((sender, uid))

    def _schedule_client_burst(self, at: float, params: Mapping) -> None:
        client = params["client"]
        for i in range(params["count"]):
            uid = self.service_next_uid.get(client, 0) + 1
            self.service_next_uid[client] = uid
            self.cluster.scheduler.call_at(
                at + i * params["gap"], self._service_submit, client, uid,
                params["size"], params["deadline"], params["weight"])

    def _service_submit(self, client: int, uid: int, size: int,
                        deadline: float, weight: int) -> None:
        from ..service import Request, encode_set
        key = b"c%d" % client
        value = uid.to_bytes(8, "big") + b"\x00" * max(0, size - 8)
        now = self.cluster.scheduler.now()
        self.service_issued.append((client, uid))
        self.service.submit(Request(
            client=client, uid=uid, key=key, body=encode_set(key, value),
            deadline=now + deadline if deadline > 0 else None,
            weight=weight, arrival=now))

    def _service_decision(self, request, response) -> None:
        from ..service import Shed
        self.service_decisions[(request.client, request.uid)] = (
            response.reason.value if isinstance(response, Shed) else "admit")

    def _crash(self, node_id: NodeId) -> None:
        self.crashed.add(node_id)
        self.cluster.crash_node(node_id)

    def _restart(self, node_id: NodeId) -> None:
        fresh = self.cluster.restart_node(node_id, start=False)
        self.crashed.discard(node_id)
        inc = self.incarnation[node_id] + 1
        self.incarnation[node_id] = inc
        self.incarnations.append((node_id, inc, fresh))
        if self.scenario.smr:
            # A restarted process lost its state: it rejoins as a newcomer
            # and waits for the group's snapshot.
            self.rsms[node_id] = ReplicatedStateMachine(
                fresh, DigestMachine(), initially_synced=False)
        if self.service is not None:
            # Restore the facade's delivery hook on the fresh incarnation
            # so its replica resumes applying (it missed what was
            # delivered while it was down — the oracles exempt it).
            self.service.rebind_node(fresh)
        fresh.start(None)

    # ----- execution -----

    def run(self) -> None:
        self.attach()
        self.schedule()
        self.cluster.start(preformed=True)
        self.cluster.run_until(self.scenario.duration + self.scenario.settle)
        if self.service is not None:
            # Close the books: anything still queued when the run ends is
            # shed, so every issued request holds exactly one decision.
            self.service.quiesce(shed_remaining=True)

    # ----- harvesting -----

    def histories(self) -> List[NodeHistory]:
        return [NodeHistory(node=nid, incarnation=inc,
                            messages=list(node.log.messages))
                for nid, inc, node in self.incarnations]

    def smr_states(self) -> List[SmrEndState]:
        states = []
        for node_id in sorted(self.rsms):
            rsm = self.rsms[node_id]
            alive = node_id not in self.crashed
            membership = None
            if alive:
                membership = tuple(
                    self.cluster.nodes[node_id].membership.members)
            states.append(SmrEndState(
                node=node_id, alive=alive, synced=rsm.synced,
                state_digest=rsm.machine.snapshot().hex()[:16],
                membership=membership))
        return states

    def alive_members(self) -> List[NodeId]:
        """Physical members that never crashed (first incarnation, up)."""
        return [nid for nid in sorted(self.incarnation)
                if self.incarnation[nid] == 0 and nid not in self.crashed]

    def service_summary(self) -> Dict[str, object]:
        """The facade's ledger, reduced to what the oracles consume."""
        facade = self.service
        admitted = frozenset(key for key, decision
                             in self.service_decisions.items()
                             if decision == "admit")
        shed = frozenset(key for key, decision
                         in self.service_decisions.items()
                         if decision != "admit")
        reasons: Dict[str, int] = {}
        for decision in self.service_decisions.values():
            if decision != "admit":
                reasons[decision] = reasons.get(decision, 0) + 1
        return {
            "issued": tuple(self.service_issued),
            "admitted": admitted,
            "shed": shed,
            "shed_reasons": dict(sorted(reasons.items())),
            "applied": {member: facade.applied_ids(member)
                        for member in facade.port.members},
            "ring_stalls": int(facade.m_stalls.value),
            "decision_digest": facade.decision_digest(),
            "gateway": facade.port.gateway,
        }

    def delivered_uids(self) -> Dict[NodeId, FrozenSet[Tuple[NodeId, int]]]:
        """(sender, uid) delivered per node, across all its incarnations."""
        per_node: Dict[NodeId, set] = {
            nid: set() for nid in sorted(self.cluster.nodes)}
        for nid, _inc, node in self.incarnations:
            for message in node.log.messages:
                uid = payload_uid(message.payload)
                if uid is not None:
                    per_node[nid].add((message.sender, uid))
        return {nid: frozenset(uids) for nid, uids in per_node.items()}


def run_scenario(
        scenario: Scenario, *,
        obs: str = "off",
        twin_delivered: Optional[Mapping] = None,
        check_twin: bool = True,
        keep_cluster: bool = False) -> CampaignResult:
    """Run one scenario and judge it; pure function of the scenario.

    ``twin_delivered`` short-circuits the fault-free twin run (the
    minimizer reuses one twin across dozens of candidate timelines);
    ``check_twin=False`` skips the transparency oracle entirely.
    """
    compiled = _CompiledRun(scenario, obs=obs)
    compiled.run()

    histories = compiled.histories()
    violations: List[OracleViolation] = []
    violations += check_agreement(histories)
    violations += check_no_duplicates(histories, payload_uid)
    violations += check_sender_fifo(histories, payload_uid)
    if scenario.smr:
        violations += check_smr_convergence(compiled.smr_states())

    within_budget = scenario.within_redundancy_budget()
    twin_checked = False
    delivered = compiled.delivered_uids()

    service_summary: Optional[Dict] = None
    twin_result: Optional[CampaignResult] = None
    if compiled.service is not None:
        service_summary = compiled.service_summary()
        # Members the completion/transparency oracles may judge: every
        # physical member that stayed up for the whole run.  (Multiring
        # scenarios cannot crash members, so all of them qualify.)
        alive = (list(compiled.service.port.members) if compiled.multiring
                 else [m for m in compiled.alive_members()
                       if m in compiled.service.port.members])
        violations += check_service_decisions(
            service_summary["issued"], compiled.service_decisions)
        violations += check_service_completion(
            service_summary["admitted"], service_summary["applied"], alive)
        if check_twin:
            # The service twin runs even outside the redundancy budget:
            # the facade's claim is precisely that unmaskable faults
            # surface only as typed sheds, never as silent loss.
            twin_result = run_scenario(scenario.fault_free_twin(),
                                       check_twin=False)
            twin_applied = twin_result.service_summary["applied"][
                service_summary["gateway"]]
            violations += check_service_transparency(
                twin_applied, service_summary["applied"],
                service_summary["shed"], alive)
            twin_checked = True

    if within_budget and check_twin:
        if scenario.rings > 1:
            # Each ring guarantees its own total order; cross-ring order is
            # the merge layer's contract, not the rings'.
            from ..multiring.config import group_of
            by_group: Dict[int, List[NodeHistory]] = {}
            for history in histories:
                by_group.setdefault(group_of(history.node), []).append(history)
            for group_histories in by_group.values():
                violations += check_total_order(group_histories)
        else:
            violations += check_total_order(histories)
        if twin_delivered is None:
            if twin_result is None:
                twin_result = run_scenario(scenario.fault_free_twin(),
                                           check_twin=False)
            twin_delivered = twin_result.delivered_uids
        violations += check_transparency(delivered, twin_delivered)
        twin_checked = True

    if compiled.cluster.checker is not None:
        for violation in compiled.cluster.checker.violations:
            violations.append(OracleViolation("invariants", str(violation)))

    result = CampaignResult(
        scenario=scenario,
        violations=violations,
        submitted=compiled.submitted,
        accepted=len(compiled.accepted),
        delivered_total=compiled.cluster.total_delivered(),
        delivered_uids=delivered,
        within_budget=within_budget,
        twin_checked=twin_checked,
        service_summary=service_summary,
        cluster=compiled.cluster if keep_cluster else None)
    result.replay_text = render_replay(result, compiled)
    return result


def render_replay(result: CampaignResult, compiled: _CompiledRun) -> str:
    """Deterministic textual fingerprint of one run (the replay output)."""
    scenario = result.scenario
    lines = [
        f"campaign scenario {scenario.name!r}",
        f"  style={scenario.style.value} nodes={scenario.num_nodes} "
        f"networks={scenario.num_networks} seed={scenario.seed}"
        + (f" rings={scenario.rings}" if scenario.rings != 1 else ""),
        f"  duration={scenario.duration:g}s settle={scenario.settle:g}s "
        f"events={len(scenario.events)} "
        f"(faults={len(scenario.fault_events)}) "
        f"smr={'on' if scenario.smr else 'off'} "
        f"budget={'within' if result.within_budget else 'exceeded'}",
        f"  workload: submitted={result.submitted} "
        f"accepted={result.accepted} delivered_total="
        f"{result.delivered_total}",
    ]
    for nid, inc, node in compiled.incarnations:
        label = f"node {nid}" + (f"#{inc}" if inc else "")
        messages = node.log.messages
        membership = ("crashed" if nid in compiled.crashed
                      and inc == compiled.incarnation[nid]
                      else str(tuple(node.membership.members)))
        line = (f"  {label}: delivered={len(messages)} "
                f"digest={stream_digest(messages)} ring={membership}")
        if scenario.smr and inc == compiled.incarnation[nid]:
            rsm = compiled.rsms[nid]
            line += (f" smr={'synced' if rsm.synced else 'unsynced'}"
                     f"/{rsm.machine.snapshot().hex()[:16]}")
        lines.append(line)
    if result.service_summary is not None:
        summary = result.service_summary
        reasons = ",".join(f"{reason}={count}" for reason, count
                           in summary["shed_reasons"].items()) or "none"
        lines.append(
            f"  service: issued={len(summary['issued'])} "
            f"admitted={len(summary['admitted'])} "
            f"shed={len(summary['shed'])} ({reasons}) "
            f"stalls={summary['ring_stalls']} "
            f"decisions={summary['decision_digest']}")
    twin = ("checked" if result.twin_checked
            else "n/a" if not result.within_budget else "skipped")
    lines.append(f"  transparency-twin: {twin}")
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    verdict = ("PASS" if result.ok
               else f"FAIL: {len(result.violations)} violation(s)")
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines) + "\n"
