"""Fault-campaign conformance harness (Jepsen-style, fully deterministic).

Three layers on top of the simulated cluster:

* :mod:`repro.campaign.scenario` — a declarative, JSON-serialisable DSL
  for fault timelines (workload bursts, network fault injections, node
  churn, partition/merge transitions);
* :mod:`repro.campaign.runner` + :mod:`repro.campaign.oracles` — compile
  a scenario onto :class:`~repro.api.cluster.SimCluster` and judge the
  run against the application-visible EVS/atomic-broadcast contract;
* :mod:`repro.campaign.minimize` — delta-debug failing scenarios down to
  minimal, replayable fault timelines.

CLI: ``python -m repro.campaign run|replay|minimize`` (or the installed
``totem-campaign`` script).  The seed-pinned regression corpus lives in
``tests/scenarios/`` and is replayed by the tier-1 suite.
"""

from .generate import random_scenario
from .minimize import MinimizeResult, minimize_scenario
from .oracles import NodeHistory, OracleViolation, SmrEndState
from .runner import (
    CampaignResult,
    DigestMachine,
    make_payload,
    payload_uid,
    run_scenario,
)
from .scenario import (
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    TimelineEvent,
    load_scenario,
    save_scenario,
)

__all__ = [
    "CampaignResult",
    "DigestMachine",
    "MinimizeResult",
    "NodeHistory",
    "OracleViolation",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "SmrEndState",
    "TimelineEvent",
    "load_scenario",
    "make_payload",
    "minimize_scenario",
    "payload_uid",
    "random_scenario",
    "run_scenario",
    "save_scenario",
]
