"""The fault-campaign scenario DSL.

A :class:`Scenario` is a declarative, JSON-serialisable description of one
deterministic end-to-end run: a cluster shape (replication style, node and
network counts, seed) plus a **timeline** of :class:`TimelineEvent` entries
— workload bursts, network fault injections (the :mod:`repro.net.faults`
vocabulary), node crash/restart churn and cluster-wide partition/merge
transitions.  The campaign runner compiles a scenario onto a
:class:`~repro.api.cluster.SimCluster` and the virtual-time scheduler, so
every scenario is a pure function of its own fields: same file, same seed,
same run, byte for byte.

Event kinds
-----------

Workload::

    burst            node, count, size, gap      submit `count` messages
    client_burst     client, count[, gap, size,  issue `count` service
                     deadline, weight]           requests (needs `service`)

Network faults (masked by redundancy while at least one network is clean)::

    loss             network, rate               extra i.i.d. frame loss
    burst_loss       network, p_good_to_bad, p_bad_to_good[, bad_loss]
    fail_network     network                     total network failure
    restore_network  network                     clear every fault there
    sever_send       network, node               node's TX path dies
    sever_recv       network, node               node's RX path dies
    sever_pair       network, src, dst           one directed path dies
    drop_frame       network, src, serial        lose src's serial-th frame

Node-connectivity faults and churn (redundancy cannot mask these)::

    partition        network, groups             split one network
    partition_all    groups                      split every network alike
    heal_all         —                           clear every fault everywhere
    crash            node                        fail-silent processor crash
    restart          node                        boot a fresh incarnation
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import TotemConfig
from ..errors import ConfigError
from ..types import ReplicationStyle

#: Bump when the case-file layout changes incompatibly.
SCENARIO_SCHEMA_VERSION = 1

#: Default network count per style (the style's minimum).
STYLE_NETWORKS = {
    ReplicationStyle.NONE: 1,
    ReplicationStyle.ACTIVE: 2,
    ReplicationStyle.PASSIVE: 2,
    ReplicationStyle.ACTIVE_PASSIVE: 3,
}

#: kind -> (required params, optional params with defaults)
EVENT_SPECS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Any]]] = {
    "burst": (("node", "count", "size"), {"gap": 0.001}),
    "client_burst": (("client", "count"),
                     {"gap": 0.0005, "size": 32, "deadline": 0.0,
                      "weight": 1}),
    "loss": (("network", "rate"), {}),
    "burst_loss": (("network", "p_good_to_bad", "p_bad_to_good"),
                   {"bad_loss": 1.0}),
    "fail_network": (("network",), {}),
    "restore_network": (("network",), {}),
    "sever_send": (("network", "node"), {}),
    "sever_recv": (("network", "node"), {}),
    "sever_pair": (("network", "src", "dst"), {}),
    "drop_frame": (("network", "src", "serial"), {}),
    "partition": (("network", "groups"), {}),
    "partition_all": (("groups",), {}),
    "heal_all": ((), {}),
    "crash": (("node",), {}),
    "restart": (("node",), {}),
}

WORKLOAD_KINDS = frozenset({"burst", "client_burst"})
#: Faults a fault-free twin run strips from the timeline.
FAULT_KINDS = frozenset(EVENT_SPECS) - WORKLOAD_KINDS
#: Faults redundancy can mask (paper §3): they disturb *networks*, and the
#: protocol rides them out as long as one network stays clean.
MASKABLE_KINDS = frozenset({
    "loss", "burst_loss", "fail_network", "sever_send", "sever_recv",
    "sever_pair", "drop_frame",
})
#: Events that clear fault state rather than introduce it.
RESTORATIVE_KINDS = frozenset({"restore_network", "heal_all"})


@dataclass(frozen=True, eq=False)
class TimelineEvent:
    """One timeline entry: ``kind`` at virtual time ``at`` with ``params``."""

    at: float
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def _key(self) -> Tuple:
        return (self.at, self.kind, tuple(sorted(self.params.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimelineEvent):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __post_init__(self) -> None:
        if self.kind not in EVENT_SPECS:
            raise ConfigError(
                f"unknown timeline event kind {self.kind!r} "
                f"(known: {', '.join(sorted(EVENT_SPECS))})")
        if self.at < 0:
            raise ConfigError(f"{self.kind}: event time must be >= 0")
        required, optional = EVENT_SPECS[self.kind]
        params = dict(self.params)
        for name in required:
            if name not in params:
                raise ConfigError(f"{self.kind}: missing parameter {name!r}")
        unknown = set(params) - set(required) - set(optional)
        if unknown:
            raise ConfigError(
                f"{self.kind}: unknown parameter(s) {sorted(unknown)}")
        merged = dict(optional)
        merged.update(params)
        if "groups" in merged:
            merged["groups"] = tuple(tuple(g) for g in merged["groups"])
        # Freeze a normalised copy so events hash/compare structurally.
        object.__setattr__(self, "params", merged)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_") or name == "params":
            raise AttributeError(name)
        try:
            return self.params[name]
        except KeyError:
            raise AttributeError(name) from None

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"at": self.at, "kind": self.kind}
        for name, value in self.params.items():
            entry[name] = ([list(g) for g in value]
                           if name == "groups" else value)
        return entry

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "TimelineEvent":
        data = dict(entry)
        try:
            at = data.pop("at")
            kind = data.pop("kind")
        except KeyError as exc:
            raise ConfigError(f"timeline event missing {exc.args[0]!r}")
        return cls(at=float(at), kind=kind, params=data)

    def __str__(self) -> str:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"t={self.at:g} {self.kind}" + (f" {rendered}" if rendered else "")


@dataclass(frozen=True)
class Scenario:
    """One declarative fault-campaign case (see module docstring)."""

    name: str
    style: ReplicationStyle = ReplicationStyle.ACTIVE
    seed: int = 1
    num_nodes: int = 4
    num_networks: Optional[int] = None
    #: Virtual seconds of scripted timeline (events must fall inside).
    duration: float = 1.0
    #: Extra quiet virtual seconds after ``duration`` before the oracles
    #: read the logs — lets retransmissions drain and memberships settle.
    settle: float = 0.4
    #: Attach a ReplicatedStateMachine to every node (SMR convergence oracle).
    smr: bool = True
    #: Run the scenario on a multi-ring cluster with this many rings
    #: (:mod:`repro.multiring`).  1 (the default) is the classic single-ring
    #: cluster.  With rings > 1 the burst workload is sharded to rings by
    #: key, ``node`` parameters name physical members (every ring has an
    #: engine per member), and the total-order oracle applies per ring.
    rings: int = 1
    #: Invariant-checker mode for the run ("off" keeps the campaign an
    #: application-level, black-box harness; "observe" folds protocol
    #: invariant violations into the conformance report as a bonus oracle).
    invariants: str = "off"
    events: Tuple[TimelineEvent, ...] = ()
    notes: str = ""
    #: Protocol-engine overrides applied on top of the scenario's style and
    #: network count — any :class:`~repro.config.TotemConfig` field except
    #: the two the scenario already owns (``replication``,
    #: ``num_networks``).  Lets a case file exercise alternative hot-path
    #: configurations, e.g. ``{"enable_batching": true}``.
    totem: Mapping[str, Any] = field(default_factory=dict)
    #: Service-facade overrides (:class:`repro.service.ServiceConfig`
    #: fields, e.g. ``{"rate": 2000, "queue_capacity": 64}``).  Non-empty
    #: attaches a :class:`~repro.service.ServiceFacade` to the cluster and
    #: enables ``client_burst`` events plus the service oracles (exactly
    #: one decision per request, admitted writes apply everywhere, sheds
    #: are the only client-visible deviation from the fault-free twin).
    #: Service scenarios require ``smr=false`` — the facade owns the
    #: delivery stream the same way the SMR layer would.
    service: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "totem", dict(self.totem))
        object.__setattr__(self, "service", dict(self.service))
        allowed = ({f.name for f in dataclass_fields(TotemConfig)}
                   - {"replication", "num_networks"})
        unknown = set(self.totem) - allowed
        if unknown:
            raise ConfigError(
                f"unknown totem override(s) {sorted(unknown)} "
                f"(scenario-owned fields replication/num_networks are "
                f"set via 'style'/'num_networks')")
        if self.num_networks is None:
            object.__setattr__(self, "num_networks",
                               STYLE_NETWORKS[self.style])
        if self.duration <= 0 or self.settle < 0:
            raise ConfigError("duration must be > 0 and settle >= 0")
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.invariants not in ("off", "observe"):
            raise ConfigError("scenario invariants must be 'off' or "
                              "'observe' (strict would abort the run the "
                              "oracles are meant to judge)")
        if self.rings < 1:
            raise ConfigError("rings must be >= 1")
        if self.rings > 1:
            if self.smr:
                raise ConfigError(
                    "multiring scenarios require smr=false (the SMR layer "
                    "assumes one totally ordered stream per node)")
            if self.invariants != "off":
                raise ConfigError(
                    "multiring scenarios require invariants='off' (the "
                    "online checker assumes a single ring per cluster)")
            unsupported = {"crash", "restart", "partition", "partition_all"}
            for event in self.events:
                if event.kind in unsupported:
                    raise ConfigError(
                        f"event kind {event.kind!r} is not supported on "
                        f"multiring scenarios (network faults only)")
        if self.service:
            if self.smr:
                raise ConfigError(
                    "service scenarios require smr=false (the facade owns "
                    "the delivery stream the SMR layer would claim)")
            from ..service import ServiceConfig
            try:
                config = ServiceConfig(**self.service)
            except TypeError as exc:
                raise ConfigError(f"bad service override: {exc}") from None
            if not 1 <= config.gateway <= self.num_nodes:
                raise ConfigError(
                    f"service gateway {config.gateway} outside nodes "
                    f"1..{self.num_nodes}")
        restartable = set()
        for event in self.events:
            self._check_event(event, restartable)

    def _check_event(self, event: TimelineEvent, restartable: set) -> None:
        if event.at > self.duration:
            raise ConfigError(
                f"event '{event}' is past the scenario duration "
                f"{self.duration}")
        params = event.params
        for name in ("network",):
            if name in params and not 0 <= params[name] < self.num_networks:
                raise ConfigError(
                    f"event '{event}' references network {params[name]}, "
                    f"scenario has {self.num_networks}")
        for name in ("node", "src", "dst"):
            if name in params and not 1 <= params[name] <= self.num_nodes:
                raise ConfigError(
                    f"event '{event}' references node {params[name]}, "
                    f"scenario has nodes 1..{self.num_nodes}")
        if "groups" in params:
            seen: set = set()
            for group in params["groups"]:
                for node in group:
                    if not 1 <= node <= self.num_nodes:
                        raise ConfigError(
                            f"event '{event}' partitions unknown node {node}")
                    if node in seen:
                        raise ConfigError(
                            f"event '{event}' has overlapping groups")
                    seen.add(node)
        if event.kind == "burst":
            if params["count"] < 1 or params["size"] < 0 or params["gap"] < 0:
                raise ConfigError(f"event '{event}' has a bad burst shape")
        if event.kind == "client_burst":
            if not self.service:
                raise ConfigError(
                    f"event '{event}' needs the scenario's 'service' "
                    f"section (client_burst drives the service facade)")
            if (params["client"] < 1 or params["count"] < 1
                    or params["gap"] < 0 or params["size"] < 0
                    or params["deadline"] < 0 or params["weight"] < 1):
                raise ConfigError(f"event '{event}' has a bad burst shape")
        if (event.kind == "crash" and self.service
                and params["node"] == self.service.get("gateway", 1)):
            raise ConfigError(
                f"event '{event}' crashes the service gateway "
                f"(the facade's injection point must stay up)")
        if event.kind == "drop_frame" and params["serial"] < 1:
            raise ConfigError(f"event '{event}' has a bad frame serial")
        if event.kind == "crash":
            restartable.add(params["node"])
        if event.kind == "restart":
            if params["node"] not in restartable:
                raise ConfigError(
                    f"event '{event}' restarts a node that never crashed "
                    f"earlier in the timeline")
            restartable.discard(params["node"])

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    @property
    def fault_events(self) -> Tuple[TimelineEvent, ...]:
        return tuple(e for e in self.events if e.kind in FAULT_KINDS)

    @property
    def workload_events(self) -> Tuple[TimelineEvent, ...]:
        return tuple(e for e in self.events if e.kind in WORKLOAD_KINDS)

    def within_redundancy_budget(self) -> bool:
        """Whether redundancy is expected to fully mask this timeline.

        True iff every fault is of a maskable, network-level kind and at
        least one network is never disturbed (paper §3: the RRP tolerates
        faults as long as one network can still carry the ring).  Node
        crashes, restarts and partitions are node/connectivity faults that
        no amount of network redundancy can hide, so any such event puts
        the scenario outside the budget and the fault-transparency oracle
        does not apply.
        """
        if self.style is ReplicationStyle.NONE:
            return not self.fault_events
        touched = set()
        for event in self.fault_events:
            if event.kind in RESTORATIVE_KINDS:
                continue
            if event.kind not in MASKABLE_KINDS:
                return False
            touched.add(event.params["network"])
        return len(touched) < self.num_networks

    def fault_free_twin(self) -> "Scenario":
        """This scenario with every fault stripped (workload preserved)."""
        return replace(self, name=f"{self.name}::twin",
                       events=self.workload_events)

    def with_events(self, events: Sequence[TimelineEvent],
                    name: Optional[str] = None) -> "Scenario":
        return replace(self, events=tuple(events),
                       name=self.name if name is None else name)

    # ------------------------------------------------------------------
    # (de)serialisation — the replayable case-file format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        document = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "style": self.style.value,
            "seed": self.seed,
            "num_nodes": self.num_nodes,
            "num_networks": self.num_networks,
            "duration": self.duration,
            "settle": self.settle,
            "smr": self.smr,
            "invariants": self.invariants,
            "notes": self.notes,
            "totem": dict(self.totem),
            "events": [event.to_dict() for event in self.events],
        }
        if self.rings != 1:
            # Serialised only when set, so pre-multiring case files stay
            # byte-identical through a load/save round trip.
            document["rings"] = self.rings
        if self.service:
            # Same contract: absent unless the scenario uses the facade.
            document["service"] = dict(self.service)
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        schema = data.get("schema", SCENARIO_SCHEMA_VERSION)
        if schema != SCENARIO_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported scenario schema {schema!r} "
                f"(this build reads {SCENARIO_SCHEMA_VERSION})")
        try:
            style = ReplicationStyle(data.get("style", "active"))
        except ValueError:
            raise ConfigError(f"unknown replication style {data.get('style')!r}")
        known = {"schema", "name", "style", "seed", "num_nodes",
                 "num_networks", "duration", "settle", "smr", "invariants",
                 "notes", "totem", "events", "rings", "service"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown scenario field(s) {sorted(unknown)}")
        if "name" not in data:
            raise ConfigError("scenario is missing its 'name'")
        return cls(
            name=data["name"],
            style=style,
            seed=int(data.get("seed", 1)),
            num_nodes=int(data.get("num_nodes", 4)),
            num_networks=data.get("num_networks"),
            duration=float(data.get("duration", 1.0)),
            settle=float(data.get("settle", 0.4)),
            smr=bool(data.get("smr", True)),
            rings=int(data.get("rings", 1)),
            invariants=data.get("invariants", "off"),
            notes=data.get("notes", ""),
            totem=dict(data.get("totem", {})),
            service=dict(data.get("service", {})),
            events=tuple(TimelineEvent.from_dict(entry)
                         for entry in data.get("events", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario file is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ConfigError("scenario file must hold one JSON object")
        return cls.from_dict(data)


def load_scenario(path: str) -> Scenario:
    """Read one scenario case file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return Scenario.from_json(handle.read())


def save_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario as a replayable case file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(scenario.to_json())


def ordered_events(scenario: Scenario) -> List[TimelineEvent]:
    """Timeline in firing order: by time, ties by position in the file.

    The scheduler breaks same-time ties by insertion order, so compiling
    in this order makes the case file's textual order authoritative.
    """
    return sorted(scenario.events, key=lambda e: e.at)
