"""Online protocol-invariant checking (docs/INVARIANTS.md).

The stack's ``probe``/``observer`` hooks feed an
:class:`InvariantChecker` that validates the paper's correctness
requirements (A1-A6, P1-P5) while a simulation runs.  Enable it per
cluster via :attr:`repro.config.ClusterConfig.invariants` (``"observe"``
or ``"strict"``), or run randomized fault sweeps with the
``totem-check`` / ``python -m repro.check`` CLI.
"""

from .invariants import (
    INVARIANTS,
    CheckMode,
    InvariantChecker,
    InvariantViolation,
    NodeProbe,
)
from .sweep import SWEEP_STYLES, SweepCase, SweepReport, run_case, run_sweep

__all__ = [
    "INVARIANTS",
    "CheckMode",
    "InvariantChecker",
    "InvariantViolation",
    "NodeProbe",
    "SWEEP_STYLES",
    "SweepCase",
    "SweepReport",
    "run_case",
    "run_sweep",
]
