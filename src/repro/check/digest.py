"""Deterministic cluster state digests for ``repro.check explore``.

The model-checking explorer (:mod:`repro.check.explore`) deduplicates its
search frontier on a canonical digest of the *entire* simulated world: every
node's protocol state, every LAN's fault state, and every pending event on
the scheduler.  Two worlds with equal digests behave identically on every
future schedule, so one of them can be pruned.

Canonicalisation rules (see docs/MODELCHECK.md):

* Protocol components expose ``digest_state()`` returning canonical tuples
  (sets and dicts sorted, packets rendered through the wire codec).
* Absolute virtual times appear only *relative to now* (``round(t - now,
  9)``), so states reached at different times can still coincide.
* Statistics counters, trace/obs hooks and fault-report logs are excluded —
  they never feed back into a protocol decision.
* Scheduled callbacks are identified structurally (owner type + method name
  + owning node), never by object identity.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..net.stack import _DefaultRecvCost, _PortDeliver, _RecvJobCost
from ..types import Membership, RingId
from ..wire.codec import encode_packet
from ..wire.packets import (BatchPacket, CommitToken, DataPacket,
                            JoinMessage, Token)

_PACKETS = (DataPacket, BatchPacket, Token, JoinMessage, CommitToken)

#: Attributes probed (in order) to attribute a callback to its owning actor.
_OWNER_ATTRS = ("node_id", "node", "_node", "index")


def _owner_key(owner) -> Tuple:
    """A structural identity for the object a bound method lives on."""
    for attr in _OWNER_ATTRS:
        value = getattr(owner, attr, None)
        if isinstance(value, int):
            return (attr, value)
    return ()


def callback_digest(callback) -> Tuple:
    """Identify a scheduled callback structurally.

    Bound methods become (owner type, method name, owner id); the network
    stack's callable helper objects get bespoke encodings; plain functions
    fall back to module + qualified name.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:  # bound method
        return ("method", type(owner).__name__, callback.__name__,
                _owner_key(owner))
    if isinstance(callback, _PortDeliver):
        return ("portdeliver", callback._stack.node, callback._network)
    if isinstance(callback, _RecvJobCost):
        return ("recvjob", callback._stack.node,
                value_digest(callback._packet))
    if isinstance(callback, _DefaultRecvCost):
        return ("defaultcost",)
    name = getattr(callback, "__qualname__", None)
    if name is not None:
        return ("function", getattr(callback, "__module__", ""), name)
    return ("callable", type(callback).__name__, _owner_key(callback))


def value_digest(value):
    """Canonicalise an arbitrary event argument.

    Containers recurse; packets use their wire encoding; callables go
    through :func:`callback_digest`; anything exposing ``digest_state()``
    delegates to it.  Unknown objects collapse to their type name — fine
    for dedup (it can only make the digest *coarser* via a hash collision
    never finer), and loud in practice because event args are closed over
    a small set of simulator types.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, _PACKETS):
        return encode_packet(value)
    if isinstance(value, RingId):
        return ("ring", value.seq, value.representative)
    if isinstance(value, Membership):
        return ("membership", value.ring_id.seq,
                value.ring_id.representative, tuple(value.members))
    if isinstance(value, (tuple, list)):
        return tuple(value_digest(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted((value_digest(v) for v in value),
                                       key=repr))
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted(
            ((value_digest(k), value_digest(v)) for k, v in value.items()),
            key=repr))
    if callable(value):
        return callback_digest(value)
    digest_state = getattr(value, "digest_state", None)
    if digest_state is not None:
        return digest_state()
    return ("opaque", type(value).__name__)


def scheduler_digest(scheduler) -> Tuple:
    """Pending (live) events in firing order, times relative to now."""
    now = scheduler.clock._now
    entries = [e for e in scheduler._heap if e[2] is not None]
    entries.sort(key=lambda e: (e[0], e[1]))
    return tuple((round(e[0] - now, 9), callback_digest(e[2]),
                  value_digest(e[3])) for e in entries)


def _cpu_digest(cpu) -> Tuple:
    """A node CPU's queued jobs (the in-flight job is a scheduler event)."""
    return ("cpu", cpu._running,
            tuple((value_digest(cost), callback_digest(fn), value_digest(args))
                  for cost, fn, args in cpu._queue))


def _log_digest(log) -> Tuple:
    """A node's delivery history, as the EVS oracles will judge it."""
    def ring(r):
        return None if r is None else (r.seq, r.representative)
    return (
        tuple((m.sender, m.seq, m.payload, ring(m.ring_id), m.safe,
               ring(m.delivered_in)) for m in log.messages),
        tuple((ring(c.membership.ring_id), tuple(c.membership.members),
               c.transitional) for c in log.config_changes),
    )


def _lan_digest(lan, now: float) -> Tuple:
    faults = lan.faults
    state = ("lan", lan.index, faults.digest_state(),
             round(max(0.0, lan._medium_free_at - now), 9),
             tuple(sorted(lan._receivers)),
             tuple(sorted(lan._generations.items())))
    if faults.drop_serials:
        # Pending targeted drops address absolute transmit serials, so the
        # serial counters become behaviour-relevant exactly then.  They are
        # excluded otherwise: a monotone per-frame counter would make every
        # state unique and disable dedup entirely.
        state += (tuple(sorted(lan._tx_serial.items())),)
    return state


def cluster_digest_tuple(cluster) -> Tuple:
    """The full canonical state tuple of a :class:`SimCluster`."""
    now = cluster.scheduler.clock._now
    nodes = tuple(
        (node_id,
         node.srp.digest_state(),
         node.rrp.digest_state(),
         _cpu_digest(node.cpu),
         _log_digest(node.log))
        for node_id, node in sorted(cluster.nodes.items()))
    lans = tuple(_lan_digest(lan, now) for lan in cluster.lans)
    rngs = tuple((name, hashlib.sha256(
                     repr(rng.getstate()).encode()).hexdigest())
                 for name, rng in sorted(cluster.rng._streams.items()))
    return ("cluster", nodes, lans, scheduler_digest(cluster.scheduler), rngs)


def cluster_digest(cluster) -> str:
    """A stable hex digest of the cluster's canonical state tuple."""
    blob = repr(cluster_digest_tuple(cluster)).encode()
    return hashlib.sha256(blob).hexdigest()
