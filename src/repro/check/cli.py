"""Command-line entry point for the invariant checker.

Examples::

    totem-check sweep                      # 3 seeds x 3 styles, ~1 s each
    totem-check sweep --runs 10 --seed 42  # a bigger batch
    totem-check sweep --styles active --strict
    totem-check rules                      # print the invariant catalogue
    python -m repro.check sweep --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..types import ReplicationStyle
from .explore import (
    DROP_KINDS,
    FAULT_ALPHABET,
    MUTATIONS,
    ExploreOptions,
    apply_mutation,
    explore,
    replay_trace,
)
from .invariants import INVARIANTS, CheckMode
from .sweep import SWEEP_STYLES, run_sweep

_STYLE_BY_NAME = {style.value: style for style in SWEEP_STYLES}


def _positive(kind, name):
    def parse(text):
        try:
            value = kind(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{name} expects a {kind.__name__}, got {text!r}")
        if value <= 0:
            raise argparse.ArgumentTypeError(f"{name} must be positive")
        return value
    return parse


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.styles:
        styles = [_STYLE_BY_NAME[name] for name in args.styles]
    else:
        styles = list(SWEEP_STYLES)
    duration = 0.4 if args.quick else args.duration
    if args.runs is not None:
        runs = args.runs
    else:
        runs = 1 if args.quick else 3
    mode = CheckMode.STRICT if args.strict else CheckMode.OBSERVE
    started = time.time()
    report = run_sweep(
        styles, runs_per_style=runs, base_seed=args.seed,
        num_nodes=args.nodes, duration=duration, mode=mode,
        messages=args.messages,
        progress=(None if args.quiet
                  else lambda case: print(case.summary(), file=sys.stderr)))
    # Per-case lines already streamed to stderr as progress; don't repeat
    # them on stdout in that case.
    print(report.render(include_cases=args.quiet))
    print(f"[swept {len(report.cases)} case(s) in "
          f"{time.time() - started:.1f}s wall clock]", file=sys.stderr)
    return 0 if report.clean else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.replay:
        with apply_mutation(args.mutate):
            options, violations = replay_trace(args.replay)
        print(f"replayed {args.replay} "
              f"(style={options.style.value} seed={options.seed})")
        if violations:
            print(f"{len(violations)} violation(s) reproduced:")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print("no violations: the trace no longer reproduces")
        return 0
    options = ExploreOptions(
        nodes=args.nodes, networks=args.networks, max_msgs=args.max_msgs,
        style=_STYLE_BY_NAME[args.style], seed=args.seed,
        horizon=args.horizon, settle=args.settle,
        max_depth=args.max_depth, fault_budget=args.budget,
        faults=tuple(args.faults), drop_kinds=tuple(args.drop_kinds),
        por=not args.no_por, max_states=args.max_states,
        time_limit=args.time_limit, export_dir=args.export_dir,
        batching=args.batching)
    with apply_mutation(args.mutate):
        report = explore(options)
    print(report.render())
    return 0 if report.clean else 1


def _cmd_rules(args: argparse.Namespace) -> int:
    width = max(len(name) for name in INVARIANTS)
    for name, (requirement, statement) in INVARIANTS.items():
        print(f"{name:<{width}}  [{requirement}]  {statement}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="totem-check",
        description="Validate the Totem RRP protocol invariants "
                    "(paper requirements A1-A6 / P1-P5) under randomized "
                    "fault scripts.")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="run randomized fault-plan sweeps under the checker")
    sweep.add_argument("--runs", type=_positive(int, "--runs"), default=None,
                       help="cases per style (default 3)")
    sweep.add_argument("--seed", type=int, default=1,
                       help="base seed (case i uses seed+i)")
    sweep.add_argument("--duration", type=_positive(float, "--duration"),
                       default=1.0,
                       help="virtual seconds per case (default 1.0)")
    sweep.add_argument("--nodes", type=_positive(int, "--nodes"), default=4,
                       help="cluster size (default 4)")
    sweep.add_argument("--messages", type=_positive(int, "--messages"),
                       default=120,
                       help="application messages submitted per case")
    sweep.add_argument("--styles", nargs="*", choices=sorted(_STYLE_BY_NAME),
                       help="restrict to these styles (default: all three)")
    sweep.add_argument("--strict", action="store_true",
                       help="abort a case at its first violation instead of "
                            "collecting all of them")
    sweep.add_argument("--quick", action="store_true",
                       help="one short case per style (smoke test)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-case progress on stderr")
    sweep.set_defaults(func=_cmd_sweep)

    explore_cmd = sub.add_parser(
        "explore",
        help="exhaustively enumerate schedules and fault interleavings "
             "for a tiny cluster (model checking; see docs/MODELCHECK.md)")
    explore_cmd.add_argument("--nodes", type=_positive(int, "--nodes"),
                             default=2, help="cluster size (default 2)")
    explore_cmd.add_argument("--networks", type=_positive(int, "--networks"),
                             default=2,
                             help="redundant networks (default 2)")
    explore_cmd.add_argument("--max-msgs",
                             type=_positive(int, "--max-msgs"), default=2,
                             help="workload messages, round-robin senders "
                                  "(default 2)")
    explore_cmd.add_argument("--style", choices=sorted(_STYLE_BY_NAME),
                             default="active")
    explore_cmd.add_argument("--seed", type=int, default=1)
    explore_cmd.add_argument("--horizon",
                             type=_positive(float, "--horizon"),
                             default=0.02,
                             help="virtual seconds explored (default 0.02)")
    explore_cmd.add_argument("--settle",
                             type=_positive(float, "--settle"), default=0.6,
                             help="deterministic cool-down before judging "
                                  "each path (default 0.6)")
    explore_cmd.add_argument("--max-depth",
                             type=_positive(int, "--max-depth"), default=4,
                             help="iterative-deepening ceiling on "
                                  "deviations per path (default 4)")
    explore_cmd.add_argument("--budget", type=_positive(int, "--budget"),
                             default=1,
                             help="drop/crash/partition budget (default 1)")
    explore_cmd.add_argument("--faults", nargs="*",
                             choices=list(FAULT_ALPHABET),
                             default=["drop"],
                             help="fault alphabet (default: drop)")
    explore_cmd.add_argument("--drop-kinds", nargs="*",
                             choices=list(DROP_KINDS),
                             default=list(DROP_KINDS),
                             help="frame kinds drop may target")
    explore_cmd.add_argument("--no-por", action="store_true",
                             help="disable partial-order reduction "
                                  "(cross-check; much slower)")
    explore_cmd.add_argument("--max-states",
                             type=_positive(int, "--max-states"),
                             default=500_000)
    explore_cmd.add_argument("--time-limit", type=float, default=0.0,
                             help="wall-clock cap in seconds (0 = none)")
    explore_cmd.add_argument("--batching", action="store_true",
                             help="explore the batched send path (frame "
                                  "trains) instead of per-frame broadcasts")
    explore_cmd.add_argument("--export-dir", default=None,
                             help="write violating paths here as campaign "
                                  "scenarios + decision traces")
    explore_cmd.add_argument("--mutate", choices=sorted(MUTATIONS),
                             default=None,
                             help="inject a known protocol bug first "
                                  "(checker self-test)")
    explore_cmd.add_argument("--replay", default=None, metavar="TRACE",
                             help="replay an exported *.trace.json instead "
                                  "of searching")
    explore_cmd.set_defaults(func=_cmd_explore)

    rules = sub.add_parser(
        "rules", help="print the invariant catalogue")
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
